//! Feature-graded costs and conservative phonetic embeddings.
//!
//! Two pieces, both derived from the articulatory feature bundles in
//! `lexequal_phoneme::features` (PAPERS.md: "Articulatory Feature-based
//! Phonetic Edit Distance"; "Symphonym: Universal Phonetic Embeddings"):
//!
//! 1. [`FeatureCost`] — a graded [`CostModel`] where substituting two
//!    phonemes costs proportionally to how many articulatory features
//!    separate them, replacing the binary within/across-cluster split of
//!    the clustered model. The paper treats the cost matrix as "an
//!    installable resource intended to tune the quality of match for a
//!    specific domain" (§3.2); this is the finest-grained such resource
//!    the inventory supports.
//! 2. [`Embedder`] — deterministic fixed-dimension ([`EMBED_DIM`]) per-name
//!    embeddings with a *provable* lower bound: for the calibrated scale
//!    returned by [`Embedder::conservative_scale`],
//!    `edit_distance(a, b) ≥ scale · l1(embed(a), embed(b))` for every
//!    pair of phoneme strings. A prefilter that rejects a candidate only
//!    when `scale · l1 > k` therefore never drops a true match — verdicts
//!    through the exact kernel stay bit-identical (DESIGN §5j).
//!
//! ## Why the bound holds
//!
//! Each phoneme `p` gets a fixed contribution vector `v(p)` (cluster bin,
//! segment-kind bin, one hashed bin per feature value); a string embeds as
//! the *bag sum* `Σ v(p)` saturated into `u8` lanes. Pooling is
//! order-insensitive by design: positional pooling would let a transposed
//! pair embed far apart while their edit distance is small, destroying any
//! conservative bound. For an optimal edit script turning `a` into `b`,
//! each substitution `x→y` moves the unsaturated bag by at most
//! `‖v(x) − v(y)‖₁` and costs `sub(x, y)`; each insert/delete of `p` moves
//! it by `‖v(p)‖₁` and costs `ins/del(p)`. Taking the worst cost-per-L1
//! ratio over the whole inventory gives a scale with
//! `cost(op) ≥ scale · ΔL1(op)` for every operation, so by the triangle
//! inequality the total distance dominates `scale · ‖Σv(aᵢ) − Σv(bⱼ)‖₁`.
//! Saturation only shrinks per-lane differences
//! (`|min(x,255) − min(y,255)| ≤ |x − y|`), so the bound survives
//! quantization.

use lexequal_matcher::CostModel;
use lexequal_phoneme::features::Features;
use lexequal_phoneme::{ClusterTable, Inventory, Phoneme, PhonemeString};

/// Embedding width in bytes. 32 `u8` lanes: one cache line half, friendly
/// to both the autovectorized L1 loop and the mmap image layout.
pub const EMBED_DIM: usize = 32;

/// An alternative substitution model derived from articulatory features
/// rather than discrete clusters: the cost of substituting two phonemes is
/// proportional to how many features separate them (place, manner,
/// voicing, aspiration for consonants; height, backness, rounding, length
/// for vowels).
#[derive(Debug, Clone, Copy, Default)]
pub struct FeatureCost {
    /// Extra cost floor for any substitution (keeps sub > 0 for unequal
    /// phonemes even when all recorded features agree).
    pub floor: f64,
}

impl FeatureCost {
    /// Model with the default floor of 0.1.
    pub fn new() -> Self {
        FeatureCost { floor: 0.1 }
    }
}

impl CostModel<Phoneme> for FeatureCost {
    fn ins(&self, _t: &Phoneme) -> f64 {
        1.0
    }

    fn del(&self, _t: &Phoneme) -> f64 {
        1.0
    }

    fn sub(&self, a: &Phoneme, b: &Phoneme) -> f64 {
        if a == b {
            return 0.0;
        }
        // dissimilarity is in 0..=4; scale into (floor, 1.0].
        let d = a.features().dissimilarity(&b.features()) as f64;
        (self.floor + (1.0 - self.floor) * d / 4.0).min(1.0)
    }

    fn min_indel(&self) -> f64 {
        1.0
    }
}

/// Distinct small-integer codes for every (feature, value) pair, so each
/// value lands in its own hashed embedding bin. Fieldless enum casts give
/// stable per-variant discriminants.
fn feature_codes(f: &Features) -> [u8; 4] {
    match f {
        Features::Consonant(c) => [
            c.voicing as u8,            // 0..2
            2 + c.place as u8,          // 2..12
            12 + c.manner as u8,        // 12..20
            20 + u8::from(c.aspirated), // 20..22
        ],
        Features::Vowel(v) => [
            24 + v.height as u8,      // 24..31
            31 + v.backness as u8,    // 31..34
            34 + v.roundedness as u8, // 34..36
            36 + v.length as u8,      // 36..38
        ],
    }
}

/// Deterministic per-phoneme contribution tables and the bag-pooled
/// embedding they induce. Embeddings are a pure function of phoneme ids
/// and the cluster table — *not* of any cost model — so vectors persisted
/// in a snapshot stay valid when the serving cost model changes; only the
/// [`conservative_scale`](Self::conservative_scale) is recomputed.
#[derive(Debug)]
pub struct Embedder {
    /// Per-phoneme contribution vector, indexed by [`Phoneme::index`].
    contrib: Vec<[u8; EMBED_DIM]>,
    /// L1 norm of each contribution vector.
    norms: Vec<u32>,
}

impl Embedder {
    /// Build the contribution tables for an inventory clustered by `table`.
    pub fn new(table: &ClusterTable) -> Self {
        let n = Inventory::len();
        let mut contrib = vec![[0u8; EMBED_DIM]; n];
        let mut norms = vec![0u32; n];
        for p in Inventory::iter() {
            let v = &mut contrib[p.index()];
            // Cluster identity dominates (weight 2): like phonemes land in
            // the same bin and contribute nothing to the pair's L1 gap.
            // Tables with more than 16 clusters fold mod 16 — collisions
            // only *shrink* gaps, which weakens the screen but can never
            // break the lower bound.
            v[(table.cluster_of(p).0 % 16) as usize] += 2;
            let f = p.features();
            v[16 + usize::from(matches!(f, Features::Vowel(_)))] += 1;
            for (i, code) in feature_codes(&f).into_iter().enumerate() {
                v[16 + (code as usize * 7 + i * 5) % 16] += 1;
            }
            norms[p.index()] = v.iter().map(|&x| x as u32).sum();
        }
        Embedder { contrib, norms }
    }

    /// Embed a sequence of raw phoneme ids (every byte must be a valid
    /// inventory id, the invariant [`PhonemeString`] storage enforces).
    /// Bag pooling: saturating per-lane sum of the contribution vectors.
    pub fn embed_ids(&self, ids: &[u8]) -> [u8; EMBED_DIM] {
        let mut out = [0u8; EMBED_DIM];
        for &id in ids {
            let v = &self.contrib[id as usize];
            for (o, &c) in out.iter_mut().zip(v.iter()) {
                *o = o.saturating_add(c);
            }
        }
        out
    }

    /// [`embed_ids`](Self::embed_ids) over a phoneme string.
    pub fn embed(&self, s: &PhonemeString) -> [u8; EMBED_DIM] {
        self.embed_ids(s.id_bytes())
    }

    /// The largest `scale` such that
    /// `edit_distance(a, b) ≥ scale · l1(embed(a), embed(b))`
    /// holds for every pair of phoneme strings under `model` (see the
    /// module docs for the argument). Returns `0.0` — screen disabled,
    /// never rejects — when some zero-cost operation moves the embedding
    /// (e.g. the clustered model at intra-cluster cost 0).
    pub fn conservative_scale<M: CostModel<Phoneme>>(&self, model: &M) -> f64 {
        let mut scale = f64::INFINITY;
        for p in Inventory::iter() {
            let norm = self.norms[p.index()] as f64;
            if norm > 0.0 {
                scale = scale.min(model.ins(&p) / norm);
                scale = scale.min(model.del(&p) / norm);
            }
            for q in Inventory::iter() {
                if p == q {
                    continue;
                }
                let delta = l1(&self.contrib[p.index()], &self.contrib[q.index()]) as f64;
                if delta > 0.0 {
                    scale = scale.min(model.sub(&p, &q) / delta);
                }
            }
        }
        if !scale.is_finite() || scale <= 0.0 {
            return 0.0;
        }
        // Haircut: the DP accumulates f64 rounding; shaving a relative
        // 1e-9 keeps the bound strict against any such drift (the L1 side
        // is exact — at most 32 · 255 = 8160, an integer in f64).
        scale * (1.0 - 1e-9)
    }
}

/// L1 distance between two embedding vectors. Plain `u8::abs_diff`
/// accumulation — the compiler autovectorizes this over the fixed 32-byte
/// width (PSADBW-class code on x86), no intrinsics needed.
#[inline]
pub fn l1(a: &[u8], b: &[u8]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| x.abs_diff(y) as u64)
        .sum()
}

#[cfg(test)]
mod feature_cost_tests {
    use super::*;

    fn p(sym: &str) -> Phoneme {
        sym.parse::<PhonemeString>().unwrap()[0]
    }

    #[test]
    fn graded_by_feature_distance() {
        let m = FeatureCost::new();
        // p vs b: voicing only (1 feature) — cheap.
        let pb = m.sub(&p("p"), &p("b"));
        // p vs k: place only — equally cheap.
        let pk = m.sub(&p("p"), &p("k"));
        // p vs z: voicing + place + manner — expensive.
        let pz = m.sub(&p("p"), &p("z"));
        assert!(pb < pz);
        assert_eq!(pb, pk);
        assert!(pb > 0.0);
        // Vowel vs consonant is maximal.
        assert_eq!(m.sub(&p("p"), &p("a")), 1.0);
    }

    #[test]
    fn identical_is_free_and_symmetric() {
        let m = FeatureCost::new();
        assert_eq!(m.sub(&p("s"), &p("s")), 0.0);
        assert_eq!(m.sub(&p("s"), &p("z")), m.sub(&p("z"), &p("s")));
    }

    #[test]
    fn floor_bounds_minimum_substitution() {
        let m = FeatureCost { floor: 0.3 };
        // Any unequal pair costs at least the floor.
        assert!(m.sub(&p("p"), &p("b")) >= 0.3);
    }

    #[test]
    fn identity_symmetry_and_bounds_over_the_whole_inventory() {
        let m = FeatureCost::new();
        for a in Inventory::iter() {
            assert_eq!(m.sub(&a, &a), 0.0, "{a:?} should be free");
            for b in Inventory::iter() {
                let ab = m.sub(&a, &b);
                assert_eq!(ab, m.sub(&b, &a), "{a:?}/{b:?} asymmetric");
                assert!((0.0..=1.0).contains(&ab), "{a:?}/{b:?} out of [0,1]");
                if a != b {
                    assert!(ab >= m.floor, "{a:?}/{b:?} under the floor");
                }
            }
        }
    }

    #[test]
    fn cluster_consistency_within_never_exceeds_across_on_average() {
        // The clustered model's premise restated in graded terms: for
        // every phoneme, substitutions *within* its cluster are on average
        // no more expensive than substitutions across clusters. (The
        // pointwise version is false by design — /p/→/bʰ/ inside the
        // labial-stop cluster flips two features while /p/→/k/ across
        // clusters flips one — so the invariant is the per-phoneme mean.)
        let m = FeatureCost::new();
        let table = ClusterTable::standard();
        for a in Inventory::iter() {
            let (mut within, mut n_within, mut across, mut n_across) = (0.0, 0u32, 0.0, 0u32);
            for b in Inventory::iter() {
                if a == b {
                    continue;
                }
                if table.same_cluster(a, b) {
                    within += m.sub(&a, &b);
                    n_within += 1;
                } else {
                    across += m.sub(&a, &b);
                    n_across += 1;
                }
            }
            if n_within > 0 && n_across > 0 {
                assert!(
                    within / n_within as f64 <= across / n_across as f64 + 1e-12,
                    "{a:?}: mean within-cluster cost exceeds mean across-cluster cost"
                );
            }
        }
    }
}

#[cfg(test)]
mod embed_tests {
    use super::*;
    use lexequal_matcher::edit_distance;
    use std::sync::Arc;

    /// Clustered cost mirroring lexequal's `ClusteredPhonemeCost` — the
    /// core crate depends on this one, so the soundness test re-states the
    /// model locally instead of importing it.
    struct Clustered {
        table: Arc<ClusterTable>,
        intra: f64,
    }

    impl CostModel<Phoneme> for Clustered {
        fn ins(&self, _t: &Phoneme) -> f64 {
            1.0
        }
        fn del(&self, _t: &Phoneme) -> f64 {
            1.0
        }
        fn sub(&self, a: &Phoneme, b: &Phoneme) -> f64 {
            if a == b {
                0.0
            } else if self.table.same_cluster(*a, *b) {
                self.intra
            } else {
                1.0
            }
        }
    }

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_string(state: &mut u64, max_len: usize) -> PhonemeString {
        let len = (xorshift(state) as usize) % (max_len + 1);
        let n = Inventory::len() as u64;
        (0..len)
            .map(|_| Phoneme::from_id((xorshift(state) % n) as u8).unwrap())
            .collect()
    }

    #[test]
    fn embeddings_are_deterministic_and_order_insensitive() {
        let e = Embedder::new(&ClusterTable::standard());
        let a: PhonemeString = "neru".parse().unwrap();
        assert_eq!(e.embed(&a), e.embed(&a));
        let rev: PhonemeString = a.iter().rev().copied().collect();
        assert_eq!(e.embed(&a), e.embed(&rev), "bag pooling ignores order");
        assert_eq!(e.embed(&PhonemeString::empty()), [0u8; EMBED_DIM]);
        assert_eq!(l1(&e.embed(&a), &e.embed(&a)), 0);
    }

    #[test]
    fn every_phoneme_contributes() {
        let e = Embedder::new(&ClusterTable::standard());
        for p in Inventory::iter() {
            assert!(
                e.norms[p.index()] > 0,
                "{p:?} has an empty contribution vector"
            );
            // Weight structure: 2 (cluster) + 1 (kind) + 4 features.
            assert_eq!(e.norms[p.index()], 7);
        }
    }

    #[test]
    fn scale_is_positive_for_the_default_models() {
        let e = Embedder::new(&ClusterTable::standard());
        let clustered = Clustered {
            table: Arc::new(ClusterTable::standard()),
            intra: 0.25,
        };
        assert!(e.conservative_scale(&clustered) > 0.0);
        assert!(e.conservative_scale(&FeatureCost::new()) > 0.0);
    }

    #[test]
    fn scale_is_zero_when_some_moving_operation_is_free() {
        // intra-cluster cost 0: same-cluster substitutions are free but
        // still move the feature-hash bins, so no positive scale exists
        // and the screen must disable itself.
        let e = Embedder::new(&ClusterTable::standard());
        let soundex = Clustered {
            table: Arc::new(ClusterTable::standard()),
            intra: 0.0,
        };
        assert_eq!(e.conservative_scale(&soundex), 0.0);
    }

    #[test]
    fn lower_bound_is_sound_on_random_strings() {
        // The load-bearing property: scale · l1 never exceeds the exact
        // distance, under both cost models, across cluster tables.
        for table in [ClusterTable::standard(), ClusterTable::coarse()] {
            let e = Embedder::new(&table);
            let clustered = Clustered {
                table: Arc::new(table),
                intra: 0.25,
            };
            let feature = FeatureCost::new();
            let s_c = e.conservative_scale(&clustered);
            let s_f = e.conservative_scale(&feature);
            let mut state = 0x9e3779b97f4a7c15u64;
            for _ in 0..400 {
                let a = random_string(&mut state, 24);
                let b = random_string(&mut state, 24);
                let gap = l1(&e.embed(&a), &e.embed(&b)) as f64;
                let d_c = edit_distance(a.as_slice(), b.as_slice(), &clustered);
                let d_f = edit_distance(a.as_slice(), b.as_slice(), feature);
                assert!(
                    s_c * gap <= d_c + 1e-9,
                    "clustered bound violated: {} > {} for {a:?} vs {b:?}",
                    s_c * gap,
                    d_c
                );
                assert!(
                    s_f * gap <= d_f + 1e-9,
                    "feature bound violated: {} > {} for {a:?} vs {b:?}",
                    s_f * gap,
                    d_f
                );
            }
        }
    }

    #[test]
    fn saturation_only_shrinks_gaps() {
        // A 40-repeat string saturates several lanes; the bound must hold
        // against a short string regardless.
        let e = Embedder::new(&ClusterTable::standard());
        let feature = FeatureCost::new();
        let scale = e.conservative_scale(&feature);
        let long: PhonemeString = std::iter::repeat("na".parse::<PhonemeString>().unwrap())
            .take(40)
            .fold(PhonemeString::empty(), |acc, s| acc.concat(&s));
        let short: PhonemeString = "na".parse().unwrap();
        let gap = l1(&e.embed(&long), &e.embed(&short)) as f64;
        let d = edit_distance(long.as_slice(), short.as_slice(), feature);
        assert!(scale * gap <= d + 1e-9);
    }
}
