//! The LexEQUAL operator — the algorithm of the paper's Figure 8.

use crate::config::{CostModelKind, MatchConfig};
use crate::cost::{ClusteredPhonemeCost, DenseSubstCost, FeaturePhonemeCost};
use crate::verify::PreparedQuery;
use lexequal_embed::{Embedder, EMBED_DIM};
use lexequal_g2p::{G2pError, Language};
use lexequal_matcher::{edit_distance, within_distance, CostModel};
use lexequal_phoneme::{Inventory, PhonemeString};
use std::sync::Arc;

/// The three-valued result of a LexEQUAL comparison (Figure 8): a match,
/// a non-match, or "no TTP resource for one of the languages".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The strings match phonetically within the threshold.
    True,
    /// They do not.
    False,
    /// One of the languages has no installed transformation (`NORESOURCE`).
    NoResource(Language),
}

/// The LexEQUAL operator: configuration plus the matching entry points.
#[derive(Debug, Clone)]
pub struct LexEqual {
    config: MatchConfig,
    /// Cluster semantics (tables, grouped identifiers, cluster-id
    /// columns) — always the clustered parameterization, regardless of
    /// which model the dense matrix serves.
    cost: ClusteredPhonemeCost,
    /// The matrix the predicate and every DP actually evaluate: the
    /// clustered or feature-graded model per `config.cost_model`.
    dense: DenseSubstCost,
    /// Phonetic embedding tables (shared across operator clones — the
    /// service layer clones one operator per shard).
    embedder: Arc<Embedder>,
    /// Calibrated conservative scale of the embedding screen under
    /// `dense`: reject when `embed_scale · l1 > k`. `0.0` disables the
    /// screen (by config, or because no sound scale exists).
    embed_scale: f64,
    /// Conservative per-unit-op cost of the cluster-id Myers screen:
    /// every clustered edit op that induces a unit op on the cluster-id
    /// strings costs at least this much, so
    /// `lev_clus · clus_reject_scale > k` is a sound reject. Exactly 1.0
    /// for the clustered model (preserving its bit-identical screen
    /// arithmetic); the minimum cross-cluster substitution cost, capped
    /// at 1, for graded models.
    clus_reject_scale: f64,
}

impl LexEqual {
    /// Build the operator from a configuration.
    pub fn new(config: MatchConfig) -> Self {
        let cost = ClusteredPhonemeCost::new(config.clusters.clone(), config.intra_cluster_cost);
        let dense = match config.cost_model {
            CostModelKind::Clustered => DenseSubstCost::from_clustered(&cost),
            CostModelKind::Feature => DenseSubstCost::from_model(&FeaturePhonemeCost::new()),
        };
        let embedder = Arc::new(Embedder::new(&config.clusters));
        let embed_scale = if config.embed_screen {
            embedder.conservative_scale(&dense)
        } else {
            0.0
        };
        let mut clus_reject_scale = f64::INFINITY;
        for a in Inventory::iter() {
            for b in Inventory::iter() {
                if a != b && !config.clusters.same_cluster(a, b) {
                    clus_reject_scale = clus_reject_scale.min(dense.sub(&a, &b));
                }
            }
        }
        // Insertions and deletions induce unit cluster ops at cost 1.
        let clus_reject_scale = clus_reject_scale.min(1.0);
        LexEqual {
            config,
            cost,
            dense,
            embedder,
            embed_scale,
            clus_reject_scale,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MatchConfig {
        &self.config
    }

    /// The clustered parameterization — the source of cluster *semantics*
    /// (tables, grouped identifiers, cluster-id columns) even when the
    /// serving matrix is feature-graded.
    pub fn cost_model(&self) -> &ClusteredPhonemeCost {
        &self.cost
    }

    /// The cost model materialized as a dense substitution matrix — what
    /// the predicate and the verification kernels actually evaluate
    /// (flat-array lookup; clustered or feature-graded per
    /// [`MatchConfig::cost_model`]).
    pub fn dense_cost(&self) -> &DenseSubstCost {
        &self.dense
    }

    /// The smallest non-zero edit-operation cost of the *serving* matrix —
    /// maps a threshold to a conservative Levenshtein bound for q-gram
    /// filtering and BK-tree radii. `None` when some distinct pair
    /// substitutes for free (no finite bound exists).
    pub fn min_nonzero_cost(&self) -> Option<f64> {
        let mut min = 1.0f64; // ins/del
        for a in Inventory::iter() {
            for b in Inventory::iter() {
                if a == b {
                    continue;
                }
                let s = self.dense.sub(&a, &b);
                if s == 0.0 {
                    return None;
                }
                min = min.min(s);
            }
        }
        Some(min)
    }

    /// The phonetic embedder in force (shared tables).
    pub fn embedder(&self) -> &Arc<Embedder> {
        &self.embedder
    }

    /// The conservative embedding-screen scale under the serving matrix;
    /// `0.0` means the screen is off (config, or no sound scale exists —
    /// e.g. clustered costs at intra-cluster cost 0).
    pub fn embed_scale(&self) -> f64 {
        self.embed_scale
    }

    /// The cluster-screen scale (see the field docs): multiply the
    /// cluster-id Levenshtein by this before comparing against the
    /// budget. 1.0 for the clustered model.
    pub fn clus_reject_scale(&self) -> f64 {
        self.clus_reject_scale
    }

    /// The phonetic embedding of `s` (what stores cache per entry and the
    /// mmap image persists).
    pub fn embed_for(&self, s: &PhonemeString) -> [u8; EMBED_DIM] {
        self.embedder.embed(s)
    }

    /// The cluster-id sequence of `s` under the configured cluster table —
    /// the per-string form of the paper's grouped phoneme string
    /// identifier, used by the kernel's fast-reject screen.
    pub fn cluster_ids(&self, s: &PhonemeString) -> Vec<u8> {
        let clusters = self.cost.clusters();
        s.iter().map(|p| clusters.cluster_of(*p).0).collect()
    }

    /// Preprocess a query for the verification kernel: cluster-id vector
    /// plus Myers bitmask tables over phoneme ids and cluster ids. Build
    /// once per query, verify many candidates through
    /// [`Verifier`](crate::verify::Verifier).
    pub fn prepare_query(&self, q: &PhonemeString) -> PreparedQuery {
        PreparedQuery::new(self, q)
    }

    /// `transform(S, L)` — the string's phonemic representation.
    ///
    /// # Errors
    ///
    /// [`G2pError::NoResource`] when `language` has no converter, plus
    /// conversion errors for untranslatable characters.
    pub fn transform(&self, text: &str, language: Language) -> Result<PhonemeString, G2pError> {
        self.config.registry.transform(text, language)
    }

    /// The full Figure 8 algorithm over lexicographic strings, using the
    /// configured default threshold.
    pub fn match_strings(
        &self,
        left: &str,
        left_language: Language,
        right: &str,
        right_language: Language,
    ) -> Result<Outcome, G2pError> {
        self.match_strings_with(
            left,
            left_language,
            right,
            right_language,
            self.config.threshold,
        )
    }

    /// Figure 8 with an explicit threshold `e`.
    pub fn match_strings_with(
        &self,
        left: &str,
        left_language: Language,
        right: &str,
        right_language: Language,
        e: f64,
    ) -> Result<Outcome, G2pError> {
        // Steps 1–2: language membership in S_L.
        for lang in [left_language, right_language] {
            if !self.config.registry.supports(lang) {
                return Ok(Outcome::NoResource(lang));
            }
        }
        // Step 3: transform. Untranslatable input is a genuine error, not
        // a non-match.
        let t_l = self.transform(left, left_language)?;
        let t_r = self.transform(right, right_language)?;
        // Steps 4–5: thresholded comparison.
        Ok(if self.matches_phonemes(&t_l, &t_r, e) {
            Outcome::True
        } else {
            Outcome::False
        })
    }

    /// The phoneme-space predicate, computed with the banded thresholded
    /// algorithm (no full DP matrix).
    ///
    /// Following the paper's prose — "if the edit distance is **less
    /// than** the threshold value, a positive match is flagged" — the
    /// comparison is strict (`editdistance(a, b) < e · min(|a|, |b|)`),
    /// with identical phoneme strings always matching (so threshold 0
    /// accepts exactly the perfect matches, §3.3). The strict form drops
    /// the crowded `d = k` boundary shell, which measurably improves
    /// precision at no recall cost on the evaluation corpus.
    pub fn matches_phonemes(&self, a: &PhonemeString, b: &PhonemeString, e: f64) -> bool {
        if a == b {
            return true;
        }
        let smaller = a.len().min(b.len());
        // within_distance tests d <= k' (with 1e-12 slack); shaving 1e-9
        // off the budget turns it into the strict d < k. The floor keeps
        // zero-distance pairs (identical up to free intra-cluster
        // substitutions when the cost is 0) matching at threshold 0.
        let k = (e * smaller as f64 - 1e-9).max(1e-12);
        // The dense matrix holds the exact floats of the configured model
        // (bit-equality pinned by `dense_matrix_reproduces_*` tests), so
        // evaluating through it keeps verdicts identical while serving
        // whichever model `config.cost_model` selects.
        within_distance(a.as_slice(), b.as_slice(), k, &self.dense)
    }

    /// The raw edit distance between two phoneme strings under the
    /// configured cost model (the paper's `editdistance` function; used
    /// by the quality experiments).
    pub fn distance(&self, a: &PhonemeString, b: &PhonemeString) -> f64 {
        edit_distance(a.as_slice(), b.as_slice(), &self.dense)
    }

    /// The absolute distance budget for a pair of strings under threshold
    /// `e` — `e · min(|a|, |b|)`.
    pub fn budget(&self, a: &PhonemeString, b: &PhonemeString, e: f64) -> f64 {
        e * a.len().min(b.len()) as f64
    }
}

impl Default for LexEqual {
    fn default() -> Self {
        LexEqual::new(MatchConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lexequal_g2p::G2pRegistry;

    fn lex() -> LexEqual {
        LexEqual::default()
    }

    #[test]
    fn nehru_matches_across_three_scripts() {
        let l = lex();
        // English renders Nehru without the /ɦ/ the Devanagari spelling
        // makes explicit; the pairs involving Hindi therefore carry one
        // full-cost insertion and sit just past the default threshold —
        // 0.45 covers all three pairings (see EXPERIMENTS.md §quality).
        let pairs = [
            ("Nehru", Language::English, "नेहरु", Language::Hindi),
            ("Nehru", Language::English, "நேரு", Language::Tamil),
            ("नेहरु", Language::Hindi, "நேரு", Language::Tamil),
        ];
        for (a, la, b, lb) in pairs {
            assert_eq!(
                l.match_strings_with(a, la, b, lb, 0.45).unwrap(),
                Outcome::True,
                "{a} vs {b}"
            );
        }
        // The Tamil pairing already matches at the default threshold.
        assert_eq!(
            l.match_strings("Nehru", Language::English, "நேரு", Language::Tamil)
                .unwrap(),
            Outcome::True
        );
    }

    #[test]
    fn different_names_do_not_match() {
        let l = lex();
        assert_eq!(
            l.match_strings("Nehru", Language::English, "Gandhi", Language::English)
                .unwrap(),
            Outcome::False
        );
        assert_eq!(
            l.match_strings("Nehru", Language::English, "गांधी", Language::Hindi)
                .unwrap(),
            Outcome::False
        );
    }

    #[test]
    fn nero_is_the_papers_false_positive_at_generous_thresholds() {
        // Figure 1 discussion: Nero may match Nehru depending on the
        // threshold. English renders them /nɛro/ vs /nɛru/: distance is
        // one vowel substitution within the back-vowel region… check both
        // regimes.
        let l = lex();
        let strict = l
            .match_strings_with("Nehru", Language::English, "Nero", Language::English, 0.0)
            .unwrap();
        assert_eq!(strict, Outcome::False);
        let loose = l
            .match_strings_with("Nehru", Language::English, "Nero", Language::English, 0.5)
            .unwrap();
        assert_eq!(loose, Outcome::True);
    }

    #[test]
    fn threshold_zero_is_exact_phonemic_equality() {
        let l = lex();
        assert_eq!(
            l.match_strings_with("Kumar", Language::English, "Kumar", Language::English, 0.0)
                .unwrap(),
            Outcome::True
        );
    }

    #[test]
    fn noresource_for_unsupported_language() {
        let cfg =
            MatchConfig::default().with_registry(G2pRegistry::with_languages(&[Language::English]));
        let l = LexEqual::new(cfg);
        assert_eq!(
            l.match_strings("Nehru", Language::English, "नेहरु", Language::Hindi)
                .unwrap(),
            Outcome::NoResource(Language::Hindi)
        );
    }

    #[test]
    fn monotone_in_threshold() {
        // If a pair matches at threshold e, it matches at any e' >= e.
        let l = lex();
        let a = l.transform("Catherine", Language::English).unwrap();
        let b = l.transform("Kathryn", Language::English).unwrap();
        let mut matched = false;
        for e in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.75, 1.0] {
            let m = l.matches_phonemes(&a, &b, e);
            assert!(!matched || m, "match lost when threshold grew to {e}");
            matched = m;
        }
        assert!(matched, "Catherine/Kathryn should match by threshold 1.0");
    }

    #[test]
    fn distance_agrees_with_predicate() {
        let l = lex();
        let a = l.transform("Nehru", Language::English).unwrap();
        let b = l.transform("नेहरु", Language::Hindi).unwrap();
        let d = l.distance(&a, &b);
        let k = l.budget(&a, &b, l.config().threshold);
        assert_eq!(
            l.matches_phonemes(&a, &b, l.config().threshold),
            d <= k + 1e-12
        );
    }

    #[test]
    fn symmetric() {
        let l = lex();
        let a = l.transform("Nehru", Language::English).unwrap();
        let b = l.transform("நேரு", Language::Tamil).unwrap();
        assert_eq!(
            l.matches_phonemes(&a, &b, 0.3),
            l.matches_phonemes(&b, &a, 0.3)
        );
        assert_eq!(l.distance(&a, &b), l.distance(&b, &a));
    }

    #[test]
    fn feature_model_serves_end_to_end() {
        use crate::config::CostModelKind;
        let l = LexEqual::new(MatchConfig::default().with_cost_model(CostModelKind::Feature));
        // Cross-script match still holds under the graded matrix (its
        // substitutions are pricier than clustered's 0.25, so the knee
        // threshold sits a bit higher).
        assert_eq!(
            l.match_strings_with("Nehru", Language::English, "नेहरु", Language::Hindi, 0.45)
                .unwrap(),
            Outcome::True
        );
        assert_eq!(
            l.match_strings("Nehru", Language::English, "Gandhi", Language::English)
                .unwrap(),
            Outcome::False
        );
        // Every graded op cost is ≤ its unit-cost counterpart, so the
        // graded distance never exceeds plain Levenshtein.
        let a = l.transform("Catherine", Language::English).unwrap();
        let b = l.transform("Kathryn", Language::English).unwrap();
        let lev = edit_distance(a.as_slice(), b.as_slice(), lexequal_matcher::UnitCost);
        assert!(l.distance(&a, &b) <= lev + 1e-12);
        assert!(l.distance(&a, &b) > 0.0);
    }

    #[test]
    fn min_nonzero_cost_reflects_the_dense_matrix() {
        use crate::config::CostModelKind;
        // Clustered: min op cost is the intra-cluster cost (or None at 0).
        let l = LexEqual::new(MatchConfig::default().with_intra_cluster_cost(0.25));
        assert_eq!(l.min_nonzero_cost(), Some(0.25));
        let free = LexEqual::new(MatchConfig::default().with_intra_cluster_cost(0.0));
        assert_eq!(free.min_nonzero_cost(), None);
        // Feature: the floor bounds every distinct-pair substitution from
        // below; no two distinct phonemes share a feature bundle, so the
        // cheapest op is strictly above the floor but well under 1.
        let f = LexEqual::new(MatchConfig::default().with_cost_model(CostModelKind::Feature));
        let c = f.min_nonzero_cost().unwrap();
        assert!(c >= lexequal_embed::FeatureCost::new().floor);
        assert!(c < 1.0);
    }

    #[test]
    fn screen_scales_are_sound_defaults() {
        use crate::config::CostModelKind;
        for kind in [CostModelKind::Clustered, CostModelKind::Feature] {
            let l = LexEqual::new(MatchConfig::default().with_cost_model(kind));
            assert!(l.embed_scale() > 0.0, "{kind:?} must admit a screen");
            assert!(l.clus_reject_scale() > 0.0 && l.clus_reject_scale() <= 1.0);
            let off = LexEqual::new(
                MatchConfig::default()
                    .with_cost_model(kind)
                    .with_embed_screen(false),
            );
            assert_eq!(off.embed_scale(), 0.0, "flag must disable the screen");
        }
        // Clustered at the default table: the historical cluster screen
        // scale is exactly 1.0 (cheapest cross-cluster substitution).
        let l = lex();
        assert_eq!(l.clus_reject_scale(), 1.0);
        // A free intra-cluster substitution kills the embedding screen
        // (no sound positive scale exists) but not the predicate.
        let free = LexEqual::new(MatchConfig::default().with_intra_cluster_cost(0.0));
        assert_eq!(free.embed_scale(), 0.0);
    }

    #[test]
    fn embed_for_matches_the_embedder() {
        let l = lex();
        let a = l.transform("Krishnan", Language::English).unwrap();
        assert_eq!(l.embed_for(&a), l.embedder().embed_ids(a.id_bytes()));
    }
}
