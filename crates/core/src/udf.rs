//! SQL integration: the LexEQUAL UDFs and auxiliary-table loaders.
//!
//! The paper deploys LexEQUAL on Oracle 9i "as a user-defined function
//! (UDF) that can be called in SQL statements" (§3.2), with the phonemic
//! representation stored alongside the name and two optional accelerator
//! structures (the q-gram auxiliary table of Figure 14 and the phonetic
//! index of Figure 15). This module wires the same architecture into
//! `lexequal-mdb`:
//!
//! | SQL function | Arguments | Meaning |
//! |---|---|---|
//! | `LEXEQUAL(l, r, e, langs)` | raw text, raw text, threshold, CSV or `*` | full Figure 8 over lexicographic strings; language of each side resolved by script detection constrained to `langs` |
//! | `PHONEQUAL(pl, pr, e)` | IPA text, IPA text, threshold | the phoneme-space predicate over precomputed `PName` columns (what Figures 14/15 call `LexEQUAL(N.PName, Q.str, e)`) |
//! | `PHONDIST(pl, pr)` | IPA text ×2 | raw clustered edit distance |
//! | `GROUPEDID(pl)` | IPA text | grouped phoneme string identifier (B-tree key) |
//! | `TRANSFORM(text, lang)` | raw text, language name | TTP conversion to IPA |
//!
//! The `LEXEQUAL … THRESHOLD … INLANGUAGES …` SQL syntax (Figure 3)
//! parses in `lexequal-mdb` and lowers to the `LEXEQUAL` UDF registered
//! here, so the paper's queries run verbatim.

use crate::operator::{LexEqual, Outcome};
use lexequal_g2p::{detect_language, Language};
use lexequal_matcher::qgram::{positional_qgrams, QgramSymbol};
use lexequal_mdb::{Database, DbError, Udf, Value};
use lexequal_phoneme::PhonemeString;
use std::str::FromStr;
use std::sync::Arc;

/// Resolve the language of `text` given an allowed set (`None` = any
/// supported language). Script detection picks the script; the allowed
/// set disambiguates Latin between English/French/Spanish (first wins).
pub fn resolve_language(text: &str, allowed: Option<&[Language]>) -> Option<Language> {
    let detected = detect_language(text)?;
    match allowed {
        None => Some(detected),
        Some(set) => {
            if set.contains(&detected) {
                return Some(detected);
            }
            // Same-script fallback (e.g. French when English is absent).
            set.iter()
                .copied()
                .find(|l| l.script() == detected.script())
        }
    }
}

fn parse_langs(spec: &str) -> Result<Option<Vec<Language>>, DbError> {
    let spec = spec.trim();
    if spec == "*" || spec.is_empty() {
        return Ok(None);
    }
    let mut out = Vec::new();
    for part in spec.split(',') {
        let lang = Language::from_str(part.trim())
            .map_err(|e| DbError::Udf(format!("bad language: {e}")))?;
        out.push(lang);
    }
    Ok(Some(out))
}

fn ipa(v: &Value) -> Result<PhonemeString, DbError> {
    v.as_str()?
        .parse()
        .map_err(|e| DbError::Udf(format!("bad IPA operand: {e}")))
}

/// Register every LexEQUAL-related UDF on a database.
pub fn register_udfs(db: &mut Database, operator: Arc<LexEqual>) {
    let op = operator.clone();
    db.register_udf(Udf::new("LEXEQUAL", move |args| {
        let [l, r, e, langs] = args else {
            return Err(DbError::Udf(
                "LEXEQUAL(left, right, threshold, languages) takes 4 arguments".into(),
            ));
        };
        if l.is_null() || r.is_null() {
            return Ok(Value::Null);
        }
        let allowed = parse_langs(langs.as_str()?)?;
        let e = e.as_f64()?;
        let Some(ll) = resolve_language(l.as_str()?, allowed.as_deref()) else {
            return Ok(Value::Bool(false)); // outside the target languages
        };
        let Some(lr) = resolve_language(r.as_str()?, allowed.as_deref()) else {
            return Ok(Value::Bool(false));
        };
        match op.match_strings_with(l.as_str()?, ll, r.as_str()?, lr, e) {
            Ok(Outcome::True) => Ok(Value::Bool(true)),
            Ok(Outcome::False) => Ok(Value::Bool(false)),
            // NORESOURCE surfaces as SQL NULL (unknown).
            Ok(Outcome::NoResource(_)) => Ok(Value::Null),
            Err(err) => Err(DbError::Udf(err.to_string())),
        }
    }));

    let op = operator.clone();
    db.register_udf(Udf::new("PHONEQUAL", move |args| {
        let [l, r, e] = args else {
            return Err(DbError::Udf(
                "PHONEQUAL(pname_l, pname_r, threshold) takes 3 arguments".into(),
            ));
        };
        if l.is_null() || r.is_null() {
            return Ok(Value::Null);
        }
        let a = ipa(l)?;
        let b = ipa(r)?;
        Ok(Value::Bool(op.matches_phonemes(&a, &b, e.as_f64()?)))
    }));

    let op = operator.clone();
    db.register_udf(Udf::new("PHONDIST", move |args| {
        let [l, r] = args else {
            return Err(DbError::Udf("PHONDIST takes 2 arguments".into()));
        };
        Ok(Value::Float(op.distance(&ipa(l)?, &ipa(r)?)))
    }));

    let op = operator.clone();
    db.register_udf(Udf::new("GROUPEDID", move |args| {
        let [l] = args else {
            return Err(DbError::Udf("GROUPEDID takes 1 argument".into()));
        };
        let key = crate::phonidx::grouped_id(op.cost_model().clusters(), &ipa(l)?);
        Ok(Value::Int(key))
    }));

    let op = operator;
    db.register_udf(Udf::new("TRANSFORM", move |args| {
        let [text, lang] = args else {
            return Err(DbError::Udf("TRANSFORM takes 2 arguments".into()));
        };
        let lang = Language::from_str(lang.as_str()?)
            .map_err(|e| DbError::Udf(format!("bad language: {e}")))?;
        let p = op
            .transform(text.as_str()?, lang)
            .map_err(|e| DbError::Udf(e.to_string()))?;
        Ok(Value::Str(p.to_string()))
    }));
}

/// Create and load the canonical names table used by the performance
/// experiments: `(id INT, name TEXT, lang TEXT, pname TEXT, gpid INT)`.
/// `pname` is the IPA rendering, `gpid` the grouped phoneme string
/// identifier (the phonetic-index key).
pub fn load_names_table(
    db: &mut Database,
    table: &str,
    names: &[(String, Language)],
    operator: &LexEqual,
) -> Result<(), DbError> {
    db.execute(&format!(
        "CREATE TABLE {table} (id INT, name TEXT, lang TEXT, pname TEXT, gpid INT)"
    ))?;
    let clusters = operator.cost_model().clusters();
    let mut rows = Vec::with_capacity(names.len());
    for (i, (name, lang)) in names.iter().enumerate() {
        let p = operator
            .transform(name, *lang)
            .map_err(|e| DbError::Udf(format!("transform failed for {name:?}: {e}")))?;
        let gpid = crate::phonidx::grouped_id(clusters, &p);
        rows.push(vec![
            Value::Int(i as i64),
            Value::from(name.as_str()),
            Value::from(lang.to_string()),
            Value::from(p.to_string()),
            Value::Int(gpid),
        ]);
    }
    db.insert_many(table, rows)?;
    Ok(())
}

/// Render one positional q-gram as a storable string (`◁`/`▷` padding).
fn gram_text(g: &lexequal_matcher::PositionalQgram<lexequal_phoneme::Phoneme>) -> String {
    g.gram
        .iter()
        .map(|s| match s {
            QgramSymbol::Start => "◁".to_owned(),
            QgramSymbol::End => "▷".to_owned(),
            QgramSymbol::Sym(p) => p.symbol().to_owned(),
        })
        .collect()
}

/// Build the auxiliary q-gram table of Figure 14:
/// `(id INT, qgram TEXT, pos INT)` — one row per positional q-gram of each
/// `pname` in `source`.
pub fn load_qgram_aux_table(
    db: &mut Database,
    aux: &str,
    source: &str,
    q: usize,
) -> Result<(), DbError> {
    db.execute(&format!("CREATE TABLE {aux} (id INT, qgram TEXT, pos INT)"))?;
    let rows: Vec<(i64, PhonemeString)> = {
        let t = db.catalog().table(source)?;
        let id_col = t
            .schema()
            .index_of("id")
            .ok_or_else(|| DbError::NoSuchColumn("id".into()))?;
        let pname_col = t
            .schema()
            .index_of("pname")
            .ok_or_else(|| DbError::NoSuchColumn("pname".into()))?;
        t.scan()
            .map(|(_, row)| {
                let id = row[id_col].as_i64()?;
                let p: PhonemeString = row[pname_col]
                    .as_str()?
                    .parse()
                    .map_err(|e| DbError::Udf(format!("bad pname: {e}")))?;
                Ok((id, p))
            })
            .collect::<Result<_, DbError>>()?
    };
    let gram_rows: Vec<Vec<Value>> = rows
        .iter()
        .flat_map(|(id, p)| {
            positional_qgrams(p.as_slice(), q)
                .into_iter()
                .map(move |g| {
                    vec![
                        Value::Int(*id),
                        Value::from(gram_text(&g)),
                        Value::Int(g.pos as i64),
                    ]
                })
        })
        .collect();
    db.insert_many(aux, gram_rows)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatchConfig;

    fn db_with_books() -> Database {
        let mut db = Database::new();
        register_udfs(&mut db, Arc::new(LexEqual::new(MatchConfig::default())));
        db.execute("CREATE TABLE books (author TEXT, title TEXT, language TEXT)")
            .unwrap();
        for (a, t, l) in [
            ("Nehru", "Discovery of India", "English"),
            ("नेहरु", "भारत एक खोज", "Hindi"),
            ("நேரு", "ஆசிய ஜோதி", "Tamil"),
            ("Nero", "The Coronation of the Virgin", "English"),
            ("Descartes", "Les Méditations", "French"),
            ("Σαρρη", "Παιχνίδια στο Πιάνο", "Greek"),
        ] {
            db.execute(&format!("INSERT INTO books VALUES ('{a}', '{t}', '{l}')"))
                .unwrap();
        }
        db
    }

    #[test]
    fn figure3_query_runs_end_to_end() {
        let mut db = db_with_books();
        // The paper's Figure 3 uses threshold 0.25 on its hand-converted
        // corpus; our G2P pipeline renders the Hindi form with an explicit
        // /ɦ/ the English form lacks, so the equivalent knee sits at a
        // slightly higher threshold (see EXPERIMENTS.md).
        let rs = db
            .execute(
                "select Author, Title from Books \
                 where Author LexEQUAL 'Nehru' Threshold 0.45 \
                 inlanguages { English, Hindi, Tamil, Greek }",
            )
            .unwrap();
        let authors: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
        assert!(authors.contains(&"Nehru".to_string()));
        assert!(authors.contains(&"नेहरु".to_string()));
        assert!(authors.contains(&"நேரு".to_string()));
        assert!(!authors.contains(&"Descartes".to_string()));
    }

    #[test]
    fn threshold_tunes_the_nero_false_positive() {
        let mut db = db_with_books();
        let strict = db
            .execute(
                "SELECT author FROM books WHERE author LEXEQUAL 'Nehru' THRESHOLD 0.0 INLANGUAGES *",
            )
            .unwrap();
        let loose = db
            .execute(
                "SELECT author FROM books WHERE author LEXEQUAL 'Nehru' THRESHOLD 0.5 INLANGUAGES *",
            )
            .unwrap();
        let loose_authors: Vec<String> = loose.rows.iter().map(|r| r[0].to_string()).collect();
        assert!(loose.rows.len() > strict.rows.len());
        assert!(
            loose_authors.contains(&"Nero".to_string()),
            "Nero should appear at generous thresholds: {loose_authors:?}"
        );
    }

    #[test]
    fn figure5_join_runs() {
        let mut db = db_with_books();
        let rs = db
            .execute(
                "select B1.Author, B2.Author from Books B1, Books B2 \
                 where B1.Author LexEQUAL B2.Author Threshold 0.45 \
                 and B1.Language <> B2.Language",
            )
            .unwrap();
        // Nehru appears in 3 languages -> 3*2 ordered cross-language
        // pairs, plus the Nero ↔ நேரு pair both ways: the very
        // false-positive the paper's Figure 1 discussion predicts at
        // generous thresholds (precision < 1).
        assert_eq!(rs.rows.len(), 8, "{:?}", rs.rows);
        let nero_pairs = rs
            .rows
            .iter()
            .filter(|r| r[0] == Value::from("Nero") || r[1] == Value::from("Nero"))
            .count();
        assert_eq!(nero_pairs, 2);
    }

    #[test]
    fn phonequal_over_precomputed_pnames() {
        let op = LexEqual::new(MatchConfig::default());
        let mut db = Database::new();
        register_udfs(&mut db, Arc::new(op.clone()));
        let names = vec![
            ("Nehru".to_owned(), Language::English),
            ("नेहरु".to_owned(), Language::Hindi),
            ("Gandhi".to_owned(), Language::English),
        ];
        load_names_table(&mut db, "names", &names, &op).unwrap();
        let q = op
            .transform("Nehru", Language::English)
            .unwrap()
            .to_string();
        let rs = db
            .execute(&format!(
                "SELECT name FROM names WHERE PHONEQUAL(pname, '{q}', 0.45)"
            ))
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn groupedid_and_phonetic_index_plan() {
        let op = LexEqual::new(MatchConfig::default());
        let mut db = Database::new();
        register_udfs(&mut db, Arc::new(op.clone()));
        let names = vec![
            ("Nehru".to_owned(), Language::English),
            ("Neru".to_owned(), Language::English),
            ("Gandhi".to_owned(), Language::English),
        ];
        load_names_table(&mut db, "names", &names, &op).unwrap();
        db.execute("CREATE INDEX ix_gpid ON names (gpid)").unwrap();
        // Figure 15-shaped query: index probe + UDF verify.
        let qp = op
            .transform("Nehru", Language::English)
            .unwrap()
            .to_string();
        let key = crate::phonidx::grouped_id(op.cost_model().clusters(), &qp.parse().unwrap());
        let sql =
            format!("SELECT name FROM names WHERE gpid = {key} AND PHONEQUAL(pname, '{qp}', 0.3)");
        assert!(db.explain(&sql).unwrap().contains("IndexScan"));
        let rs = db.execute(&sql).unwrap();
        // "Neru" and "Nehru" render to the same English phonemes (silent
        // H), so both share the query's grouped identifier and match.
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn qgram_aux_table_loads() {
        let op = LexEqual::new(MatchConfig::default());
        let mut db = Database::new();
        register_udfs(&mut db, Arc::new(op.clone()));
        let names = vec![("Nehru".to_owned(), Language::English)];
        load_names_table(&mut db, "names", &names, &op).unwrap();
        load_qgram_aux_table(&mut db, "auxnames", "names", 3).unwrap();
        let p = op.transform("Nehru", Language::English).unwrap();
        let rs = db.execute("SELECT COUNT(*) FROM auxnames").unwrap();
        assert_eq!(rs.rows[0][0], Value::Int((p.len() + 2) as i64)); // n + q - 1
    }

    #[test]
    fn transform_udf() {
        let mut db = Database::new();
        register_udfs(&mut db, Arc::new(LexEqual::default()));
        db.execute("CREATE TABLE t (x INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        let rs = db
            .execute("SELECT TRANSFORM('Nehru', 'English') FROM t")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::from("nɛru"));
    }

    #[test]
    fn resolve_language_respects_allowed_set() {
        assert_eq!(resolve_language("Nehru", None), Some(Language::English));
        assert_eq!(
            resolve_language("Nehru", Some(&[Language::French, Language::Hindi])),
            Some(Language::French) // Latin-script fallback
        );
        assert_eq!(resolve_language("नेहरु", Some(&[Language::English])), None);
        assert_eq!(resolve_language("!!!", None), None);
    }
}
