//! Operator configuration.

use lexequal_g2p::G2pRegistry;
use lexequal_phoneme::ClusterTable;
use std::sync::Arc;

/// Which substitution-cost model the operator materializes into its dense
/// matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModelKind {
    /// The paper's clustered model: substitutions within a cluster cost
    /// `intra_cluster_cost`, everything else 1 (§3.3).
    #[default]
    Clustered,
    /// Feature-graded costs ([`lexequal_embed::FeatureCost`]):
    /// substitution cost proportional to articulatory feature distance,
    /// the finest-grained "installable cost matrix" resource (§3.2).
    Feature,
}

/// Tunable parameters of the LexEQUAL operator (paper §3.3).
///
/// The defaults sit in the knee region the paper identifies as optimal for
/// its multiscript names dataset: intra-cluster substitution cost in
/// `[0.25, 0.5]` and match threshold in `[0.25, 0.35]`, yielding ≈95%
/// recall at ≈85% precision (Figure 12).
#[derive(Debug, Clone)]
pub struct MatchConfig {
    /// Default match threshold `e`: allowable edit distance as a fraction
    /// of the smaller phoneme string. 0 accepts only perfect phonemic
    /// matches.
    pub threshold: f64,
    /// Cost of substituting one phoneme by another *within the same
    /// cluster*. 1.0 degenerates to plain Levenshtein; 0.0 approximates
    /// Soundex (free substitutions among like phonemes).
    pub intra_cluster_cost: f64,
    /// The phoneme clustering in force (the paper's "installable cost
    /// matrix" resource; user-customizable).
    pub clusters: Arc<ClusterTable>,
    /// Installed text-to-phoneme converters (the paper's `S_L`).
    pub registry: Arc<G2pRegistry>,
    /// Which substitution-cost model to serve with. The clustered default
    /// reproduces the paper; [`CostModelKind::Feature`] swaps in the
    /// feature-graded matrix (cluster semantics — grouped identifiers,
    /// cluster-id columns — stay defined by `clusters` either way).
    pub cost_model: CostModelKind,
    /// Whether the conservative embedding prefilter screens candidates in
    /// front of the Myers screens (DESIGN §5j). Verdicts are identical
    /// either way; disabling only changes how much work the exact kernel
    /// sees.
    pub embed_screen: bool,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            threshold: 0.35,
            intra_cluster_cost: 0.25,
            clusters: Arc::new(ClusterTable::standard()),
            registry: Arc::new(G2pRegistry::standard()),
            cost_model: CostModelKind::default(),
            embed_screen: true,
        }
    }
}

impl MatchConfig {
    /// Set the match threshold.
    pub fn with_threshold(mut self, e: f64) -> Self {
        assert!((0.0..=1.0).contains(&e), "threshold must be in [0,1]");
        self.threshold = e;
        self
    }

    /// Set the intra-cluster substitution cost.
    pub fn with_intra_cluster_cost(mut self, c: f64) -> Self {
        assert!((0.0..=1.0).contains(&c), "cost must be in [0,1]");
        self.intra_cluster_cost = c;
        self
    }

    /// Use a custom phoneme clustering.
    pub fn with_clusters(mut self, t: ClusterTable) -> Self {
        self.clusters = Arc::new(t);
        self
    }

    /// Use a restricted converter registry.
    pub fn with_registry(mut self, r: G2pRegistry) -> Self {
        self.registry = Arc::new(r);
        self
    }

    /// Select the substitution-cost model.
    pub fn with_cost_model(mut self, kind: CostModelKind) -> Self {
        self.cost_model = kind;
        self
    }

    /// Enable or disable the embedding prefilter screen.
    pub fn with_embed_screen(mut self, on: bool) -> Self {
        self.embed_screen = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sit_in_the_papers_knee_region() {
        let c = MatchConfig::default();
        assert!((0.25..=0.35).contains(&c.threshold));
        assert!((0.25..=0.5).contains(&c.intra_cluster_cost));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn threshold_out_of_range_panics() {
        let _ = MatchConfig::default().with_threshold(1.5);
    }

    #[test]
    #[should_panic(expected = "cost")]
    fn cost_out_of_range_panics() {
        let _ = MatchConfig::default().with_intra_cluster_cost(-0.1);
    }

    #[test]
    fn builders_apply() {
        let c = MatchConfig::default()
            .with_threshold(0.25)
            .with_intra_cluster_cost(0.0)
            .with_cost_model(CostModelKind::Feature)
            .with_embed_screen(false);
        assert_eq!(c.threshold, 0.25);
        assert_eq!(c.intra_cluster_cost, 0.0);
        assert_eq!(c.cost_model, CostModelKind::Feature);
        assert!(!c.embed_screen);
    }

    #[test]
    fn defaults_reproduce_the_paper() {
        let c = MatchConfig::default();
        assert_eq!(c.cost_model, CostModelKind::Clustered);
        assert!(c.embed_screen);
    }
}
