//! The candidate-verification kernel: screen-first, allocation-free.
//!
//! Every access path (scan, q-gram, phonetic index, BK-tree) ends in the
//! same loop — evaluate `LexEqual::matches_phonemes(candidate, query, e)`
//! over the surviving candidates — and the paper's measurements (Tables
//! 1–3) show that loop dominating total cost. [`Verifier`] computes the
//! *identical* decision with three refinements:
//!
//! 1. **Bit-parallel screens** (Myers, see `lexequal_matcher::myers`).
//!    With indels at cost 1 and substitutions ≤ 1, the plain Levenshtein
//!    distance over phoneme ids bounds the clustered distance from above:
//!    `lev(a, b) ≤ k` is a sound **fast-accept**. Dually, every clustered
//!    edit op costs at least the unit op it induces on the *cluster-id*
//!    strings (intra-cluster substitutions become matches, everything else
//!    a unit op), so Levenshtein over cluster ids bounds it from below:
//!    `lev(cluster(a), cluster(b)) > k` is a sound **fast-reject** — the
//!    per-pair analogue of the paper's grouped phoneme string identifier.
//!    Both distances are exact and cost O(|candidate|) word ops.
//! 2. **Dense cost matrix** — pairs that survive both screens run the
//!    banded DP with [`DenseSubstCost`](crate::cost::DenseSubstCost):
//!    same floats, flat-array substitution lookup.
//! 3. **Reusable scratch** — the DP rows live in the `Verifier` (one per
//!    shard worker or query loop), so a verified pair performs zero heap
//!    allocations once the rows have grown to the longest candidate.
//!
//! Because the screens are exact bounds and the fallback runs the same
//! banded decision procedure on the same floats in the same order, the
//! kernel's verdict is bit-for-bit identical to `matches_phonemes`.

use crate::operator::LexEqual;
use lexequal_matcher::{within_distance_scratch, DpScratch, MyersPattern};
use lexequal_phoneme::PhonemeString;

/// A query preprocessed for repeated verification: its cluster-id vector
/// and the two Myers bitmask tables (phoneme ids, cluster ids).
///
/// Built once per query via [`LexEqual::prepare_query`]; the patterns are
/// `None` when the query is empty or longer than 64 phonemes, in which
/// case the kernel skips the screens and the DP decides alone.
#[derive(Debug)]
pub struct PreparedQuery {
    phonemes: PhonemeString,
    cluster_ids: Vec<u8>,
    phon_pattern: Option<MyersPattern>,
    clus_pattern: Option<MyersPattern>,
}

impl PreparedQuery {
    /// Preprocess `q` under `op`'s cluster table.
    pub fn new(op: &LexEqual, q: &PhonemeString) -> Self {
        let cluster_ids = op.cluster_ids(q);
        let phon_pattern = MyersPattern::build(q.iter().map(|p| p.id()));
        let clus_pattern = MyersPattern::build(cluster_ids.iter().copied());
        PreparedQuery {
            phonemes: q.clone(),
            cluster_ids,
            phon_pattern,
            clus_pattern,
        }
    }

    /// The query phoneme string.
    pub fn phonemes(&self) -> &PhonemeString {
        &self.phonemes
    }

    /// The query's cluster-id sequence.
    pub fn cluster_ids(&self) -> &[u8] {
        &self.cluster_ids
    }
}

/// How the kernel disposed of verified pairs: screen effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScreenCounters {
    /// Pairs accepted without the DP (equality or Myers fast-accept).
    pub fast_accept: u64,
    /// Pairs rejected without the DP (length filter or Myers fast-reject).
    pub fast_reject: u64,
    /// Pairs that ran the full banded DP.
    pub full_dp: u64,
}

impl ScreenCounters {
    /// Total pairs verified.
    pub fn total(&self) -> u64 {
        self.fast_accept + self.fast_reject + self.full_dp
    }

    /// Add `other` into `self` (for merging per-worker counters).
    pub fn merge(&mut self, other: &ScreenCounters) {
        self.fast_accept += other.fast_accept;
        self.fast_reject += other.fast_reject;
        self.full_dp += other.full_dp;
    }
}

/// The verification kernel: DP scratch plus screen counters.
///
/// One `Verifier` per shard worker (long-lived) or per query loop; it is
/// cheap to construct but reusing it is what makes verification
/// allocation-free.
#[derive(Debug, Default)]
pub struct Verifier {
    scratch: DpScratch,
    counters: ScreenCounters,
}

impl Verifier {
    /// A fresh kernel with empty scratch and zeroed counters.
    pub fn new() -> Self {
        Verifier::default()
    }

    /// Screen counters accumulated since construction or the last
    /// [`take_counters`](Self::take_counters).
    pub fn counters(&self) -> ScreenCounters {
        self.counters
    }

    /// Return and reset the accumulated counters.
    pub fn take_counters(&mut self) -> ScreenCounters {
        std::mem::take(&mut self.counters)
    }

    /// The kernel predicate: exactly `op.matches_phonemes(cand, query, e)`
    /// (note the argument order — candidate on the left, as every access
    /// path calls it), decided screen-first.
    ///
    /// `cand_clusters`, when provided, must be `op.cluster_ids(cand)` —
    /// stores cache these per entry; `None` derives cluster ids on the fly
    /// (still allocation-free, one table load per symbol).
    pub fn matches(
        &mut self,
        op: &LexEqual,
        query: &PreparedQuery,
        cand: &PhonemeString,
        cand_clusters: Option<&[u8]>,
        e: f64,
    ) -> bool {
        if *cand == query.phonemes {
            self.counters.fast_accept += 1;
            return true;
        }
        let smaller = cand.len().min(query.phonemes.len());
        // Same strict-predicate budget as `matches_phonemes`.
        let k = (e * smaller as f64 - 1e-9).max(1e-12);
        // Length filter (min_indel is 1): mirrors the first check inside
        // `within_distance`, hoisted here so it counts as a fast reject.
        if cand.len().abs_diff(query.phonemes.len()) as f64 > k {
            self.counters.fast_reject += 1;
            return false;
        }
        // Both patterns exist iff 1 ≤ |query| ≤ 64.
        if let (Some(phon), Some(clus)) = (&query.phon_pattern, &query.clus_pattern) {
            let clusters = op.cost_model().clusters();
            let lev_clus = match cand_clusters {
                Some(ids) => clus.distance(ids.iter().copied()),
                None => clus.distance(cand.iter().map(|p| clusters.cluster_of(*p).0)),
            };
            // Clustered distance ≥ cluster-id Levenshtein: reject.
            if lev_clus as f64 > k + 1e-12 {
                self.counters.fast_reject += 1;
                return false;
            }
            // Clustered distance ≤ phoneme Levenshtein: accept.
            let lev_phon = phon.distance(cand.iter().map(|p| p.id()));
            if lev_phon as f64 <= k + 1e-12 {
                self.counters.fast_accept += 1;
                return true;
            }
        }
        self.counters.full_dp += 1;
        within_distance_scratch(
            cand.as_slice(),
            query.phonemes.as_slice(),
            k,
            op.dense_cost(),
            &mut self.scratch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatchConfig;
    use lexequal_phoneme::{Inventory, Phoneme};

    /// Deterministic xorshift corpus: phoneme strings of length 0..=70
    /// (past the 64-symbol Myers limit to exercise the no-screen path).
    fn corpus(seed: u64, count: usize) -> Vec<PhonemeString> {
        let mut state = seed;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = Inventory::len() as u64;
        (0..count)
            .map(|_| {
                let len = (next() % 71) as usize;
                PhonemeString::new(
                    (0..len)
                        .map(|_| Phoneme::from_id((next() % n) as u8).unwrap())
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn kernel_agrees_with_reference_on_random_strings() {
        for intra in [0.0, 0.25, 1.0] {
            let op = LexEqual::new(MatchConfig::default().with_intra_cluster_cost(intra));
            let mut v = Verifier::new();
            let strings = corpus(0x5eed_0001 + intra.to_bits(), 40);
            for q in &strings {
                let prepared = op.prepare_query(q);
                let q_check = op.cluster_ids(q);
                assert_eq!(prepared.cluster_ids(), &q_check[..]);
                for c in &strings {
                    for e in [0.0, 0.15, 0.35, 0.5, 1.0] {
                        let want = op.matches_phonemes(c, q, e);
                        let cached = op.cluster_ids(c);
                        assert_eq!(
                            v.matches(&op, &prepared, c, Some(&cached), e),
                            want,
                            "cached clusters: |q|={} |c|={} e={e} intra={intra}",
                            q.len(),
                            c.len()
                        );
                        assert_eq!(
                            v.matches(&op, &prepared, c, None, e),
                            want,
                            "derived clusters: |q|={} |c|={} e={e} intra={intra}",
                            q.len(),
                            c.len()
                        );
                    }
                }
            }
            let c = v.counters();
            assert_eq!(c.total(), (strings.len() * strings.len() * 5 * 2) as u64);
            assert!(c.fast_accept > 0 && c.fast_reject > 0);
        }
    }

    #[test]
    fn counters_take_and_merge() {
        let op = LexEqual::new(MatchConfig::default());
        let mut v = Verifier::new();
        let strings = corpus(0xabcd, 6);
        let prepared = op.prepare_query(&strings[0]);
        for c in &strings {
            v.matches(&op, &prepared, c, None, 0.35);
        }
        let first = v.take_counters();
        assert_eq!(first.total(), strings.len() as u64);
        assert_eq!(v.counters(), ScreenCounters::default());
        let mut sum = ScreenCounters::default();
        sum.merge(&first);
        sum.merge(&first);
        assert_eq!(sum.total(), 2 * first.total());
    }

    #[cfg(feature = "property-tests")]
    mod property {
        use super::*;
        use proptest::prelude::*;

        fn phoneme_string(max_len: usize) -> impl Strategy<Value = PhonemeString> {
            proptest::collection::vec(0..Inventory::len() as u8, 0..=max_len).prop_map(|ids| {
                PhonemeString::new(
                    ids.into_iter()
                        .map(|id| Phoneme::from_id(id).unwrap())
                        .collect(),
                )
            })
        }

        proptest! {
            /// Verifier::matches == matches_phonemes on random phoneme
            /// strings up to length 64 (the Myers screen window).
            #[test]
            fn kernel_equals_reference(
                q in phoneme_string(64),
                c in phoneme_string(64),
                e in 0.0f64..1.2,
                intra in prop_oneof![Just(0.0), Just(0.25), Just(0.5), Just(1.0)]
            ) {
                let op = LexEqual::new(
                    MatchConfig::default().with_intra_cluster_cost(intra),
                );
                let mut v = Verifier::new();
                let prepared = op.prepare_query(&q);
                let cached = op.cluster_ids(&c);
                let want = op.matches_phonemes(&c, &q, e);
                prop_assert_eq!(v.matches(&op, &prepared, &c, Some(&cached), e), want);
                prop_assert_eq!(v.matches(&op, &prepared, &c, None, e), want);
            }
        }
    }
}
