//! The candidate-verification kernel: screen-first, allocation-free.
//!
//! Every access path (scan, q-gram, phonetic index, BK-tree) ends in the
//! same loop — evaluate `LexEqual::matches_phonemes(candidate, query, e)`
//! over the surviving candidates — and the paper's measurements (Tables
//! 1–3) show that loop dominating total cost. [`Verifier`] computes the
//! *identical* decision with three refinements:
//!
//! 1. **Bit-parallel screens** (Myers, see `lexequal_matcher::myers`).
//!    With indels at cost 1 and substitutions ≤ 1, the plain Levenshtein
//!    distance over phoneme ids bounds the clustered distance from above:
//!    `lev(a, b) ≤ k` is a sound **fast-accept**. Dually, every clustered
//!    edit op costs at least the unit op it induces on the *cluster-id*
//!    strings (intra-cluster substitutions become matches, everything else
//!    a unit op), so Levenshtein over cluster ids bounds it from below:
//!    `lev(cluster(a), cluster(b)) > k` is a sound **fast-reject** — the
//!    per-pair analogue of the paper's grouped phoneme string identifier.
//!    Both distances are exact and cost O(|candidate|) word ops.
//! 2. **Dense cost matrix** — pairs that survive both screens run the
//!    banded DP with [`DenseSubstCost`](crate::cost::DenseSubstCost):
//!    same floats, flat-array substitution lookup.
//! 3. **Reusable scratch** — the DP rows live in the `Verifier` (one per
//!    shard worker or query loop), so a verified pair performs zero heap
//!    allocations once the rows have grown to the longest candidate.
//!
//! Because the screens are exact bounds and the fallback runs the same
//! banded decision procedure on the same floats in the same order, the
//! kernel's verdict is bit-for-bit identical to `matches_phonemes`.

use crate::operator::LexEqual;
use lexequal_embed::{l1, EMBED_DIM};
use lexequal_matcher::{
    simd_level, within_distance_dense, within_distance_scratch, DpScratch, MyersPattern, SimdLevel,
};
use lexequal_phoneme::PhonemeString;

/// Maximum candidates one interleaved [`BatchVerifier`] step processes
/// (re-exported from the matcher's lane-batched Myers module).
pub const MAX_LANES: usize = lexequal_matcher::MAX_LANES;

/// One batched-verification lane: the candidate plus its optional
/// cached cluster-id sequence and optional stored embedding (see
/// [`BatchVerifier::matches_lanes`]).
pub type Lane<'a> = (&'a PhonemeString, Option<&'a [u8]>, Option<&'a [u8]>);

/// A query preprocessed for repeated verification: its cluster-id and
/// phoneme-id vectors and the two Myers bitmask tables (phoneme ids,
/// cluster ids).
///
/// Built once per query via [`LexEqual::prepare_query`]; the patterns are
/// `None` when the query is empty or longer than 64 phonemes
/// ([`screens_active`](Self::screens_active) is `false`), in which case
/// the kernel skips the screens and the DP decides alone — counted by
/// the `bypass` screen counter so the condition is visible in `STATS`.
#[derive(Debug)]
pub struct PreparedQuery {
    phonemes: PhonemeString,
    phoneme_ids: Vec<u8>,
    cluster_ids: Vec<u8>,
    /// The query's phonetic embedding — left side of the embedding
    /// screen's L1 distance (computed unconditionally; it is a few
    /// dozen saturating adds).
    embed: [u8; EMBED_DIM],
    phon_pattern: Option<MyersPattern>,
    clus_pattern: Option<MyersPattern>,
}

impl PreparedQuery {
    /// Preprocess `q` under `op`'s cluster table.
    pub fn new(op: &LexEqual, q: &PhonemeString) -> Self {
        let cluster_ids = op.cluster_ids(q);
        let phoneme_ids: Vec<u8> = q.iter().map(|p| p.id()).collect();
        let phon_pattern = MyersPattern::build(phoneme_ids.iter().copied());
        let clus_pattern = MyersPattern::build(cluster_ids.iter().copied());
        PreparedQuery {
            phonemes: q.clone(),
            phoneme_ids,
            cluster_ids,
            embed: op.embed_for(q),
            phon_pattern,
            clus_pattern,
        }
    }

    /// The query's phonetic embedding.
    pub fn embed(&self) -> &[u8; EMBED_DIM] {
        &self.embed
    }

    /// The query phoneme string.
    pub fn phonemes(&self) -> &PhonemeString {
        &self.phonemes
    }

    /// The query's phoneme-id sequence (`phonemes()` as raw `u8` ids —
    /// the right-hand side of the dense DP).
    pub fn phoneme_ids(&self) -> &[u8] {
        &self.phoneme_ids
    }

    /// The query's cluster-id sequence.
    pub fn cluster_ids(&self) -> &[u8] {
        &self.cluster_ids
    }

    /// Whether the Myers fast-accept/fast-reject screens will run for
    /// this query. `false` exactly when the query is empty or longer
    /// than 64 phonemes (the single-word Myers limit): every pair then
    /// goes straight to the DP, and the kernels count it under the
    /// `bypass` screen counter.
    pub fn screens_active(&self) -> bool {
        self.phon_pattern.is_some() && self.clus_pattern.is_some()
    }
}

/// How the kernel disposed of verified pairs: screen effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScreenCounters {
    /// Pairs accepted without the DP (equality or Myers fast-accept).
    pub fast_accept: u64,
    /// Pairs rejected without the DP (length filter or Myers fast-reject).
    pub fast_reject: u64,
    /// Pairs that ran the full banded DP.
    pub full_dp: u64,
    /// Pairs that skipped both Myers screens because the query had no
    /// patterns (empty or >64 phonemes). These pairs are *also* counted
    /// in `full_dp` — `bypass` is a diagnostic overlay, not a fourth
    /// outcome — so it does not contribute to [`total`](Self::total).
    pub bypass: u64,
    /// Pairs the embedding screen examined and passed downstream. Like
    /// `bypass`, the three `embed_*` counters are diagnostic overlays on
    /// the three outcome counters, not extra outcomes; none appear in
    /// [`total`](Self::total), and all stay zero when the screen is off.
    pub embed_accept: u64,
    /// Pairs the embedding screen rejected (`scale · l1` provably past
    /// the budget). Each is *also* counted in `fast_reject`.
    pub embed_reject: u64,
    /// Pairs the enabled screen could not examine because the entry had
    /// no stored embedding (e.g. freshly loaded from a v1 image, rebuild
    /// pending) — passed downstream unexamined.
    pub embed_bypass: u64,
}

impl ScreenCounters {
    /// Total pairs verified.
    pub fn total(&self) -> u64 {
        self.fast_accept + self.fast_reject + self.full_dp
    }

    /// Add `other` into `self` (for merging per-worker counters).
    pub fn merge(&mut self, other: &ScreenCounters) {
        self.fast_accept += other.fast_accept;
        self.fast_reject += other.fast_reject;
        self.full_dp += other.full_dp;
        self.bypass += other.bypass;
        self.embed_accept += other.embed_accept;
        self.embed_reject += other.embed_reject;
        self.embed_bypass += other.embed_bypass;
    }
}

/// The verification kernel: DP scratch plus screen counters.
///
/// One `Verifier` per shard worker (long-lived) or per query loop; it is
/// cheap to construct but reusing it is what makes verification
/// allocation-free.
#[derive(Debug, Default)]
pub struct Verifier {
    scratch: DpScratch,
    counters: ScreenCounters,
}

impl Verifier {
    /// A fresh kernel with empty scratch and zeroed counters.
    pub fn new() -> Self {
        Verifier::default()
    }

    /// Screen counters accumulated since construction or the last
    /// [`take_counters`](Self::take_counters).
    pub fn counters(&self) -> ScreenCounters {
        self.counters
    }

    /// Return and reset the accumulated counters.
    pub fn take_counters(&mut self) -> ScreenCounters {
        std::mem::take(&mut self.counters)
    }

    /// The kernel predicate: exactly `op.matches_phonemes(cand, query, e)`
    /// (note the argument order — candidate on the left, as every access
    /// path calls it), decided screen-first.
    ///
    /// `cand_clusters`, when provided, must be `op.cluster_ids(cand)` —
    /// stores cache these per entry; `None` derives cluster ids on the fly
    /// (still allocation-free, one table load per symbol).
    ///
    /// `cand_embed`, when provided *and* [`EMBED_DIM`] bytes long, must be
    /// `op.embed_for(cand)` — the embedding screen only ever reads stored
    /// vectors (it never derives them per pair; a missing or pending
    /// embedding just counts as `embed_bypass` and flows downstream).
    pub fn matches(
        &mut self,
        op: &LexEqual,
        query: &PreparedQuery,
        cand: &PhonemeString,
        cand_clusters: Option<&[u8]>,
        cand_embed: Option<&[u8]>,
        e: f64,
    ) -> bool {
        if *cand == query.phonemes {
            self.counters.fast_accept += 1;
            return true;
        }
        let smaller = cand.len().min(query.phonemes.len());
        // Same strict-predicate budget as `matches_phonemes`.
        let k = (e * smaller as f64 - 1e-9).max(1e-12);
        // Length filter (min_indel is 1): mirrors the first check inside
        // `within_distance`, hoisted here so it counts as a fast reject.
        if cand.len().abs_diff(query.phonemes.len()) as f64 > k {
            self.counters.fast_reject += 1;
            return false;
        }
        // Embedding screen (DESIGN §5j): `embed_scale · l1` is a proven
        // lower bound on the exact distance, so exceeding the budget —
        // with a 1e-6 margin dwarfing any f64 rounding — is a sound
        // reject. Runs ahead of the Myers screens because it is O(1) in
        // the candidate's length and also covers pattern-less queries.
        let embed_scale = op.embed_scale();
        if embed_scale > 0.0 {
            match cand_embed.filter(|v| v.len() == EMBED_DIM) {
                Some(emb) => {
                    if embed_scale * l1(emb, &query.embed) as f64 > k + 1e-6 {
                        self.counters.embed_reject += 1;
                        self.counters.fast_reject += 1;
                        return false;
                    }
                    self.counters.embed_accept += 1;
                }
                None => self.counters.embed_bypass += 1,
            }
        }
        // Both patterns exist iff 1 ≤ |query| ≤ 64.
        if let (Some(phon), Some(clus)) = (&query.phon_pattern, &query.clus_pattern) {
            let clusters = op.cost_model().clusters();
            let lev_clus = match cand_clusters {
                Some(ids) => clus.distance(ids.iter().copied()),
                None => clus.distance(cand.iter().map(|p| clusters.cluster_of(*p).0)),
            };
            // Distance ≥ cluster-id Levenshtein · per-op floor: reject.
            // (The scale is exactly 1.0 for the clustered model, keeping
            // this arithmetic bit-identical to the historical screen.)
            if lev_clus as f64 * op.clus_reject_scale() > k + 1e-12 {
                self.counters.fast_reject += 1;
                return false;
            }
            // Clustered distance ≤ phoneme Levenshtein: accept.
            let lev_phon = phon.distance(cand.iter().map(|p| p.id()));
            if lev_phon as f64 <= k + 1e-12 {
                self.counters.fast_accept += 1;
                return true;
            }
        } else {
            self.counters.bypass += 1;
        }
        self.counters.full_dp += 1;
        within_distance_scratch(
            cand.as_slice(),
            query.phonemes.as_slice(),
            k,
            op.dense_cost(),
            &mut self.scratch,
        )
    }
}

/// Batch-shape statistics for [`BatchVerifier`]: how many interleaved
/// steps ran and how full their lanes were, split by outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchCounters {
    /// Interleaved verification steps ([`BatchVerifier::matches_lanes`]
    /// invocations).
    pub calls: u64,
    /// Sum of lane counts over all calls (`lanes_sum / calls` is the
    /// mean batch fill).
    pub lanes_sum: u64,
    /// Widest batch seen.
    pub lanes_max: u64,
    /// Lanes decided by equality or the phoneme fast-accept screen.
    pub lane_accept: u64,
    /// Lanes decided by the length filter or the cluster fast-reject
    /// screen.
    pub lane_reject: u64,
    /// Lanes drained through the dense banded DP.
    pub lane_dp: u64,
}

impl BatchCounters {
    /// Add `other` into `self` (`lanes_max` merges by maximum).
    pub fn merge(&mut self, other: &BatchCounters) {
        self.calls += other.calls;
        self.lanes_sum += other.lanes_sum;
        self.lanes_max = self.lanes_max.max(other.lanes_max);
        self.lane_accept += other.lane_accept;
        self.lane_reject += other.lane_reject;
        self.lane_dp += other.lane_dp;
    }
}

/// The batched verification kernel: verdicts over a slice of up to
/// [`MAX_LANES`] candidates per step, bit-for-bit identical to running
/// [`Verifier::matches`] on each candidate in turn.
///
/// Where the pair-at-a-time kernel leaves instruction-level parallelism
/// on the table (both the Myers recurrence and the DP column scan are
/// serial dependency chains), the batched kernel restructures the work
/// per *batch*:
///
/// 1. per-lane scalar pre-screens (equality, threshold, length filter);
/// 2. one **interleaved** Myers pass over the cluster-id strings of all
///    surviving lanes (struct-of-arrays state, shared pattern masks —
///    see `lexequal_matcher::myers_batch`) for the fast-reject bound;
/// 3. one interleaved Myers pass over the phoneme-id strings of the
///    remainder for the fast-accept bound;
/// 4. a DP drain of still-undecided lanes through the **dense SIMD**
///    banded DP (`lexequal_matcher::simd`), with the backend fixed at
///    construction from [`simd_level`].
///
/// Exactness: the lanes never interact — each step computes exactly the
/// distances and comparisons the scalar kernel computes per pair, on the
/// same floats in the same per-pair order — so reordering work *across*
/// lanes cannot change any verdict.
///
/// Like [`Verifier`], it owns its DP scratch and per-lane id buffers, so
/// steady-state verification performs zero heap allocations.
#[derive(Debug)]
pub struct BatchVerifier {
    scratch: DpScratch,
    counters: ScreenCounters,
    batch: BatchCounters,
    width: usize,
    level: SimdLevel,
    /// Per-lane cluster-id buffers (filled only for lanes whose caller
    /// did not supply cached cluster ids); phoneme ids are read in
    /// place via [`PhonemeString::id_bytes`], no buffer needed.
    clus_bufs: Vec<Vec<u8>>,
    /// Screen scratch, kept across calls so each flush skips ~0.5KB of
    /// array zero-inits: per-slot Myers distances, survivor lane
    /// indices, undecided (DP-bound) lane indices, and lanes surviving
    /// the embedding screen.
    scr_dists: [usize; MAX_LANES],
    scr_surv: [usize; MAX_LANES],
    scr_dp: [usize; MAX_LANES],
    scr_emb: [usize; MAX_LANES],
}

impl Default for BatchVerifier {
    fn default() -> Self {
        BatchVerifier::new()
    }
}

impl BatchVerifier {
    /// A fresh kernel at the full [`MAX_LANES`] width, with the DP
    /// backend from the process-wide [`simd_level`] dispatch.
    pub fn new() -> Self {
        BatchVerifier::with_width_and_level(MAX_LANES, simd_level())
    }

    /// A kernel with an explicit batch width (`1..=MAX_LANES`) and DP
    /// backend — the differential suites and benchmarks sweep these.
    ///
    /// # Panics
    ///
    /// Panics when `width` is 0 or exceeds [`MAX_LANES`].
    pub fn with_width_and_level(width: usize, level: SimdLevel) -> Self {
        assert!(
            (1..=MAX_LANES).contains(&width),
            "batch width must be in 1..={MAX_LANES}"
        );
        BatchVerifier {
            scratch: DpScratch::default(),
            counters: ScreenCounters::default(),
            batch: BatchCounters::default(),
            width,
            level,
            clus_bufs: (0..MAX_LANES).map(|_| Vec::new()).collect(),
            scr_dists: [0; MAX_LANES],
            scr_surv: [0; MAX_LANES],
            scr_dp: [0; MAX_LANES],
            scr_emb: [0; MAX_LANES],
        }
    }

    /// The batch width [`verify_ids`](Self::verify_ids) fills lanes to.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The DP backend this kernel drains undecided lanes with.
    pub fn simd_level(&self) -> SimdLevel {
        self.level
    }

    /// Screen counters accumulated since construction or the last
    /// [`take_counters`](Self::take_counters) — same per-pair semantics
    /// as [`Verifier::counters`].
    pub fn counters(&self) -> ScreenCounters {
        self.counters
    }

    /// Return and reset the accumulated screen counters.
    pub fn take_counters(&mut self) -> ScreenCounters {
        std::mem::take(&mut self.counters)
    }

    /// Batch-shape counters accumulated since construction or the last
    /// [`take_batch_counters`](Self::take_batch_counters).
    pub fn batch_counters(&self) -> BatchCounters {
        self.batch
    }

    /// Return and reset the accumulated batch-shape counters.
    pub fn take_batch_counters(&mut self) -> BatchCounters {
        std::mem::take(&mut self.batch)
    }

    /// Decide `op.matches_phonemes(cand, query, e)` for every lane:
    /// `verdicts[l]` receives the verdict for `lanes[l]`, bit-for-bit
    /// what [`Verifier::matches`] returns for that pair.
    ///
    /// Each lane is a candidate plus its optional cached cluster-id
    /// sequence (`op.cluster_ids(cand)`) and optional stored embedding
    /// (`op.embed_for(cand)`); `None` cluster ids are derived into an
    /// internal per-lane buffer, while a `None` (or wrong-length)
    /// embedding just bypasses the embedding screen — embeddings are
    /// never derived per pair.
    ///
    /// # Panics
    ///
    /// Panics when `lanes.len() > MAX_LANES` or `verdicts` is shorter
    /// than `lanes`.
    pub fn matches_lanes(
        &mut self,
        op: &LexEqual,
        query: &PreparedQuery,
        lanes: &[Lane<'_>],
        e: f64,
        verdicts: &mut [bool],
    ) {
        let w = lanes.len();
        assert!(w <= MAX_LANES, "at most {MAX_LANES} lanes per call");
        assert!(verdicts.len() >= w, "verdicts must hold one bool per lane");
        self.batch.calls += 1;
        self.batch.lanes_sum += w as u64;
        self.batch.lanes_max = self.batch.lanes_max.max(w as u64);

        // Per-lane pre-screens: equality accept, threshold, length
        // filter — identical arithmetic to the scalar kernel.
        let mut ks = [0.0f64; MAX_LANES];
        let mut pending = [0usize; MAX_LANES];
        let mut n_pending = 0;
        for (l, &(cand, _, _)) in lanes.iter().enumerate() {
            if *cand == query.phonemes {
                self.counters.fast_accept += 1;
                self.batch.lane_accept += 1;
                verdicts[l] = true;
                continue;
            }
            let smaller = cand.len().min(query.phonemes.len());
            // Same strict-predicate budget as `matches_phonemes`.
            let k = (e * smaller as f64 - 1e-9).max(1e-12);
            ks[l] = k;
            if cand.len().abs_diff(query.phonemes.len()) as f64 > k {
                self.counters.fast_reject += 1;
                self.batch.lane_reject += 1;
                verdicts[l] = false;
                continue;
            }
            pending[n_pending] = l;
            n_pending += 1;
        }

        self.screen_pending(op, query, lanes, &ks, &pending[..n_pending], verdicts);
    }

    /// The interleaved-screen core: decide every `pending` lane (indices
    /// into `lanes`, each already past the equality and length filters,
    /// with its budget in `ks`) through the lock-step Myers screens and
    /// the SIMD DP drain. Shared by [`matches_lanes`](Self::matches_lanes)
    /// and the id-stream flush path, which computes `ks` while chunking
    /// and so skips the per-lane pre-screen here.
    fn screen_pending(
        &mut self,
        op: &LexEqual,
        query: &PreparedQuery,
        lanes: &[Lane<'_>],
        ks: &[f64; MAX_LANES],
        pending: &[usize],
        verdicts: &mut [bool],
    ) {
        // Embedding screen (DESIGN §5j), ahead of the Myers screens:
        // `embed_scale · l1` lower-bounds the exact distance, so lanes it
        // rejects are settled without touching the candidate strings at
        // all — and unlike the Myers screens it also covers pattern-less
        // (>64-phoneme) queries. Same per-pair arithmetic and counter
        // discipline as the scalar kernel; lanes without a stored
        // embedding flow through unexamined (`embed_bypass`).
        let embed_scale = op.embed_scale();
        let pending: &[usize] = if embed_scale > 0.0 {
            let mut n_emb = 0;
            for &l in pending {
                match lanes[l].2.filter(|v| v.len() == EMBED_DIM) {
                    Some(emb) => {
                        if embed_scale * l1(emb, &query.embed) as f64 > ks[l] + 1e-6 {
                            self.counters.embed_reject += 1;
                            self.counters.fast_reject += 1;
                            self.batch.lane_reject += 1;
                            verdicts[l] = false;
                        } else {
                            self.counters.embed_accept += 1;
                            self.scr_emb[n_emb] = l;
                            n_emb += 1;
                        }
                    }
                    None => {
                        self.counters.embed_bypass += 1;
                        self.scr_emb[n_emb] = l;
                        n_emb += 1;
                    }
                }
            }
            &self.scr_emb[..n_emb]
        } else {
            pending
        };
        let n_pending = pending.len();

        // Lane indices still undecided after the screens.
        let mut n_dp = 0;

        if let (Some(phon), Some(clus)) = (&query.phon_pattern, &query.clus_pattern) {
            // Interleaved cluster screen: one pass advances every
            // pending lane's Myers recurrence in lock-step.
            let clusters = op.cost_model().clusters();
            for (slot, &l) in pending[..n_pending].iter().enumerate() {
                let (cand, cached, _) = lanes[l];
                if cached.is_none() {
                    let buf = &mut self.clus_bufs[slot];
                    buf.clear();
                    buf.extend(cand.iter().map(|p| clusters.cluster_of(*p).0));
                }
            }
            let mut texts: [&[u8]; MAX_LANES] = [&[]; MAX_LANES];
            for (slot, &l) in pending[..n_pending].iter().enumerate() {
                texts[slot] = match lanes[l].1 {
                    Some(ids) => ids,
                    None => &self.clus_bufs[slot],
                };
            }
            clus.distance_batch(&texts[..n_pending], &mut self.scr_dists, self.level);
            // Distance ≥ cluster-id Levenshtein · per-op floor: reject
            // (scale exactly 1.0 for the clustered model — bit-identical
            // to the historical screen).
            let scale = op.clus_reject_scale();
            let mut n_surv = 0;
            for (slot, &l) in pending[..n_pending].iter().enumerate() {
                if self.scr_dists[slot] as f64 * scale > ks[l] + 1e-12 {
                    self.counters.fast_reject += 1;
                    self.batch.lane_reject += 1;
                    verdicts[l] = false;
                } else {
                    self.scr_surv[n_surv] = l;
                    n_surv += 1;
                }
            }

            // Interleaved phoneme screen over the survivors; texts view
            // each candidate's phoneme ids in place — no copy.
            let mut texts: [&[u8]; MAX_LANES] = [&[]; MAX_LANES];
            for (slot, &l) in self.scr_surv[..n_surv].iter().enumerate() {
                texts[slot] = lanes[l].0.id_bytes();
            }
            phon.distance_batch(&texts[..n_surv], &mut self.scr_dists, self.level);
            // Clustered distance ≤ phoneme Levenshtein: accept.
            for slot in 0..n_surv {
                let l = self.scr_surv[slot];
                if self.scr_dists[slot] as f64 <= ks[l] + 1e-12 {
                    self.counters.fast_accept += 1;
                    self.batch.lane_accept += 1;
                    verdicts[l] = true;
                } else {
                    self.scr_dp[n_dp] = l;
                    n_dp += 1;
                }
            }
        } else {
            // No patterns (query empty or >64 phonemes): every pending
            // lane bypasses the screens and goes straight to the DP.
            for &l in pending {
                self.counters.bypass += 1;
                self.scr_dp[n_dp] = l;
                n_dp += 1;
            }
        }

        // DP drain: the dense SIMD banded DP, bit-identical to the
        // generic `within_distance_scratch` on the same matrix.
        let dense = op.dense_cost();
        for i in 0..n_dp {
            let l = self.scr_dp[i];
            self.counters.full_dp += 1;
            self.batch.lane_dp += 1;
            verdicts[l] = within_distance_dense(
                lanes[l].0.id_bytes(),
                &query.phoneme_ids,
                ks[l],
                dense.matrix(),
                dense.inventory_len(),
                &mut self.scratch,
                self.level,
            );
        }
    }

    /// Verify corpus entries by id in width-sized batches, appending the
    /// matching ids to `hits` in input order; returns the number of
    /// candidates verified.
    ///
    /// Candidates the O(1) pre-screens settle (equality accept, length
    /// filter) are decided inline as the id stream arrives; only the
    /// survivors occupy batch lanes, so every interleaved step runs with
    /// [`width`](Self::width) full Myers lanes instead of carrying
    /// already-decided passengers. Hit order stays exactly the input id
    /// order: an equality accept (the one inline disposition that emits
    /// a hit) first flushes any pending partial batch, whose lanes all
    /// precede it in the stream.
    ///
    /// `cluster_ids`, when provided, must hold `op.cluster_ids` of every
    /// corpus entry (stores cache these), and `embeds` likewise
    /// `op.embed_for` of every entry (entries whose stored vector is
    /// empty or mis-sized bypass the embedding screen). The element
    /// types are anything byte-sliceable, so owned `Vec<u8>` columns and
    /// borrowed mmap-backed `Bytes` columns verify through the same
    /// kernel.
    #[allow(clippy::too_many_arguments)]
    pub fn verify_ids<I, C, E>(
        &mut self,
        op: &LexEqual,
        query: &PreparedQuery,
        corpus: &[PhonemeString],
        cluster_ids: Option<&[C]>,
        embeds: Option<&[E]>,
        ids: I,
        e: f64,
        hits: &mut Vec<u32>,
    ) -> usize
    where
        I: IntoIterator<Item = u32>,
        C: AsRef<[u8]>,
        E: AsRef<[u8]>,
    {
        let mut lane_ids = [0u32; MAX_LANES];
        let mut lane_ks = [0.0f64; MAX_LANES];
        let mut filled = 0;
        let mut verified = 0;
        for id in ids {
            verified += 1;
            let cand = &corpus[id as usize];
            if *cand == query.phonemes {
                // Keep hits in input order: everything pending precedes
                // this id in the stream, so decide it first.
                if filled > 0 {
                    let (ids, ks) = (&lane_ids[..filled], &lane_ks);
                    self.flush_ids(op, query, corpus, cluster_ids, embeds, ids, ks, hits);
                    filled = 0;
                }
                self.counters.fast_accept += 1;
                hits.push(id);
                continue;
            }
            let smaller = cand.len().min(query.phonemes.len());
            // Same strict-predicate budget as `matches_phonemes`.
            let k = (e * smaller as f64 - 1e-9).max(1e-12);
            if cand.len().abs_diff(query.phonemes.len()) as f64 > k {
                self.counters.fast_reject += 1;
                continue;
            }
            lane_ids[filled] = id;
            lane_ks[filled] = k;
            // The flush pointer-chases this lane's payloads up to
            // `width` ids from now: start pulling them in behind the
            // pre-screen, which only reads lengths from the headers.
            #[cfg(target_arch = "x86_64")]
            unsafe {
                use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                _mm_prefetch(cand.id_bytes().as_ptr().cast(), _MM_HINT_T0);
                if let Some(c) = cluster_ids {
                    _mm_prefetch(c[id as usize].as_ref().as_ptr().cast(), _MM_HINT_T0);
                }
                if let Some(em) = embeds {
                    _mm_prefetch(em[id as usize].as_ref().as_ptr().cast(), _MM_HINT_T0);
                }
            }
            filled += 1;
            if filled == self.width {
                let (ids, ks) = (&lane_ids[..filled], &lane_ks);
                self.flush_ids(op, query, corpus, cluster_ids, embeds, ids, ks, hits);
                filled = 0;
            }
        }
        if filled > 0 {
            let (ids, ks) = (&lane_ids[..filled], &lane_ks);
            self.flush_ids(op, query, corpus, cluster_ids, embeds, ids, ks, hits);
        }
        verified
    }

    /// Flush one batch of pre-screened ids (each with its precomputed
    /// budget in `ks`) through the interleaved screens, pushing matches
    /// onto `hits` in id order.
    #[allow(clippy::too_many_arguments)]
    fn flush_ids<C: AsRef<[u8]>, E: AsRef<[u8]>>(
        &mut self,
        op: &LexEqual,
        query: &PreparedQuery,
        corpus: &[PhonemeString],
        cluster_ids: Option<&[C]>,
        embeds: Option<&[E]>,
        ids: &[u32],
        ks: &[f64; MAX_LANES],
        hits: &mut Vec<u32>,
    ) {
        let n = ids.len();
        self.batch.calls += 1;
        self.batch.lanes_sum += n as u64;
        self.batch.lanes_max = self.batch.lanes_max.max(n as u64);
        // Every flushed lane is pending by construction.
        const IDENT: [usize; MAX_LANES] = {
            let mut a = [0usize; MAX_LANES];
            let mut i = 0;
            while i < MAX_LANES {
                a[i] = i;
                i += 1;
            }
            a
        };
        let mut lanes: [Lane<'_>; MAX_LANES] = [(&query.phonemes, None, None); MAX_LANES];
        for (slot, &id) in ids.iter().enumerate() {
            lanes[slot] = (
                &corpus[id as usize],
                cluster_ids.map(|c| c[id as usize].as_ref()),
                embeds.map(|em| em[id as usize].as_ref()),
            );
        }
        let mut verdicts = [false; MAX_LANES];
        self.screen_pending(op, query, &lanes[..n], ks, &IDENT[..n], &mut verdicts);
        for (slot, &id) in ids.iter().enumerate() {
            if verdicts[slot] {
                hits.push(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatchConfig;
    use lexequal_phoneme::{Inventory, Phoneme};

    /// Deterministic xorshift corpus: phoneme strings of length 0..=70
    /// (past the 64-symbol Myers limit to exercise the no-screen path).
    fn corpus(seed: u64, count: usize) -> Vec<PhonemeString> {
        let mut state = seed;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = Inventory::len() as u64;
        (0..count)
            .map(|_| {
                let len = (next() % 71) as usize;
                PhonemeString::new(
                    (0..len)
                        .map(|_| Phoneme::from_id((next() % n) as u8).unwrap())
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn kernel_agrees_with_reference_on_random_strings() {
        for intra in [0.0, 0.25, 1.0] {
            let op = LexEqual::new(MatchConfig::default().with_intra_cluster_cost(intra));
            let mut v = Verifier::new();
            let strings = corpus(0x5eed_0001 + intra.to_bits(), 40);
            for q in &strings {
                let prepared = op.prepare_query(q);
                let q_check = op.cluster_ids(q);
                assert_eq!(prepared.cluster_ids(), &q_check[..]);
                for c in &strings {
                    for e in [0.0, 0.15, 0.35, 0.5, 1.0] {
                        let want = op.matches_phonemes(c, q, e);
                        let cached = op.cluster_ids(c);
                        let emb = op.embed_for(c);
                        assert_eq!(
                            v.matches(&op, &prepared, c, Some(&cached), Some(&emb), e),
                            want,
                            "cached clusters: |q|={} |c|={} e={e} intra={intra}",
                            q.len(),
                            c.len()
                        );
                        assert_eq!(
                            v.matches(&op, &prepared, c, None, None, e),
                            want,
                            "derived clusters: |q|={} |c|={} e={e} intra={intra}",
                            q.len(),
                            c.len()
                        );
                    }
                }
            }
            let c = v.counters();
            assert_eq!(c.total(), (strings.len() * strings.len() * 5 * 2) as u64);
            assert!(c.fast_accept > 0 && c.fast_reject > 0);
        }
    }

    #[test]
    fn counters_take_and_merge() {
        let op = LexEqual::new(MatchConfig::default());
        let mut v = Verifier::new();
        let strings = corpus(0xabcd, 6);
        let prepared = op.prepare_query(&strings[0]);
        for c in &strings {
            v.matches(&op, &prepared, c, None, None, 0.35);
        }
        let first = v.take_counters();
        assert_eq!(first.total(), strings.len() as u64);
        assert_eq!(v.counters(), ScreenCounters::default());
        let mut sum = ScreenCounters::default();
        sum.merge(&first);
        sum.merge(&first);
        assert_eq!(sum.total(), 2 * first.total());
    }

    #[cfg(feature = "property-tests")]
    mod property {
        use super::*;
        use proptest::prelude::*;

        fn phoneme_string(max_len: usize) -> impl Strategy<Value = PhonemeString> {
            proptest::collection::vec(0..Inventory::len() as u8, 0..=max_len).prop_map(|ids| {
                PhonemeString::new(
                    ids.into_iter()
                        .map(|id| Phoneme::from_id(id).unwrap())
                        .collect(),
                )
            })
        }

        proptest! {
            /// Verifier::matches == matches_phonemes on random phoneme
            /// strings up to length 64 (the Myers screen window).
            #[test]
            fn kernel_equals_reference(
                q in phoneme_string(64),
                c in phoneme_string(64),
                e in 0.0f64..1.2,
                intra in prop_oneof![Just(0.0), Just(0.25), Just(0.5), Just(1.0)]
            ) {
                let op = LexEqual::new(
                    MatchConfig::default().with_intra_cluster_cost(intra),
                );
                let mut v = Verifier::new();
                let prepared = op.prepare_query(&q);
                let cached = op.cluster_ids(&c);
                let emb = op.embed_for(&c);
                let want = op.matches_phonemes(&c, &q, e);
                prop_assert_eq!(v.matches(&op, &prepared, &c, Some(&cached), Some(&emb), e), want);
                prop_assert_eq!(v.matches(&op, &prepared, &c, None, None, e), want);
            }
        }
    }
}
