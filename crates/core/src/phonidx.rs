//! The phonetic index (paper §5.3).
//!
//! "We first grouped the phonemes into equivalent clusters … and assigned
//! a unique number to each of the clusters. Each phoneme string was
//! transformed to a unique numeric string, by concatenating the cluster
//! identifiers of each phoneme in the string. The numeric string thus
//! obtained was converted into an integer — *Grouped Phoneme String
//! Identifier* — which is stored along with the phoneme string. A standard
//! database B-Tree index was built on the grouped phoneme string
//! identifier attribute."
//!
//! Two strings with equal identifiers differ only by intra-cluster
//! substitutions — phonetically close by construction. The price is
//! **false dismissals**: a true match that substitutes *across* clusters,
//! or inserts/deletes a phoneme, maps to a different identifier and is
//! never retrieved. The paper measured that cost at 4–5% of true matches;
//! our evaluation harness reproduces the measurement.

use crate::operator::LexEqual;
use crate::verify::{BatchVerifier, PreparedQuery, Verifier};
use lexequal_phoneme::{ClusterTable, PhonemeString};
use std::collections::HashMap;

/// The phonetic index: grouped-phoneme-string-identifier → string ids.
pub struct PhoneticIndex {
    map: HashMap<i64, Vec<u32>>,
    entries: usize,
}

/// Compute the grouped phoneme string identifier as a database-friendly
/// signed 64-bit integer.
///
/// The cluster-id sequence is first packed positionally into a `u128`
/// (see [`ClusterTable::packed_key`]); folding to `i64` keeps the key
/// *complete* (equal cluster sequences always produce equal keys) at the
/// price of occasional extra candidates from fold collisions — which the
/// verification step removes.
pub fn grouped_id(clusters: &ClusterTable, s: &PhonemeString) -> i64 {
    let wide = clusters.packed_key(s);
    (wide % (i64::MAX as u128)) as i64
}

impl PhoneticIndex {
    /// Build the index over a corpus; ids are positions in `corpus`.
    pub fn build(clusters: &ClusterTable, corpus: &[PhonemeString]) -> Self {
        let mut map: HashMap<i64, Vec<u32>> = HashMap::new();
        for (id, s) in corpus.iter().enumerate() {
            map.entry(grouped_id(clusters, s))
                .or_default()
                .push(id as u32);
        }
        PhoneticIndex {
            map,
            entries: corpus.len(),
        }
    }

    /// Number of strings indexed.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of distinct grouped identifiers (index selectivity).
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Candidate ids whose grouped identifier equals the query's.
    pub fn candidates(&self, clusters: &ClusterTable, query: &PhonemeString) -> Vec<u32> {
        self.map
            .get(&grouped_id(clusters, query))
            .cloned()
            .unwrap_or_default()
    }

    /// Accelerated search: index probe, then verify each candidate with
    /// the exact predicate (the Figure 15 plan). Returns matching ids and
    /// the number of verification (UDF) calls.
    pub fn search(
        &self,
        corpus: &[PhonemeString],
        query: &PhonemeString,
        e: f64,
        operator: &LexEqual,
    ) -> (Vec<u32>, usize) {
        let prepared = operator.prepare_query(query);
        let mut verifier = Verifier::new();
        self.search_with::<Vec<u8>, Vec<u8>>(
            corpus,
            None,
            None,
            &prepared,
            e,
            operator,
            &mut verifier,
        )
    }

    /// [`search`](Self::search) through the verification kernel: same
    /// hits and verification count, but screen-first and allocation-free
    /// when the caller supplies per-string cluster ids (and, optionally,
    /// per-string embeddings) and a long-lived [`Verifier`].
    #[allow(clippy::too_many_arguments)]
    pub fn search_with<C: AsRef<[u8]>, E: AsRef<[u8]>>(
        &self,
        corpus: &[PhonemeString],
        cluster_ids: Option<&[C]>,
        embeds: Option<&[E]>,
        query: &PreparedQuery,
        e: f64,
        operator: &LexEqual,
        verifier: &mut Verifier,
    ) -> (Vec<u32>, usize) {
        let clusters = operator.cost_model().clusters();
        let mut verified = 0usize;
        let mut hits = Vec::new();
        for cand in self.candidates(clusters, query.phonemes()) {
            verified += 1;
            let cc = cluster_ids.map(|c| c[cand as usize].as_ref());
            let ce = embeds.map(|c| c[cand as usize].as_ref());
            if verifier.matches(operator, query, &corpus[cand as usize], cc, ce, e) {
                hits.push(cand);
            }
        }
        hits.sort_unstable();
        (hits, verified)
    }

    /// [`search_with`](Self::search_with) through the batched kernel:
    /// identical hits and verification count, with the index probe's
    /// candidates verified in width-sized interleaved steps.
    #[allow(clippy::too_many_arguments)]
    pub fn search_batched<C: AsRef<[u8]>, E: AsRef<[u8]>>(
        &self,
        corpus: &[PhonemeString],
        cluster_ids: Option<&[C]>,
        embeds: Option<&[E]>,
        query: &PreparedQuery,
        e: f64,
        operator: &LexEqual,
        verifier: &mut BatchVerifier,
    ) -> (Vec<u32>, usize) {
        let clusters = operator.cost_model().clusters();
        let mut hits = Vec::new();
        let cands = self.candidates(clusters, query.phonemes());
        let verified = verifier.verify_ids(
            operator,
            query,
            corpus,
            cluster_ids,
            embeds,
            cands,
            e,
            &mut hits,
        );
        hits.sort_unstable();
        (hits, verified)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatchConfig;
    use lexequal_g2p::Language;

    fn setup(names: &[&str]) -> (LexEqual, Vec<PhonemeString>, PhoneticIndex) {
        let ops = LexEqual::new(MatchConfig::default());
        let corpus: Vec<PhonemeString> = names
            .iter()
            .map(|n| ops.transform(n, Language::English).unwrap())
            .collect();
        let idx = PhoneticIndex::build(ops.cost_model().clusters(), &corpus);
        (ops, corpus, idx)
    }

    #[test]
    fn intra_cluster_variants_share_identifiers() {
        let ops = LexEqual::default();
        let clusters = ops.cost_model().clusters();
        let a: PhonemeString = "neru".parse().unwrap();
        let b: PhonemeString = "neɾu".parse().unwrap(); // r→ɾ same cluster
        let c: PhonemeString = "neku".parse().unwrap(); // r→k cross cluster
        assert_eq!(grouped_id(clusters, &a), grouped_id(clusters, &b));
        assert_ne!(grouped_id(clusters, &a), grouped_id(clusters, &c));
    }

    #[test]
    fn probe_retrieves_like_sounding_names() {
        let (ops, corpus, idx) = setup(&["Nehru", "Gandhi", "Bose", "Patel"]);
        // The Hindi rendering of Nehru probes the same bucket iff its
        // cluster sequence matches; verify through the full search.
        let q = ops.transform("नेहरु", Language::Hindi).unwrap();
        let (hits, _) = idx.search(&corpus, &q, 0.3, &ops);
        // nɛru vs neɦrʊ differ by an inserted ɦ → different identifier:
        // this is exactly the paper's false-dismissal mechanism. The
        // direct English probe, by contrast, must hit.
        let q_en = ops.transform("Nehru", Language::English).unwrap();
        let (hits_en, verified) = idx.search(&corpus, &q_en, 0.3, &ops);
        assert_eq!(hits_en, vec![0]);
        assert!(verified <= corpus.len());
        let _ = hits;
    }

    #[test]
    fn search_never_returns_false_positives() {
        let (ops, corpus, idx) = setup(&["Nehru", "Neru", "Nero", "Gandhi", "Krishnan"]);
        let q = ops.transform("Neru", Language::English).unwrap();
        let (hits, _) = idx.search(&corpus, &q, 0.3, &ops);
        for h in &hits {
            assert!(
                ops.matches_phonemes(&corpus[*h as usize], &q, 0.3),
                "id {h} is not a true match"
            );
        }
    }

    #[test]
    fn hits_are_subset_of_scan_with_possible_dismissals() {
        let (ops, corpus, idx) =
            setup(&["Catherine", "Kathryn", "Cathy", "Nehru", "Nero", "Neruda"]);
        let q = ops.transform("Catherine", Language::English).unwrap();
        let (hits, _) = idx.search(&corpus, &q, 0.4, &ops);
        let scan: Vec<u32> = (0..corpus.len() as u32)
            .filter(|&i| ops.matches_phonemes(&corpus[i as usize], &q, 0.4))
            .collect();
        for h in &hits {
            assert!(scan.contains(h), "index returned a non-scan hit");
        }
        // And the scan can only be >= the index hits (false dismissals).
        assert!(hits.len() <= scan.len());
    }

    #[test]
    fn coarse_clusters_reduce_distinct_keys() {
        let ops = LexEqual::default();
        let names = [
            "Nehru", "Gandhi", "Bose", "Patel", "Kumar", "Sharma", "Iyer", "Reddy", "Menon",
            "Verma",
        ];
        let corpus: Vec<PhonemeString> = names
            .iter()
            .map(|n| ops.transform(n, Language::English).unwrap())
            .collect();
        let fine = PhoneticIndex::build(&ClusterTable::standard(), &corpus);
        let coarse = PhoneticIndex::build(&ClusterTable::coarse(), &corpus);
        assert!(coarse.distinct_keys() <= fine.distinct_keys());
        assert_eq!(fine.len(), names.len());
    }

    #[test]
    fn empty_corpus() {
        let idx = PhoneticIndex::build(&ClusterTable::standard(), &[]);
        assert!(idx.is_empty());
        let ops = LexEqual::default();
        let q: PhonemeString = "neru".parse().unwrap();
        let (hits, verified) = idx.search(&[], &q, 0.3, &ops);
        assert!(hits.is_empty());
        assert_eq!(verified, 0);
    }
}
