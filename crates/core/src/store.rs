//! [`NameStore`]: a multiscript name collection with every access path.
//!
//! This is the library-level packaging of the paper's system: store names
//! in any supported script, then search phonetically via
//!
//! * [`SearchMethod::Scan`] — exact semantics, O(n) predicate evaluations
//!   (the paper's Table 1 baseline);
//! * [`SearchMethod::Qgram`] — q-gram filtered (Table 2);
//! * [`SearchMethod::PhoneticIndex`] — grouped-identifier probe (Table 3,
//!   admits false dismissals);
//! * [`SearchMethod::BkTree`] — a metric-tree alternative implementing the
//!   paper's future-work direction (§6).

use crate::config::MatchConfig;
use crate::operator::LexEqual;
use crate::phonidx::PhoneticIndex;
use crate::qgram_plan::{QgramFilter, QgramMode};
use crate::verify::{BatchVerifier, Verifier};
use lexequal_embed::EMBED_DIM;
use lexequal_g2p::{G2pError, Language};
use lexequal_matcher::{bounded_levenshtein, edit_distance, BkTree, UnitCost};
use lexequal_phoneme::{Bytes, PhonemeString, SharedBytes};
use std::fmt;
use std::ops::Range;

/// Integer Levenshtein distance between phoneme strings — the BK-tree
/// metric (the clustered distance is not integer-valued; Levenshtein
/// bounds it from above, see [`NameStore::search`]). Inserts need the
/// exact distance; range queries use the bounded early-exit form below.
fn levenshtein_phonemes(a: &PhonemeString, b: &PhonemeString) -> u32 {
    edit_distance(a.as_slice(), b.as_slice(), UnitCost) as u32
}

/// The bounded metric BK-tree range queries probe with: Ukkonen-banded,
/// `None` past the bound, so pruned subtrees never pay full-matrix cost.
fn bounded_levenshtein_phonemes(a: &PhonemeString, b: &PhonemeString, bound: u32) -> Option<u32> {
    bounded_levenshtein(a.as_slice(), b.as_slice(), bound)
}

/// One stored name.
#[derive(Debug, Clone)]
pub struct NameEntry {
    /// The lexicographic string as stored.
    pub text: String,
    /// Its language tag.
    pub language: Language,
    /// Its phonemic representation.
    pub phonemes: PhonemeString,
}

/// One name's columns as validated views into a shared allocation —
/// the unit the memory-mapped snapshot loader feeds to
/// [`NameStore::push_shared_entry`]. All four views alias the same
/// owner (the mapping), so adopting an entry is three `Arc` bumps,
/// never a copy.
#[derive(Clone)]
pub struct SharedEntry {
    /// UTF-8 text bytes.
    pub text: SharedBytes,
    /// Language tag.
    pub language: Language,
    /// Raw phoneme inventory ids.
    pub phonemes: SharedBytes,
    /// Cluster ids, parallel to `phonemes`.
    pub clusters: SharedBytes,
    /// Stored phonetic embedding: either [`EMBED_DIM`] bytes, or an
    /// empty view meaning "not persisted" (v1 images) — the store then
    /// bypasses the embedding screen for this entry until
    /// [`NameStore::build_embeddings`] fills it in.
    pub embed: SharedBytes,
}

/// Why [`NameStore::push_shared_entry`] refused an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedEntryError {
    /// The text bytes are not valid UTF-8.
    TextNotUtf8,
    /// A phoneme byte is outside the inventory.
    BadPhonemeId,
    /// The cluster-id vector disagrees with the configured cost model
    /// (wrong length or wrong cluster for a phoneme).
    ClusterMismatch,
    /// The stored embedding vector disagrees with what the configured
    /// embedder computes for the entry's phonemes (wrong length or wrong
    /// bytes; an *empty* vector is legal and means "rebuild later").
    EmbedMismatch,
}

impl fmt::Display for SharedEntryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SharedEntryError::TextNotUtf8 => write!(f, "entry text is not valid UTF-8"),
            SharedEntryError::BadPhonemeId => {
                write!(f, "entry contains a phoneme id outside the inventory")
            }
            SharedEntryError::ClusterMismatch => write!(
                f,
                "stored cluster ids disagree with the configured cost model"
            ),
            SharedEntryError::EmbedMismatch => {
                write!(f, "stored embedding disagrees with the configured embedder")
            }
        }
    }
}

impl std::error::Error for SharedEntryError {}

/// Entry text: an owned string for wire-`ADD`ed names, a borrowed
/// UTF-8-validated view for mmap-loaded corpora.
enum StoredText {
    Owned(String),
    /// Invariant: the viewed bytes are valid UTF-8 (checked at
    /// construction in [`NameStore::push_shared_entry`]).
    Shared(SharedBytes),
}

impl StoredText {
    fn as_str(&self) -> &str {
        match self {
            StoredText::Owned(s) => s,
            // SAFETY: UTF-8 validity was checked when the view was
            // adopted, and the shared allocation is immutable.
            StoredText::Shared(b) => unsafe { std::str::from_utf8_unchecked(b.as_slice()) },
        }
    }
}

/// Which access path a search uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMethod {
    /// Evaluate the predicate on every row.
    Scan,
    /// Q-gram filters, then verify survivors.
    Qgram,
    /// Grouped-phoneme-identifier probe, then verify. May miss matches
    /// whose edits cross clusters (paper: 4–5%).
    PhoneticIndex,
    /// BK-tree range query on Levenshtein radius, then verify.
    BkTree,
}

/// Outcome of a search: matching ids plus the work done.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResult {
    /// Ids (insertion order positions) of matching names.
    pub ids: Vec<u32>,
    /// How many exact-predicate evaluations were needed.
    pub verifications: usize,
}

/// The BK-tree specialisation the store keeps (Levenshtein metric).
type PhonemeBkTree = BkTree<PhonemeString, u32, fn(&PhonemeString, &PhonemeString) -> u32>;

/// A searchable multiscript name collection.
///
/// Storage is column-oriented (texts, languages, phoneme strings,
/// cluster-id vectors in parallel arrays), and every column is
/// borrowed-or-owned: wire-`ADD`ed rows own their buffers, rows loaded
/// from a memory-mapped snapshot are views into the mapping.
pub struct NameStore {
    operator: LexEqual,
    texts: Vec<StoredText>,
    languages: Vec<Language>,
    phonemes: Vec<PhonemeString>,
    /// Per-string cluster-id vectors, parallel to `phonemes` — feeds the
    /// verification kernel's fast-reject screen without per-pair lookups.
    cluster_ids: Vec<Bytes>,
    /// Per-string phonetic embeddings, parallel to `phonemes`: either
    /// [`EMBED_DIM`] bytes, or empty for "not yet built" (entries adopted
    /// from a v1 snapshot image) — the embedding screen bypasses empty
    /// rows until [`build_embeddings`](Self::build_embeddings) fills them.
    embeds: Vec<Bytes>,
    qgram: Option<QgramFilter>,
    phonidx: Option<PhoneticIndex>,
    bktree: Option<PhonemeBkTree>,
}

impl NameStore {
    /// Create an empty store with the given configuration.
    pub fn new(config: MatchConfig) -> Self {
        NameStore {
            operator: LexEqual::new(config),
            texts: Vec::new(),
            languages: Vec::new(),
            phonemes: Vec::new(),
            cluster_ids: Vec::new(),
            embeds: Vec::new(),
            qgram: None,
            phonidx: None,
            bktree: None,
        }
    }

    /// The operator (for direct predicate access).
    pub fn operator(&self) -> &LexEqual {
        &self.operator
    }

    /// Number of stored names.
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// Entry by id, materialized (the store no longer keeps row-shaped
    /// entries; mmap-backed rows borrow their bytes from the mapping).
    pub fn get(&self, id: u32) -> Option<NameEntry> {
        let i = id as usize;
        if i >= self.texts.len() {
            return None;
        }
        Some(NameEntry {
            text: self.texts[i].as_str().to_owned(),
            language: self.languages[i],
            phonemes: self.phonemes[i].clone(),
        })
    }

    /// Entry text by id, in place — no materialization.
    pub fn text(&self, id: u32) -> Option<&str> {
        self.texts.get(id as usize).map(StoredText::as_str)
    }

    /// Entry language by id.
    pub fn language(&self, id: u32) -> Option<Language> {
        self.languages.get(id as usize).copied()
    }

    /// Insert a name; returns its id. Invalidates built access paths
    /// (rebuild after bulk loading — or use [`extend`](Self::extend),
    /// which invalidates only once for a whole batch).
    pub fn insert(&mut self, text: &str, language: Language) -> Result<u32, G2pError> {
        self.extend([(text.to_owned(), language)]).map(|r| r.start)
    }

    /// Bulk-load names; returns the contiguous id range assigned.
    ///
    /// All rows are transformed *first*, so a G2P failure on any row
    /// leaves the store unchanged; the built access paths are then
    /// invalidated once for the whole batch instead of once per row.
    pub fn extend(
        &mut self,
        rows: impl IntoIterator<Item = (String, Language)>,
    ) -> Result<Range<u32>, G2pError> {
        let entries = rows
            .into_iter()
            .map(|(text, language)| {
                Ok(NameEntry {
                    phonemes: self.operator.transform(&text, language)?,
                    text,
                    language,
                })
            })
            .collect::<Result<Vec<_>, G2pError>>()?;
        Ok(self.extend_transformed(entries))
    }

    /// Bulk-load pre-transformed entries (the serving layer transforms on
    /// its own threads); returns the contiguous id range assigned.
    /// Invalidates built access paths once.
    pub fn extend_transformed(&mut self, entries: Vec<NameEntry>) -> Range<u32> {
        let start = self.texts.len() as u32;
        for e in entries {
            self.cluster_ids
                .push(Bytes::from(self.operator.cluster_ids(&e.phonemes)));
            self.embeds
                .push(Bytes::from(self.operator.embed_for(&e.phonemes).to_vec()));
            self.phonemes.push(e.phonemes);
            self.languages.push(e.language);
            self.texts.push(StoredText::Owned(e.text));
        }
        if start != self.texts.len() as u32 {
            self.qgram = None;
            self.phonidx = None;
            self.bktree = None;
        }
        start..self.texts.len() as u32
    }

    /// Adopt one validated entry whose columns are views into a shared
    /// allocation (the mmap-load fast path: three `Arc` bumps per row,
    /// no per-entry heap allocation). Invalidates built access paths.
    ///
    /// Every view is re-validated here so the zero-copy invariants
    /// never depend on the caller: text must be UTF-8, phoneme bytes
    /// must be inventory ids, and the cluster ids must be exactly what
    /// the configured cost model assigns to those phonemes.
    pub fn push_shared_entry(&mut self, entry: SharedEntry) -> Result<u32, SharedEntryError> {
        let SharedEntry {
            text,
            language,
            phonemes,
            clusters,
            embed,
        } = entry;
        if std::str::from_utf8(text.as_slice()).is_err() {
            return Err(SharedEntryError::TextNotUtf8);
        }
        let phonemes =
            PhonemeString::from_shared(phonemes).map_err(|_| SharedEntryError::BadPhonemeId)?;
        if clusters.len() != phonemes.len() {
            return Err(SharedEntryError::ClusterMismatch);
        }
        let table = self.operator.cost_model().clusters();
        let agree = phonemes
            .as_slice()
            .iter()
            .zip(clusters.as_slice())
            .all(|(&p, &c)| table.cluster_of(p).0 == c);
        if !agree {
            return Err(SharedEntryError::ClusterMismatch);
        }
        match embed.len() {
            // Empty means "not persisted" (v1 image); the screen bypasses
            // the row until `build_embeddings` fills it.
            0 => {}
            EMBED_DIM => {
                let expect = self.operator.embedder().embed_ids(phonemes.id_bytes());
                if embed.as_slice() != expect {
                    return Err(SharedEntryError::EmbedMismatch);
                }
            }
            _ => return Err(SharedEntryError::EmbedMismatch),
        }
        let id = self.texts.len() as u32;
        self.cluster_ids.push(Bytes::Shared(clusters));
        self.embeds.push(Bytes::Shared(embed));
        self.phonemes.push(phonemes);
        self.languages.push(language);
        self.texts.push(StoredText::Shared(text));
        self.qgram = None;
        self.phonidx = None;
        self.bktree = None;
        Ok(id)
    }

    /// Pre-size the column vectors for `additional` more entries —
    /// bulk import paths know the count up front, so growth reallocs
    /// (and their copies) are wasted work.
    pub fn reserve(&mut self, additional: usize) {
        self.texts.reserve(additional);
        self.languages.reserve(additional);
        self.phonemes.reserve(additional);
        self.cluster_ids.reserve(additional);
        self.embeds.reserve(additional);
    }

    /// [`push_shared_entry`](Self::push_shared_entry) for entries a
    /// loader has already validated arena-wide (the mmap snapshot
    /// loader checks UTF-8, phoneme ids and cluster agreement over the
    /// whole file before striping) — re-validating 20K entries per
    /// shard would double the cold-start cost for nothing. Debug builds
    /// still assert the invariants; an unvalidated entry here corrupts
    /// answers, not memory (every downstream read is bounds-checked).
    #[doc(hidden)]
    pub fn push_shared_entry_prevalidated(&mut self, entry: SharedEntry) -> u32 {
        debug_assert!(std::str::from_utf8(entry.text.as_slice()).is_ok());
        debug_assert_eq!(entry.clusters.len(), entry.phonemes.len());
        debug_assert!(entry.embed.is_empty() || entry.embed.len() == EMBED_DIM);
        let SharedEntry {
            text,
            language,
            phonemes,
            clusters,
            embed,
        } = entry;
        let phonemes = PhonemeString::from_shared_prevalidated(phonemes);
        let id = self.texts.len() as u32;
        self.cluster_ids.push(Bytes::Shared(clusters));
        self.embeds.push(Bytes::Shared(embed));
        self.phonemes.push(phonemes);
        self.languages.push(language);
        self.texts.push(StoredText::Shared(text));
        self.qgram = None;
        self.phonidx = None;
        self.bktree = None;
        id
    }

    /// Fill in the embedding for every row that lacks one (rows adopted
    /// from a v1 snapshot image arrive with empty embed views). Returns
    /// how many rows were filled; idempotent.
    ///
    /// Deliberately does *not* invalidate built access paths: embeddings
    /// only feed the conservative screen, never candidate generation, so
    /// paths built before the fill stay exactly as correct after it —
    /// rows simply stop being screen-bypassed.
    pub fn build_embeddings(&mut self) -> usize {
        let mut filled = 0usize;
        for (i, e) in self.embeds.iter_mut().enumerate() {
            if e.len() != EMBED_DIM {
                *e = Bytes::from(self.operator.embed_for(&self.phonemes[i]).to_vec());
                filled += 1;
            }
        }
        filled
    }

    /// How many rows still lack an embedding (empty embed view).
    pub fn pending_embeddings(&self) -> usize {
        self.embeds.iter().filter(|e| e.len() != EMBED_DIM).count()
    }

    /// Whether the access path a [`search`](Self::search) via `method`
    /// needs has been built (scans need none).
    pub fn is_built(&self, method: SearchMethod) -> bool {
        match method {
            SearchMethod::Scan => true,
            SearchMethod::Qgram => self.qgram.is_some(),
            SearchMethod::PhoneticIndex => self.phonidx.is_some(),
            SearchMethod::BkTree => self.bktree.is_some(),
        }
    }

    /// Build the q-gram access path.
    pub fn build_qgram(&mut self, q: usize, mode: QgramMode) {
        self.qgram = Some(QgramFilter::build(&self.phonemes, q, mode));
    }

    /// Build the phonetic-index access path.
    pub fn build_phonetic_index(&mut self) {
        self.phonidx = Some(PhoneticIndex::build(
            self.operator.cost_model().clusters(),
            &self.phonemes,
        ));
    }

    /// Build the BK-tree access path (Levenshtein metric over phonemes).
    pub fn build_bktree(&mut self) {
        let mut t: PhonemeBkTree = BkTree::new(levenshtein_phonemes);
        for (i, p) in self.phonemes.iter().enumerate() {
            t.insert(p.clone(), i as u32);
        }
        self.bktree = Some(t);
    }

    /// Search for names phonetically equal to `query` (in `language`)
    /// within threshold `e`, via the chosen access path.
    ///
    /// # Panics
    ///
    /// Panics if the chosen access path has not been built.
    pub fn search(
        &self,
        query: &str,
        language: Language,
        e: f64,
        method: SearchMethod,
    ) -> Result<SearchResult, G2pError> {
        let q = self.operator.transform(query, language)?;
        Ok(self.search_phonemes(&q, e, method))
    }

    /// Search with a pre-transformed query.
    pub fn search_phonemes(&self, q: &PhonemeString, e: f64, method: SearchMethod) -> SearchResult {
        self.search_phonemes_with(q, e, method, &mut Verifier::new())
    }

    /// [`search_phonemes`](Self::search_phonemes) with a caller-owned
    /// [`Verifier`]: identical results, but the kernel's DP scratch and
    /// screen counters persist across calls (the serving layer keeps one
    /// verifier per shard worker).
    pub fn search_phonemes_with(
        &self,
        q: &PhonemeString,
        e: f64,
        method: SearchMethod,
        verifier: &mut Verifier,
    ) -> SearchResult {
        let prepared = self.operator.prepare_query(q);
        match method {
            SearchMethod::Scan => {
                let mut ids = Vec::new();
                for (i, p) in self.phonemes.iter().enumerate() {
                    let cc = Some(self.cluster_ids[i].as_slice());
                    let ce = Some(self.embeds[i].as_slice());
                    if verifier.matches(&self.operator, &prepared, p, cc, ce, e) {
                        ids.push(i as u32);
                    }
                }
                SearchResult {
                    ids,
                    verifications: self.phonemes.len(),
                }
            }
            SearchMethod::Qgram => {
                let f = self.qgram.as_ref().expect("call build_qgram first");
                let (ids, verifications) = f.search_with(
                    &self.phonemes,
                    Some(&self.cluster_ids),
                    Some(&self.embeds),
                    &prepared,
                    e,
                    &self.operator,
                    verifier,
                );
                SearchResult { ids, verifications }
            }
            SearchMethod::PhoneticIndex => {
                let idx = self
                    .phonidx
                    .as_ref()
                    .expect("call build_phonetic_index first");
                let (ids, verifications) = idx.search_with(
                    &self.phonemes,
                    Some(&self.cluster_ids),
                    Some(&self.embeds),
                    &prepared,
                    e,
                    &self.operator,
                    verifier,
                );
                SearchResult { ids, verifications }
            }
            SearchMethod::BkTree => {
                let t = self.bktree.as_ref().expect("call build_bktree first");
                // Levenshtein radius that can contain every match under
                // the configured model: k / min positive op cost (full
                // scan when some substitution is free — no finite radius
                // exists).
                let k = e * q.len() as f64;
                match self.operator.min_nonzero_cost() {
                    Some(c) => {
                        let radius = (k / c).floor() as u32;
                        let mut verifications = 0usize;
                        let mut ids = Vec::new();
                        for (_, &id, _) in t.range_bounded(q, radius, bounded_levenshtein_phonemes)
                        {
                            verifications += 1;
                            let cc = Some(self.cluster_ids[id as usize].as_slice());
                            let ce = Some(self.embeds[id as usize].as_slice());
                            if verifier.matches(
                                &self.operator,
                                &prepared,
                                &self.phonemes[id as usize],
                                cc,
                                ce,
                                e,
                            ) {
                                ids.push(id);
                            }
                        }
                        ids.sort_unstable();
                        SearchResult { ids, verifications }
                    }
                    None => self.search_phonemes_with(q, e, SearchMethod::Scan, verifier),
                }
            }
        }
    }

    /// [`search_phonemes_with`](Self::search_phonemes_with) through the
    /// batched kernel: the access path produces candidate ids as before,
    /// and the [`BatchVerifier`] disposes of them in width-sized
    /// interleaved steps. Hits and verification counts are bit-for-bit
    /// identical to the pair-at-a-time form on every method.
    pub fn search_phonemes_batched(
        &self,
        q: &PhonemeString,
        e: f64,
        method: SearchMethod,
        verifier: &mut BatchVerifier,
    ) -> SearchResult {
        let prepared = self.operator.prepare_query(q);
        match method {
            SearchMethod::Scan => {
                let mut ids = Vec::new();
                let verifications = verifier.verify_ids(
                    &self.operator,
                    &prepared,
                    &self.phonemes,
                    Some(&self.cluster_ids),
                    Some(&self.embeds),
                    0..self.phonemes.len() as u32,
                    e,
                    &mut ids,
                );
                SearchResult { ids, verifications }
            }
            SearchMethod::Qgram => {
                let f = self.qgram.as_ref().expect("call build_qgram first");
                let (ids, verifications) = f.search_batched(
                    &self.phonemes,
                    Some(&self.cluster_ids),
                    Some(&self.embeds),
                    &prepared,
                    e,
                    &self.operator,
                    verifier,
                );
                SearchResult { ids, verifications }
            }
            SearchMethod::PhoneticIndex => {
                let idx = self
                    .phonidx
                    .as_ref()
                    .expect("call build_phonetic_index first");
                let (ids, verifications) = idx.search_batched(
                    &self.phonemes,
                    Some(&self.cluster_ids),
                    Some(&self.embeds),
                    &prepared,
                    e,
                    &self.operator,
                    verifier,
                );
                SearchResult { ids, verifications }
            }
            SearchMethod::BkTree => {
                let t = self.bktree.as_ref().expect("call build_bktree first");
                // Same radius mapping (and free-substitution fallback)
                // as the pair-at-a-time form.
                let k = e * q.len() as f64;
                match self.operator.min_nonzero_cost() {
                    Some(c) => {
                        let radius = (k / c).floor() as u32;
                        let mut ids = Vec::new();
                        let leaf_runs = t.range_bounded(q, radius, bounded_levenshtein_phonemes);
                        let verifications = verifier.verify_ids(
                            &self.operator,
                            &prepared,
                            &self.phonemes,
                            Some(&self.cluster_ids),
                            Some(&self.embeds),
                            leaf_runs.iter().map(|(_, &id, _)| id),
                            e,
                            &mut ids,
                        );
                        ids.sort_unstable();
                        SearchResult { ids, verifications }
                    }
                    None => self.search_phonemes_batched(q, e, SearchMethod::Scan, verifier),
                }
            }
        }
    }

    /// Every stored entry, materialized in id order — the export side
    /// of snapshot persistence: entry `i` here is id `i`, so a store
    /// rebuilt by feeding this vector back through
    /// [`extend_transformed`](Self::extend_transformed) assigns every
    /// name its original id.
    pub fn export_entries(&self) -> Vec<NameEntry> {
        (0..self.len() as u32)
            .map(|i| self.get(i).expect("id in range"))
            .collect()
    }

    /// Per-string cluster-id vectors, parallel to
    /// [`phoneme_strings`](Self::phoneme_strings).
    pub fn cluster_id_vectors(&self) -> &[Bytes] {
        &self.cluster_ids
    }

    /// Per-string embedding vectors, parallel to
    /// [`phoneme_strings`](Self::phoneme_strings) — [`EMBED_DIM`] bytes
    /// each, or empty where not yet built.
    pub fn embed_vectors(&self) -> &[Bytes] {
        &self.embeds
    }

    /// The phoneme strings (benchmark access).
    pub fn phoneme_strings(&self) -> &[PhonemeString] {
        &self.phonemes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> NameStore {
        let mut s = NameStore::new(MatchConfig::default());
        for (n, l) in [
            ("Nehru", Language::English),
            ("नेहरु", Language::Hindi),
            ("நேரு", Language::Tamil),
            ("Nero", Language::English),
            ("Gandhi", Language::English),
            ("गांधी", Language::Hindi),
            ("Krishnan", Language::English),
        ] {
            s.insert(n, l).unwrap();
        }
        s.build_qgram(3, QgramMode::Strict);
        s.build_phonetic_index();
        s.build_bktree();
        s
    }

    #[test]
    fn scan_finds_cross_script_matches() {
        let s = store();
        let r = s
            .search("Nehru", Language::English, 0.45, SearchMethod::Scan)
            .unwrap();
        assert!(r.ids.contains(&0)); // itself
        assert!(r.ids.contains(&1)); // नेहरु
        assert!(r.ids.contains(&2)); // நேரு
        assert!(!r.ids.contains(&4)); // not Gandhi
        assert_eq!(r.verifications, s.len());
    }

    #[test]
    fn qgram_matches_scan_in_strict_mode() {
        let s = store();
        for query in ["Nehru", "Gandhi", "Krishnan"] {
            let scan = s
                .search(query, Language::English, 0.3, SearchMethod::Scan)
                .unwrap();
            let qg = s
                .search(query, Language::English, 0.3, SearchMethod::Qgram)
                .unwrap();
            assert_eq!(scan.ids, qg.ids, "query {query}");
            assert!(qg.verifications <= scan.verifications);
        }
    }

    #[test]
    fn bktree_matches_scan() {
        let s = store();
        for query in ["Nehru", "Gandhi"] {
            let scan = s
                .search(query, Language::English, 0.3, SearchMethod::Scan)
                .unwrap();
            let bk = s
                .search(query, Language::English, 0.3, SearchMethod::BkTree)
                .unwrap();
            assert_eq!(scan.ids, bk.ids, "query {query}");
        }
    }

    #[test]
    fn phonetic_index_is_sound_but_may_dismiss() {
        let s = store();
        let scan = s
            .search("Nehru", Language::English, 0.3, SearchMethod::Scan)
            .unwrap();
        let pi = s
            .search("Nehru", Language::English, 0.3, SearchMethod::PhoneticIndex)
            .unwrap();
        for id in &pi.ids {
            assert!(scan.ids.contains(id), "false positive from index");
        }
        assert!(pi.verifications <= scan.verifications);
    }

    #[test]
    fn kernel_path_is_identical_to_reference_on_every_method() {
        // The kernel (screens + dense DP + scratch) must reproduce the
        // raw `matches_phonemes` decision bit-for-bit on every access
        // path; the phonetic index may dismiss but never diverge on what
        // it verifies.
        let s = store();
        let mut verifier = Verifier::new();
        for query in ["Nehru", "Nero", "Gandhi", "Krishnan", "Bose"] {
            let q = s.operator().transform(query, Language::English).unwrap();
            for e in [0.0, 0.15, 0.3, 0.45, 0.75] {
                let reference: Vec<u32> = (0..s.len() as u32)
                    .filter(|&i| {
                        s.operator()
                            .matches_phonemes(&s.phoneme_strings()[i as usize], &q, e)
                    })
                    .collect();
                for method in [
                    SearchMethod::Scan,
                    SearchMethod::Qgram,
                    SearchMethod::BkTree,
                ] {
                    let r = s.search_phonemes_with(&q, e, method, &mut verifier);
                    assert_eq!(r.ids, reference, "{query} e={e} {method:?}");
                }
                let pi = s.search_phonemes_with(&q, e, SearchMethod::PhoneticIndex, &mut verifier);
                for id in &pi.ids {
                    assert!(reference.contains(id), "{query} e={e} index false positive");
                }
            }
        }
        let c = verifier.counters();
        assert!(c.total() > 0);
        assert!(c.fast_reject > 0, "screens never fired: {c:?}");
    }

    #[test]
    fn gandhi_matches_its_hindi_form() {
        let s = store();
        let r = s
            .search("Gandhi", Language::English, 0.4, SearchMethod::Scan)
            .unwrap();
        assert!(r.ids.contains(&5), "गांधी should match Gandhi: {:?}", r.ids);
    }

    #[test]
    fn get_returns_entries() {
        let s = store();
        let e = s.get(1).unwrap();
        assert_eq!(e.text, "नेहरु");
        assert_eq!(e.language, Language::Hindi);
        assert!(s.get(99).is_none());
    }

    #[test]
    #[should_panic(expected = "build_qgram")]
    fn qgram_search_panics_without_build() {
        let mut s = NameStore::new(MatchConfig::default());
        s.insert("Nehru", Language::English).unwrap();
        let _ = s.search("Nehru", Language::English, 0.3, SearchMethod::Qgram);
    }

    #[test]
    fn extend_assigns_contiguous_ids_and_matches_inserts() {
        let a = store();
        let mut b = NameStore::new(MatchConfig::default());
        let range = b
            .extend(
                (0..a.len() as u32)
                    .map(|i| a.get(i).unwrap())
                    .map(|e| (e.text.clone(), e.language)),
            )
            .unwrap();
        assert_eq!(range, 0..7);
        b.build_qgram(3, QgramMode::Strict);
        for (method, built) in [(SearchMethod::Scan, true), (SearchMethod::Qgram, true)] {
            assert_eq!(b.is_built(method), built);
            let x = a.search("Nehru", Language::English, 0.45, method).unwrap();
            let y = b.search("Nehru", Language::English, 0.45, method).unwrap();
            assert_eq!(x, y);
        }
    }

    #[test]
    fn extend_is_all_or_nothing() {
        let mut s = NameStore::new(MatchConfig::default());
        // Second row's script contradicts its language tag: the whole
        // batch must be rejected.
        let r = s.extend([
            ("Nehru".to_owned(), Language::English),
            ("नेहरु".to_owned(), Language::Tamil),
        ]);
        assert!(r.is_err());
        assert!(s.is_empty());
    }

    #[test]
    fn extend_invalidates_access_paths_once() {
        let mut s = store();
        assert!(s.is_built(SearchMethod::Qgram));
        assert!(s.is_built(SearchMethod::PhoneticIndex));
        assert!(s.is_built(SearchMethod::BkTree));
        // An empty batch is a no-op that keeps the paths.
        let r = s.extend(std::iter::empty()).unwrap();
        assert_eq!(r, 7..7);
        assert!(s.is_built(SearchMethod::Qgram));
        // A real batch invalidates them.
        s.extend([("Bose".to_owned(), Language::English)]).unwrap();
        assert!(!s.is_built(SearchMethod::Qgram));
        assert!(!s.is_built(SearchMethod::BkTree));
        assert!(s.is_built(SearchMethod::Scan));
    }
}
