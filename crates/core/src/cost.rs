//! The clustered phoneme substitution cost (paper §3.3).
//!
//! "We support a *Clustered Edit Distance* parameterization, by extending
//! the Soundex algorithm to the phonetic domain, under the assumption that
//! clusters of like phonemes exist and a substitution of a like phoneme
//! costs less than a substitution from across clusters."

use lexequal_matcher::CostModel;
use lexequal_phoneme::{ClusterTable, Inventory, Phoneme};
use std::sync::Arc;

/// Cost model over phonemes: identical segments are free; substitutions
/// within a cluster cost [`intra_cost`](Self::intra_cost); substitutions
/// across clusters, insertions and deletions cost 1.
#[derive(Debug, Clone)]
pub struct ClusteredPhonemeCost {
    clusters: Arc<ClusterTable>,
    intra_cost: f64,
}

impl ClusteredPhonemeCost {
    /// Build from a cluster table and an intra-cluster substitution cost
    /// in `[0, 1]`.
    pub fn new(clusters: Arc<ClusterTable>, intra_cost: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&intra_cost),
            "intra-cluster cost must be in [0,1]"
        );
        ClusteredPhonemeCost {
            clusters,
            intra_cost,
        }
    }

    /// The intra-cluster substitution cost.
    pub fn intra_cost(&self) -> f64 {
        self.intra_cost
    }

    /// The cluster table in force.
    pub fn clusters(&self) -> &ClusterTable {
        &self.clusters
    }

    /// The smallest non-zero edit-operation cost — used to map a clustered
    /// threshold to a conservative Levenshtein bound for q-gram filtering.
    /// `None` when the intra-cluster cost is zero (no finite bound).
    pub fn min_nonzero_cost(&self) -> Option<f64> {
        if self.intra_cost > 0.0 {
            Some(self.intra_cost.min(1.0))
        } else {
            None
        }
    }
}

impl CostModel<Phoneme> for ClusteredPhonemeCost {
    fn ins(&self, _t: &Phoneme) -> f64 {
        1.0
    }

    fn del(&self, _t: &Phoneme) -> f64 {
        1.0
    }

    fn sub(&self, a: &Phoneme, b: &Phoneme) -> f64 {
        if a == b {
            0.0
        } else if self.clusters.same_cluster(*a, *b) {
            self.intra_cost
        } else {
            1.0
        }
    }

    fn min_indel(&self) -> f64 {
        1.0
    }
}

/// [`ClusteredPhonemeCost`] materialized as a dense `N×N` substitution
/// matrix over [`Phoneme::index`], where `N` is the inventory size.
///
/// The DP inner loop of candidate verification evaluates `sub` once per
/// cell; with the clustered model that is two cluster-table loads plus
/// branches. Precomputing every pairwise cost (the inventory is `u8`-sized,
/// so the matrix is a few dozen KB) turns it into a single flat array load.
/// The matrix stores the *exact* `f64` values `ClusteredPhonemeCost::sub`
/// returns, so distances computed through either model are bit-identical.
///
/// The matrix is behind an `Arc`: cloning the operator (which the service
/// layer does per shard) shares one copy.
#[derive(Debug, Clone)]
pub struct DenseSubstCost {
    /// Row-major `N×N`: `sub[a.index() * n + b.index()]`.
    sub: Arc<[f64]>,
    n: usize,
}

impl DenseSubstCost {
    /// Materialize `source` over the full phoneme inventory.
    pub fn from_clustered(source: &ClusteredPhonemeCost) -> Self {
        DenseSubstCost::from_model(source)
    }

    /// Materialize any phoneme cost model over the full inventory. The
    /// caller's model must use unit insert/delete costs (the dense form
    /// hardcodes them, like every model in this stack).
    pub fn from_model<M: CostModel<Phoneme>>(source: &M) -> Self {
        let n = Inventory::len();
        let mut sub = vec![0.0f64; n * n];
        for a in Inventory::iter() {
            debug_assert_eq!(source.ins(&a), 1.0);
            debug_assert_eq!(source.del(&a), 1.0);
            for b in Inventory::iter() {
                sub[a.index() * n + b.index()] = source.sub(&a, &b);
            }
        }
        DenseSubstCost {
            sub: Arc::from(sub),
            n,
        }
    }

    /// Inventory size `N` (the matrix is `N×N`).
    pub fn inventory_len(&self) -> usize {
        self.n
    }

    /// The raw row-major matrix (`matrix[a.index() * N + b.index()]`) —
    /// what the lane-batched DP kernel gathers from directly.
    pub fn matrix(&self) -> &[f64] {
        &self.sub
    }
}

impl CostModel<Phoneme> for DenseSubstCost {
    fn ins(&self, _t: &Phoneme) -> f64 {
        1.0
    }

    fn del(&self, _t: &Phoneme) -> f64 {
        1.0
    }

    #[inline]
    fn sub(&self, a: &Phoneme, b: &Phoneme) -> f64 {
        self.sub[a.index() * self.n + b.index()]
    }

    fn min_indel(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod dense_cost_tests {
    use super::*;

    #[test]
    fn dense_matrix_reproduces_clustered_costs_exactly() {
        for intra in [0.0, 0.25, 0.5, 1.0] {
            let clustered = ClusteredPhonemeCost::new(Arc::new(ClusterTable::standard()), intra);
            let dense = DenseSubstCost::from_clustered(&clustered);
            assert_eq!(dense.inventory_len(), Inventory::len());
            for a in Inventory::iter() {
                for b in Inventory::iter() {
                    // Bit-for-bit equality, not approximate: the kernel
                    // relies on identical floats feeding the DP.
                    assert_eq!(
                        dense.sub(&a, &b).to_bits(),
                        clustered.sub(&a, &b).to_bits(),
                        "{a:?} vs {b:?} at intra={intra}"
                    );
                }
            }
            assert_eq!(dense.ins(&Inventory::iter().next().unwrap()), 1.0);
            assert_eq!(dense.min_indel(), 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lexequal_matcher::edit_distance;
    use lexequal_phoneme::PhonemeString;

    fn cost(c: f64) -> ClusteredPhonemeCost {
        ClusteredPhonemeCost::new(Arc::new(ClusterTable::standard()), c)
    }

    fn ps(s: &str) -> PhonemeString {
        s.parse().unwrap()
    }

    #[test]
    fn identical_is_free() {
        let m = cost(0.5);
        let p = ps("n")[0];
        assert_eq!(m.sub(&p, &p), 0.0);
    }

    #[test]
    fn intra_cluster_is_cheap_cross_cluster_full() {
        let m = cost(0.25);
        let p = ps("p")[0];
        let b = ps("b")[0]; // same cluster (labial stops)
        let k = ps("k")[0]; // different cluster
        assert_eq!(m.sub(&p, &b), 0.25);
        assert_eq!(m.sub(&p, &k), 1.0);
        assert_eq!(m.sub(&b, &p), 0.25); // symmetric
    }

    #[test]
    fn unit_cost_at_one_equals_levenshtein() {
        let m1 = cost(1.0);
        let a = ps("neru");
        let b = ps("neɾu"); // r->ɾ same cluster
        let d = edit_distance(a.as_slice(), b.as_slice(), &m1);
        assert_eq!(d, 1.0, "cost 1.0 must behave like Levenshtein");
    }

    #[test]
    fn soundex_like_at_zero() {
        let m0 = cost(0.0);
        let a = ps("neru");
        let b = ps("neɾu");
        let d = edit_distance(a.as_slice(), b.as_slice(), &m0);
        assert_eq!(d, 0.0, "cost 0 makes like-phoneme substitutions free");
    }

    #[test]
    fn clustered_distance_is_bounded_by_levenshtein() {
        let a = ps("nɛru");
        let b = ps("neːɾu");
        let lev = edit_distance(a.as_slice(), b.as_slice(), cost(1.0));
        let clustered = edit_distance(a.as_slice(), b.as_slice(), cost(0.25));
        assert!(clustered <= lev);
        assert!(clustered > 0.0);
    }

    #[test]
    fn min_nonzero_cost() {
        assert_eq!(cost(0.25).min_nonzero_cost(), Some(0.25));
        assert_eq!(cost(1.0).min_nonzero_cost(), Some(1.0));
        assert_eq!(cost(0.0).min_nonzero_cost(), None);
    }
}

/// The feature-graded substitution model, re-exported from its home in
/// `lexequal-embed` under the name this crate's API has always used.
/// (It lives next to the [`Embedder`](lexequal_embed::Embedder) because
/// both are pure functions of the articulatory feature bundles.)
pub use lexequal_embed::FeatureCost as FeaturePhonemeCost;

#[cfg(test)]
mod feature_dense_tests {
    use super::*;

    #[test]
    fn dense_matrix_reproduces_feature_costs_exactly() {
        let feature = FeaturePhonemeCost::new();
        let dense = DenseSubstCost::from_model(&feature);
        for a in Inventory::iter() {
            for b in Inventory::iter() {
                assert_eq!(
                    dense.sub(&a, &b).to_bits(),
                    feature.sub(&a, &b).to_bits(),
                    "{a:?} vs {b:?}"
                );
            }
        }
    }
}
