//! Q-gram filtering for phoneme strings (paper §5.2).
//!
//! "The database was first augmented with a table of positional q-grams of
//! the original phonemic strings. Subsequently, the three filters … Length
//! … Count and Position … were used to filter out a majority of the
//! non-matches using standard database operators only."
//!
//! [`QgramFilter`] is the in-process analogue: a posting list from q-gram
//! signature to (string id, position), probed with the three filters; the
//! surviving candidate set is then verified with the exact (expensive)
//! LexEQUAL predicate. The same structure is also exported to a SQL
//! auxiliary table by [`crate::udf::load_qgram_aux_table`], which recreates
//! the paper's Figure 14 query verbatim.
//!
//! ## Threshold semantics under the clustered cost model
//!
//! The Gravano filters are exact for unit-cost Levenshtein distance `k`.
//! The clustered model makes substitutions *cheaper*, so a clustered
//! budget `k` may admit pairs whose Levenshtein distance exceeds `k` —
//! filtering at `k` would falsely dismiss them. [`QgramMode`] picks the
//! policy:
//!
//! * [`QgramMode::Strict`] scales the filter bound to
//!   `k / min_nonzero_cost` (and degrades to length-filter-only when the
//!   intra-cluster cost is 0), guaranteeing **no false dismissals**;
//! * [`QgramMode::PaperFaithful`] filters at `k` as the paper (implicitly)
//!   did — slightly tighter candidate sets, small risk of false
//!   dismissals when the intra-cluster cost is below 1.

use crate::operator::LexEqual;
use crate::verify::{BatchVerifier, PreparedQuery, Verifier};
use lexequal_matcher::qgram::{
    count_filter_passes, length_filter_passes, positional_qgrams, PositionalQgram,
};
use lexequal_phoneme::{Phoneme, PhonemeString};
use std::collections::HashMap;

/// False-dismissal policy for filtering under the clustered cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QgramMode {
    /// Scale the Levenshtein bound so no true match is ever filtered out.
    Strict,
    /// Filter at the clustered budget directly, as in the paper.
    PaperFaithful,
}

/// A q-gram posting-list filter over a corpus of phoneme strings.
pub struct QgramFilter {
    q: usize,
    mode: QgramMode,
    /// Signature → (string id, gram position).
    postings: HashMap<u64, Vec<(u32, u32)>>,
    /// Per-string phoneme length (for the length filter).
    lengths: Vec<u32>,
    /// Per-string gram count (len + q − 1), kept for stats.
    total_grams: usize,
}

fn signature(g: &PositionalQgram<Phoneme>) -> u64 {
    g.signature(|p| p.id() as u64)
}

impl QgramFilter {
    /// Build the filter over a corpus. `q` is the gram size (the paper
    /// uses 3); ids are positions in `corpus`.
    pub fn build(corpus: &[PhonemeString], q: usize, mode: QgramMode) -> Self {
        assert!((1..=4).contains(&q), "q must be in 1..=4");
        let mut postings: HashMap<u64, Vec<(u32, u32)>> = HashMap::new();
        let mut lengths = Vec::with_capacity(corpus.len());
        let mut total_grams = 0usize;
        for (id, s) in corpus.iter().enumerate() {
            lengths.push(s.len() as u32);
            for g in positional_qgrams(s.as_slice(), q) {
                total_grams += 1;
                postings
                    .entry(signature(&g))
                    .or_default()
                    .push((id as u32, g.pos));
            }
        }
        QgramFilter {
            q,
            mode,
            postings,
            lengths,
            total_grams,
        }
    }

    /// Gram size.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Total grams stored (the auxiliary table's row count).
    pub fn total_grams(&self) -> usize {
        self.total_grams
    }

    /// Number of strings indexed.
    pub fn len(&self) -> usize {
        self.lengths.len()
    }

    /// Whether the corpus was empty.
    pub fn is_empty(&self) -> bool {
        self.lengths.is_empty()
    }

    /// The effective Levenshtein bound used for filtering a clustered
    /// budget `k`. `None` means "no finite bound — use length filter only"
    /// (Strict mode with intra-cluster cost 0).
    fn filter_bound(&self, k: f64, operator: &LexEqual) -> Option<f64> {
        match self.mode {
            QgramMode::PaperFaithful => Some(k),
            QgramMode::Strict => operator.min_nonzero_cost().map(|c| k / c),
        }
    }

    /// Candidate ids for `query` under clustered distance budget `k`
    /// (absolute, not a fraction). Applies Length, Position and Count
    /// filters; no verification.
    pub fn candidates(&self, query: &PhonemeString, k: f64, operator: &LexEqual) -> Vec<u32> {
        let bound = self.filter_bound(k, operator);
        let qlen = query.len() as u32;

        // Indel cost is always 1, so the length filter may use the
        // clustered budget k directly in both modes.
        let length_ok = |cand: u32| {
            length_filter_passes(self.lengths[cand as usize] as usize, qlen as usize, k)
        };

        let Some(bound) = bound else {
            // Length filter only.
            return (0..self.lengths.len() as u32)
                .filter(|&i| length_ok(i))
                .collect();
        };

        // Gather position-compatible shared gram counts per candidate.
        let query_grams = positional_qgrams(query.as_slice(), self.q);
        // candidate -> list of (cand_pos, query_pos) matched grams; we
        // count bag-wise per gram signature using the same greedy pairing
        // as matcher::matching_qgrams, grouped by signature.
        let mut per_candidate: HashMap<u32, Vec<(u64, u32, u32)>> = HashMap::new();
        for g in &query_grams {
            let sig = signature(g);
            if let Some(posts) = self.postings.get(&sig) {
                for &(cand, pos) in posts {
                    if !length_ok(cand) {
                        continue;
                    }
                    if (pos as i64 - g.pos as i64).abs() <= bound.floor() as i64 {
                        per_candidate
                            .entry(cand)
                            .or_default()
                            .push((sig, pos, g.pos));
                    }
                }
            }
        }
        let mut out = Vec::new();
        // A string sharing zero grams still passes when the count-filter
        // requirement is non-positive (large budgets / short strings) —
        // skipping this would be a false dismissal.
        for cand in 0..self.lengths.len() as u32 {
            if per_candidate.contains_key(&cand) {
                continue;
            }
            if !length_ok(cand) {
                continue;
            }
            let clen = self.lengths[cand as usize] as usize;
            if count_filter_passes(clen, qlen as usize, 0, bound, self.q) {
                out.push(cand);
            }
        }
        for (cand, mut matches) in per_candidate {
            // Bag semantics: each (signature, cand_pos) and (signature,
            // query_pos) occurrence may be used once. Greedy count per
            // signature.
            matches.sort_unstable();
            let mut shared = 0usize;
            let mut i = 0;
            while i < matches.len() {
                let sig = matches[i].0;
                let mut used_cand: Vec<u32> = Vec::new();
                let mut used_query: Vec<u32> = Vec::new();
                while i < matches.len() && matches[i].0 == sig {
                    let (_, cp, qp) = matches[i];
                    if !used_cand.contains(&cp) && !used_query.contains(&qp) {
                        used_cand.push(cp);
                        used_query.push(qp);
                        shared += 1;
                    }
                    i += 1;
                }
            }
            let clen = self.lengths[cand as usize] as usize;
            if count_filter_passes(clen, qlen as usize, shared, bound, self.q) {
                out.push(cand);
            }
        }
        out.sort_unstable();
        out
    }

    /// Full accelerated search: filter then verify with the exact
    /// predicate. Returns ids of true matches (per the operator), plus the
    /// number of candidates that were verified (the UDF call count).
    pub fn search(
        &self,
        corpus: &[PhonemeString],
        query: &PhonemeString,
        e: f64,
        operator: &LexEqual,
    ) -> (Vec<u32>, usize) {
        let prepared = operator.prepare_query(query);
        let mut verifier = Verifier::new();
        self.search_with::<Vec<u8>, Vec<u8>>(
            corpus,
            None,
            None,
            &prepared,
            e,
            operator,
            &mut verifier,
        )
    }

    /// [`search`](Self::search) through the verification kernel: same
    /// hits and verification count, but screen-first and allocation-free
    /// when the caller supplies per-string cluster ids (and, optionally,
    /// per-string embeddings) and a long-lived [`Verifier`].
    #[allow(clippy::too_many_arguments)]
    pub fn search_with<C: AsRef<[u8]>, E: AsRef<[u8]>>(
        &self,
        corpus: &[PhonemeString],
        cluster_ids: Option<&[C]>,
        embeds: Option<&[E]>,
        query: &PreparedQuery,
        e: f64,
        operator: &LexEqual,
        verifier: &mut Verifier,
    ) -> (Vec<u32>, usize) {
        let mut verified = 0usize;
        let mut hits = Vec::new();
        // Budget depends on the candidate: e · min(|q|, |c|). Filter with
        // the largest possible budget (e · |q|) to stay conservative,
        // then verify each with its true budget.
        let k_max = e * query.phonemes().len() as f64;
        for cand in self.candidates(query.phonemes(), k_max, operator) {
            verified += 1;
            let cc = cluster_ids.map(|c| c[cand as usize].as_ref());
            let ce = embeds.map(|c| c[cand as usize].as_ref());
            if verifier.matches(operator, query, &corpus[cand as usize], cc, ce, e) {
                hits.push(cand);
            }
        }
        (hits, verified)
    }

    /// [`search_with`](Self::search_with) through the batched kernel:
    /// identical hits and verification count, with the surviving
    /// candidates verified in width-sized interleaved steps.
    #[allow(clippy::too_many_arguments)]
    pub fn search_batched<C: AsRef<[u8]>, E: AsRef<[u8]>>(
        &self,
        corpus: &[PhonemeString],
        cluster_ids: Option<&[C]>,
        embeds: Option<&[E]>,
        query: &PreparedQuery,
        e: f64,
        operator: &LexEqual,
        verifier: &mut BatchVerifier,
    ) -> (Vec<u32>, usize) {
        let mut hits = Vec::new();
        // Same conservative filter budget as `search_with`.
        let k_max = e * query.phonemes().len() as f64;
        let cands = self.candidates(query.phonemes(), k_max, operator);
        let verified = verifier.verify_ids(
            operator,
            query,
            corpus,
            cluster_ids,
            embeds,
            cands,
            e,
            &mut hits,
        );
        (hits, verified)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatchConfig;
    use lexequal_g2p::Language;

    fn corpus(ops: &LexEqual, names: &[&str]) -> Vec<PhonemeString> {
        names
            .iter()
            .map(|n| ops.transform(n, Language::English).unwrap())
            .collect()
    }

    #[test]
    fn filter_keeps_true_matches_and_drops_garbage() {
        let ops = LexEqual::default();
        let names = ["Nehru", "Neru", "Nero", "Gandhi", "Krishnan", "Washington"];
        let c = corpus(&ops, &names);
        let f = QgramFilter::build(&c, 3, QgramMode::Strict);
        let query = ops.transform("Nehru", Language::English).unwrap();
        let (hits, verified) = f.search(&c, &query, 0.3, &ops);
        assert!(hits.contains(&0), "self match");
        assert!(hits.contains(&1), "Neru matches Nehru");
        assert!(!hits.contains(&3), "Gandhi is not a match");
        // The filter must have spared us some UDF calls vs scanning all 6.
        assert!(verified <= names.len());
    }

    #[test]
    fn strict_mode_matches_exhaustive_scan() {
        let ops = LexEqual::new(MatchConfig::default().with_intra_cluster_cost(0.25));
        let names = [
            "Catherine",
            "Kathryn",
            "Cathy",
            "Kate",
            "Karthik",
            "Kumar",
            "Nehru",
            "Nero",
            "Neruda",
            "Gandhi",
        ];
        let c = corpus(&ops, &names);
        let f = QgramFilter::build(&c, 3, QgramMode::Strict);
        for query_name in ["Catherine", "Nehru", "Kumar"] {
            let q = ops.transform(query_name, Language::English).unwrap();
            for e in [0.0, 0.2, 0.3, 0.5] {
                let (mut hits, _) = f.search(&c, &q, e, &ops);
                hits.sort_unstable();
                let mut scan: Vec<u32> = (0..c.len() as u32)
                    .filter(|&i| ops.matches_phonemes(&c[i as usize], &q, e))
                    .collect();
                scan.sort_unstable();
                assert_eq!(hits, scan, "query {query_name} e={e}");
            }
        }
    }

    #[test]
    fn strict_mode_with_zero_cost_degrades_to_length_filter() {
        let ops = LexEqual::new(MatchConfig::default().with_intra_cluster_cost(0.0));
        let names = ["Nehru", "Gandhi", "Bo"];
        let c = corpus(&ops, &names);
        let f = QgramFilter::build(&c, 3, QgramMode::Strict);
        let q = ops.transform("Nehru", Language::English).unwrap();
        let cands = f.candidates(&q, 1.0, &ops);
        // "Bo" (2 phonemes vs 4) fails the length filter at k=1; Gandhi
        // (5-6 phonemes) survives — only the length filter applies.
        assert!(!cands.contains(&2));
        assert!(cands.contains(&0));
    }

    #[test]
    fn count_filter_is_selective() {
        let ops = LexEqual::default();
        let mut names = vec!["Nehru"];
        // Pad with many dissimilar names of similar length.
        for n in ["Garcia", "Wright", "Zhukov", "Plasma", "Quartz", "Bishop"] {
            names.push(n);
        }
        let c = corpus(&ops, &names);
        let f = QgramFilter::build(&c, 3, QgramMode::Strict);
        let q = ops.transform("Neru", Language::English).unwrap();
        let cands = f.candidates(&q, 1.0, &ops);
        assert!(
            cands.len() < names.len(),
            "filters must prune: got {cands:?}"
        );
        assert!(cands.contains(&0));
    }

    #[cfg(feature = "property-tests")]
    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Strict-mode completeness over random phoneme strings.
            #[test]
            fn strict_never_dismisses_true_matches(
                seeds in proptest::collection::vec("[nmkrlt][aeiou][nmkrlt]?[aeiou]?[nmkrlt]?", 2..12),
                e in 0.0f64..0.6,
            ) {
                let ops = LexEqual::default();
                let corpus: Vec<PhonemeString> =
                    seeds.iter().map(|s| s.parse().unwrap()).collect();
                let f = QgramFilter::build(&corpus, 3, QgramMode::Strict);
                let query = corpus[0].clone();
                let (mut hits, _) = f.search(&corpus, &query, e, &ops);
                hits.sort_unstable();
                let mut scan: Vec<u32> = (0..corpus.len() as u32)
                    .filter(|&i| ops.matches_phonemes(&corpus[i as usize], &query, e))
                    .collect();
                scan.sort_unstable();
                prop_assert_eq!(hits, scan);
            }
        }
    }
}
