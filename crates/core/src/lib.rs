//! # LexEQUAL: multiscript matching of proper names
//!
//! A from-scratch Rust reproduction of *LexEQUAL: Supporting Multiscript
//! Matching in Database Systems* (A. Kumaran & Jayant R. Haritsa, EDBT
//! 2004). LexEQUAL matches proper names **across scripts** — `Nehru`,
//! `नेहरु`, `நேரு`, `Νερού` — by transforming each string into its phonemic
//! (IPA) representation and comparing in phoneme space with a tunable
//! approximate-matching predicate.
//!
//! ## The operator
//!
//! ```text
//! LexEQUAL(S_l, S_r, e):
//!   T_l ← transform(S_l, language(S_l));  T_r ← transform(S_r, language(S_r))
//!   TRUE iff editdistance(T_l, T_r) ≤ e · min(|T_l|, |T_r|)
//! ```
//!
//! Two knobs tune match quality (paper §3.3):
//!
//! * the **match threshold** `e` — user tolerance, as a fraction of the
//!   smaller phoneme string;
//! * the **intra-cluster substitution cost** — like phonemes are clustered
//!   (a phonetic generalization of Soundex); substitutions within a
//!   cluster cost less than substitutions across clusters.
//!
//! ## Quick start
//!
//! ```
//! use lexequal::{LexEqual, MatchConfig, Outcome};
//! use lexequal_g2p::Language;
//!
//! let lex = LexEqual::new(MatchConfig::default());
//! let out = lex.match_strings("Nehru", Language::English, "நேரு", Language::Tamil).unwrap();
//! assert_eq!(out, Outcome::True);
//! let out = lex.match_strings_with("Nehru", Language::English, "नेहरु", Language::Hindi, 0.45).unwrap();
//! assert_eq!(out, Outcome::True);
//! let out = lex.match_strings("Nehru", Language::English, "Gandhi", Language::English).unwrap();
//! assert_eq!(out, Outcome::False);
//! ```
//!
//! ## Acceleration
//!
//! A naive scan evaluates the (expensive) predicate on every row. The two
//! accelerators from the paper's §5 are provided:
//!
//! * [`qgram_plan::QgramFilter`] — positional q-grams over
//!   the phoneme strings with Length/Count/Position filtering (no false
//!   dismissals in [`qgram_plan::QgramMode::Strict`] mode);
//! * [`phonidx::PhoneticIndex`] — a B-tree-indexable
//!   *grouped phoneme string identifier* per string (cluster-id sequence);
//!   fastest, but admits 4–5% false dismissals, as measured in the paper.
//!
//! [`store::NameStore`] packages a name collection with all
//! access paths behind one search API; [`udf`] wires the operator into the
//! `lexequal-mdb` SQL engine exactly the way the paper deployed it on
//! Oracle 9i (UDF + auxiliary tables + index), enabling the Figure 3 /
//! Figure 5 query syntax end to end.

pub mod config;
pub mod cost;
pub mod operator;
pub mod phonidx;
pub mod qgram_plan;
pub mod store;
pub mod udf;
pub mod verify;

pub use config::{CostModelKind, MatchConfig};
pub use cost::{ClusteredPhonemeCost, DenseSubstCost, FeaturePhonemeCost};
pub use operator::{LexEqual, Outcome};
pub use phonidx::PhoneticIndex;
pub use qgram_plan::{QgramFilter, QgramMode};
pub use store::{NameStore, SearchMethod, SharedEntry, SharedEntryError};
pub use verify::{
    BatchCounters, BatchVerifier, Lane, PreparedQuery, ScreenCounters, Verifier, MAX_LANES,
};

pub use lexequal_embed::{Embedder, FeatureCost, EMBED_DIM};
pub use lexequal_g2p::{G2pError, G2pRegistry, Language, Route, Router, Script, ScriptProfile};
pub use lexequal_matcher::{available_simd_levels, simd_level, SimdLevel};
pub use lexequal_phoneme::{ClusterTable, Phoneme, PhonemeString};

#[cfg(test)]
mod send_sync_audit {
    //! The serving layer (`lexequal-service`) shares the operator and its
    //! configuration across worker threads and moves stores into them;
    //! these assertions pin the thread-safety contract at compile time so
    //! a future `Rc`/`RefCell` slipping into any layer fails loudly here
    //! rather than at the service crate's call sites.
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn core_types_are_send_and_sync() {
        assert_send_sync::<LexEqual>();
        assert_send_sync::<MatchConfig>();
        assert_send_sync::<G2pRegistry>();
        assert_send_sync::<ClusterTable>();
        assert_send_sync::<PhonemeString>();
        assert_send_sync::<store::NameEntry>();
        assert_send_sync::<store::SearchResult>();
        assert_send_sync::<NameStore>();
        assert_send_sync::<QgramFilter>();
        assert_send_sync::<PhoneticIndex>();
        assert_send_sync::<DenseSubstCost>();
        assert_send_sync::<Embedder>();
        assert_send_sync::<Verifier>();
        assert_send_sync::<PreparedQuery>();
        assert_send_sync::<ScriptProfile>();
        assert_send_sync::<Router>();
        assert_send_sync::<Route>();
    }
}
