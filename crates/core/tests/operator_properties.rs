//! Property tests on the LexEQUAL operator invariants.

use lexequal::{LexEqual, MatchConfig};
use lexequal_phoneme::{Inventory, Phoneme, PhonemeString};
use proptest::prelude::*;

fn arb_string() -> impl Strategy<Value = PhonemeString> {
    proptest::collection::vec(
        (0..Inventory::len()).prop_map(|i| Phoneme::from_id(i as u8).expect("in range")),
        0..16,
    )
    .prop_map(PhonemeString::new)
}

proptest! {
    /// The predicate is symmetric for any operands and threshold.
    #[test]
    fn predicate_symmetric(a in arb_string(), b in arb_string(), e in 0.0f64..1.0) {
        let op = LexEqual::default();
        prop_assert_eq!(op.matches_phonemes(&a, &b, e), op.matches_phonemes(&b, &a, e));
    }

    /// Monotone in the threshold: once matched, always matched at looser e.
    #[test]
    fn predicate_monotone(a in arb_string(), b in arb_string()) {
        let op = LexEqual::default();
        let mut matched = false;
        for e in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 1.0] {
            let m = op.matches_phonemes(&a, &b, e);
            prop_assert!(!matched || m, "match lost when e grew to {}", e);
            matched = m;
        }
    }

    /// Reflexive at every threshold.
    #[test]
    fn predicate_reflexive(a in arb_string(), e in 0.0f64..1.0) {
        let op = LexEqual::default();
        prop_assert!(op.matches_phonemes(&a, &a, e));
    }

    /// The predicate agrees with the strict-distance definition.
    #[test]
    fn predicate_agrees_with_distance(a in arb_string(), b in arb_string(), e in 0.0f64..1.0) {
        let op = LexEqual::default();
        let d = op.distance(&a, &b);
        let k = op.budget(&a, &b, e);
        let expected = a == b || d <= 1e-12 || d < k - 1e-9;
        prop_assert_eq!(op.matches_phonemes(&a, &b, e), expected,
            "d={} k={} a=/{}/ b=/{}/", d, k, a, b);
    }

    /// The clustered distance is a pseudo-metric: non-negative, symmetric,
    /// triangle inequality.
    #[test]
    fn clustered_distance_is_pseudometric(
        a in arb_string(), b in arb_string(), c in arb_string()
    ) {
        let op = LexEqual::new(MatchConfig::default().with_intra_cluster_cost(0.25));
        let ab = op.distance(&a, &b);
        let bc = op.distance(&b, &c);
        let ac = op.distance(&a, &c);
        prop_assert!(ab >= 0.0);
        prop_assert_eq!(ab, op.distance(&b, &a));
        prop_assert!(ac <= ab + bc + 1e-9, "triangle violated: {} > {} + {}", ac, ab, bc);
    }

    /// Distance is bounded by the longer length (all ops cost <= 1).
    #[test]
    fn distance_bounded(a in arb_string(), b in arb_string()) {
        let op = LexEqual::default();
        let d = op.distance(&a, &b);
        prop_assert!(d <= a.len().max(b.len()) as f64 + 1e-9);
        prop_assert!(d >= (a.len() as f64 - b.len() as f64).abs() - 1e-9);
    }
}
