//! Pins the kernel's zero-allocation guarantee: once the `Verifier`'s DP
//! scratch has grown to the longest candidate and the query has been
//! prepared, verifying a pair performs no heap allocation at all — on
//! any of the three dispositions (fast-accept, fast-reject, full DP).
//!
//! A counting global allocator makes the claim checkable: warm up over
//! the whole corpus once, snapshot the allocation count, run the same
//! verifications again, and require a delta of exactly zero. Lives in its
//! own integration-test binary because `#[global_allocator]` is
//! process-wide. Counting is gated on a thread-local flag so only the
//! measuring thread is observed — the libtest harness's own thread may
//! allocate (progress output, timers) at any moment, and without the
//! gate those allocations land in the window and flake the count.

use lexequal::{BatchVerifier, LexEqual, MatchConfig, PreparedQuery, Verifier, MAX_LANES};
use lexequal_phoneme::{Inventory, Phoneme, PhonemeString};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // `const` init: reading the flag never itself allocates.
    static COUNT_THIS_THREAD: Cell<bool> = const { Cell::new(false) };
}

fn count() {
    // `try_with` so a (never-allocating) read during TLS teardown can't
    // panic inside the allocator.
    let counting = COUNT_THIS_THREAD.try_with(Cell::get).unwrap_or(false);
    if counting {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter is a relaxed
// atomic with no allocation of its own.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Deterministic xorshift phoneme strings, lengths 0..=70 so the corpus
/// crosses the 64-symbol Myers window and exercises the DP-only path too.
fn corpus(seed: u64, count: usize) -> Vec<PhonemeString> {
    let mut state = seed;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let n = Inventory::len() as u64;
    (0..count)
        .map(|_| {
            let len = (next() % 71) as usize;
            PhonemeString::new(
                (0..len)
                    .map(|_| Phoneme::from_id((next() % n) as u8).unwrap())
                    .collect(),
            )
        })
        .collect()
}

fn verify_all(
    verifier: &mut Verifier,
    op: &LexEqual,
    prepared: &PreparedQuery,
    strings: &[PhonemeString],
    cluster_ids: &[Vec<u8>],
    embeds: &[Vec<u8>],
) -> usize {
    let mut hits = 0;
    for (i, (cand, ids)) in strings.iter().zip(cluster_ids).enumerate() {
        for e in [0.0, 0.15, 0.35, 0.5, 1.0] {
            // Both the cached path (stores: cluster ids + embeddings) and
            // the derive-on-the-fly path (ad-hoc callers) must stay
            // allocation-free.
            if verifier.matches(op, prepared, cand, Some(ids), Some(&embeds[i]), e) {
                hits += 1;
            }
            if verifier.matches(op, prepared, cand, None, None, e) {
                hits += 1;
            }
        }
    }
    hits
}

#[test]
fn warmed_up_verification_does_not_allocate() {
    let op = LexEqual::new(MatchConfig::default().with_intra_cluster_cost(0.25));
    let strings = corpus(0x0a11_0c5e, 60);
    let cluster_ids: Vec<Vec<u8>> = strings.iter().map(|s| op.cluster_ids(s)).collect();
    let embeds: Vec<Vec<u8>> = strings.iter().map(|s| op.embed_for(s).to_vec()).collect();
    let prepared = op.prepare_query(&strings[0]);
    let mut verifier = Verifier::new();

    // Warm-up pass: the DP scratch grows to its high-water mark here.
    let warm_hits = verify_all(
        &mut verifier,
        &op,
        &prepared,
        &strings,
        &cluster_ids,
        &embeds,
    );

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    COUNT_THIS_THREAD.with(|c| c.set(true));
    let hits = verify_all(
        &mut verifier,
        &op,
        &prepared,
        &strings,
        &cluster_ids,
        &embeds,
    );
    COUNT_THIS_THREAD.with(|c| c.set(false));
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;

    assert_eq!(hits, warm_hits);
    assert!(hits > 0, "corpus must produce some matches");
    let counters = verifier.counters();
    assert!(
        counters.fast_accept > 0 && counters.fast_reject > 0 && counters.full_dp > 0,
        "all three dispositions must be exercised: {counters:?}"
    );
    assert_eq!(
        delta,
        0,
        "verified {} pairs with {delta} heap allocations after warm-up",
        counters.total() / 2
    );
}

fn verify_all_batched(
    verifier: &mut BatchVerifier,
    op: &LexEqual,
    prepared: &PreparedQuery,
    strings: &[PhonemeString],
    cluster_ids: &[Vec<u8>],
    embeds: &[Vec<u8>],
    hits: &mut Vec<u32>,
) -> usize {
    let mut total = 0;
    for e in [0.0, 0.15, 0.35, 0.5, 1.0] {
        // Cached cluster ids and embeddings (the store path)…
        verifier.verify_ids(
            op,
            prepared,
            strings,
            Some(cluster_ids),
            Some(embeds),
            0..strings.len() as u32,
            e,
            hits,
        );
        total += hits.len();
        hits.clear();
        // …and derive-on-the-fly (fills the kernel's own lane buffers).
        verifier.verify_ids::<_, Vec<u8>, Vec<u8>>(
            op,
            prepared,
            strings,
            None,
            None,
            0..strings.len() as u32,
            e,
            hits,
        );
        total += hits.len();
        hits.clear();
    }
    total
}

/// The batched kernel keeps the same guarantee: once its DP scratch and
/// per-lane id buffers have grown, a full batched verification sweep
/// allocates nothing (the caller-owned hit vector is pre-grown too).
#[test]
fn warmed_up_batched_verification_does_not_allocate() {
    let op = LexEqual::new(MatchConfig::default().with_intra_cluster_cost(0.25));
    let strings = corpus(0x0a11_0c5e, 60);
    let cluster_ids: Vec<Vec<u8>> = strings.iter().map(|s| op.cluster_ids(s)).collect();
    let embeds: Vec<Vec<u8>> = strings.iter().map(|s| op.embed_for(s).to_vec()).collect();
    let prepared = op.prepare_query(&strings[0]);
    let mut verifier = BatchVerifier::new();
    assert_eq!(verifier.width(), MAX_LANES);
    let mut hits = Vec::with_capacity(strings.len());

    // Warm-up: scratch, lane buffers and the hit vector reach their
    // high-water marks here.
    let warm_hits = verify_all_batched(
        &mut verifier,
        &op,
        &prepared,
        &strings,
        &cluster_ids,
        &embeds,
        &mut hits,
    );

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    COUNT_THIS_THREAD.with(|c| c.set(true));
    let total = verify_all_batched(
        &mut verifier,
        &op,
        &prepared,
        &strings,
        &cluster_ids,
        &embeds,
        &mut hits,
    );
    COUNT_THIS_THREAD.with(|c| c.set(false));
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;

    assert_eq!(total, warm_hits);
    assert!(total > 0, "corpus must produce some matches");
    let counters = verifier.counters();
    assert!(
        counters.fast_accept > 0 && counters.fast_reject > 0 && counters.full_dp > 0,
        "all three dispositions must be exercised: {counters:?}"
    );
    assert!(verifier.batch_counters().calls > 0);
    assert_eq!(
        delta,
        0,
        "batch-verified {} pairs with {delta} heap allocations after warm-up",
        counters.total() / 2
    );
}
