//! Differential suite for the batched verification kernel: on every
//! access path, at every batch width `1..=MAX_LANES`, under every SIMD
//! backend this machine offers (plus the forced-scalar one — run again
//! with `LEXEQUAL_FORCE_SCALAR=1` to pin the process-wide dispatch too),
//! the [`BatchVerifier`]'s verdict vector must be **bit-for-bit
//! identical** to running the scalar [`Verifier`] pair by pair — same
//! hits, same verification counts, same screen-counter totals.
//!
//! The scalar kernel is itself pinned against `matches_phonemes` by the
//! unit suites, so transitively the batched kernel computes the paper's
//! exact predicate.

use lexequal::{
    available_simd_levels, BatchVerifier, CostModelKind, Language, LexEqual, MatchConfig,
    NameStore, SearchMethod, Verifier, MAX_LANES,
};
use lexequal_phoneme::{Inventory, Phoneme, PhonemeString};

/// Deterministic xorshift phoneme strings, lengths 0..=70 so the corpus
/// crosses the 64-symbol Myers window (DP-only queries included).
fn corpus(seed: u64, count: usize) -> Vec<PhonemeString> {
    let mut state = seed;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let n = Inventory::len() as u64;
    (0..count)
        .map(|_| {
            let len = (next() % 71) as usize;
            PhonemeString::new(
                (0..len)
                    .map(|_| Phoneme::from_id((next() % n) as u8).unwrap())
                    .collect(),
            )
        })
        .collect()
}

const THRESHOLDS: [f64; 5] = [0.0, 0.15, 0.35, 0.5, 1.0];

#[test]
fn batched_pairs_equal_scalar_at_every_width_and_backend() {
    for intra in [0.0, 0.25, 1.0] {
        let op = LexEqual::new(MatchConfig::default().with_intra_cluster_cost(intra));
        let strings = corpus(0xba7c_0001 + intra.to_bits(), 32);
        let cached: Vec<Vec<u8>> = strings.iter().map(|s| op.cluster_ids(s)).collect();
        let embs: Vec<Vec<u8>> = strings.iter().map(|s| op.embed_for(s).to_vec()).collect();
        for q in strings.iter().take(5) {
            let prepared = op.prepare_query(q);
            for e in THRESHOLDS {
                // Scalar reference verdicts + counters over the corpus.
                let mut scalar = Verifier::new();
                let want: Vec<bool> = strings
                    .iter()
                    .zip(&cached)
                    .enumerate()
                    .map(|(i, (c, ids))| {
                        // Alternate cached and derive-on-the-fly cluster
                        // ids (and present/absent embeddings), as the
                        // batched lanes below do.
                        let cc = (i % 2 == 0).then_some(ids.as_slice());
                        let ce = (i % 2 == 0).then_some(embs[i].as_slice());
                        scalar.matches(&op, &prepared, c, cc, ce, e)
                    })
                    .collect();
                let want_counters = scalar.take_counters();

                for level in available_simd_levels() {
                    for width in 1..=MAX_LANES {
                        let mut batch = BatchVerifier::with_width_and_level(width, level);
                        let mut got = vec![false; strings.len()];
                        for (chunk_start, chunk) in (0..strings.len())
                            .step_by(width)
                            .map(|s| (s, &strings[s..(s + width).min(strings.len())]))
                        {
                            let lanes: Vec<lexequal::Lane<'_>> = chunk
                                .iter()
                                .enumerate()
                                .map(|(o, c)| {
                                    let i = chunk_start + o;
                                    (
                                        c,
                                        (i % 2 == 0).then_some(cached[i].as_slice()),
                                        (i % 2 == 0).then_some(embs[i].as_slice()),
                                    )
                                })
                                .collect();
                            let mut verdicts = vec![false; lanes.len()];
                            batch.matches_lanes(&op, &prepared, &lanes, e, &mut verdicts);
                            got[chunk_start..chunk_start + lanes.len()].copy_from_slice(&verdicts);
                        }
                        assert_eq!(
                            got, want,
                            "verdicts diverge: intra={intra} e={e} width={width} level={level}"
                        );
                        assert_eq!(
                            batch.take_counters(),
                            want_counters,
                            "screen counters diverge: intra={intra} e={e} width={width} level={level}"
                        );
                        let shape = batch.take_batch_counters();
                        assert_eq!(shape.lanes_sum, strings.len() as u64);
                        assert_eq!(shape.lanes_max, width.min(strings.len()) as u64);
                        assert_eq!(
                            shape.lane_accept + shape.lane_reject + shape.lane_dp,
                            strings.len() as u64
                        );
                    }
                }
            }
        }
    }
}

fn fixture() -> (NameStore, LexEqual) {
    let mut s = NameStore::new(MatchConfig::default());
    for (n, l) in [
        ("Nehru", Language::English),
        ("नेहरु", Language::Hindi),
        ("நேரு", Language::Tamil),
        ("Nero", Language::English),
        ("Gandhi", Language::English),
        ("गांधी", Language::Hindi),
        ("Krishnan", Language::English),
        ("Kumar", Language::English),
        ("कुमार", Language::Hindi),
        ("Catherine", Language::English),
        ("Katherine", Language::English),
    ] {
        s.insert(n, l).unwrap();
    }
    s.build_qgram(3, lexequal::QgramMode::Strict);
    s.build_phonetic_index();
    s.build_bktree();
    (s, LexEqual::new(MatchConfig::default()))
}

#[test]
fn batched_access_paths_equal_scalar_on_every_method() {
    let (store, op) = fixture();
    let methods = [
        SearchMethod::Scan,
        SearchMethod::Qgram,
        SearchMethod::PhoneticIndex,
        SearchMethod::BkTree,
    ];
    for (query, lang) in [
        ("Nehru", Language::English),
        ("Gandhi", Language::English),
        ("நேரு", Language::Tamil),
        ("Kumari", Language::English),
    ] {
        let q = op.transform(query, lang).unwrap();
        for e in [0.0, 0.3, 0.45] {
            for method in methods {
                let want = store.search_phonemes_with(&q, e, method, &mut Verifier::new());
                for level in available_simd_levels() {
                    for width in 1..=MAX_LANES {
                        let mut batch = BatchVerifier::with_width_and_level(width, level);
                        let got = store.search_phonemes_batched(&q, e, method, &mut batch);
                        assert_eq!(
                            got, want,
                            "q={query} e={e} method={method:?} width={width} level={level}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn batched_bktree_falls_back_to_scan_at_zero_cost() {
    // intra-cluster cost 0 leaves no finite Levenshtein radius: the
    // BK-tree path must degrade to a scan in both kernels.
    let mut s = NameStore::new(MatchConfig::default().with_intra_cluster_cost(0.0));
    for n in ["Nehru", "Nero", "Gandhi"] {
        s.insert(n, Language::English).unwrap();
    }
    s.build_bktree();
    let op = LexEqual::new(MatchConfig::default().with_intra_cluster_cost(0.0));
    let q = op.transform("Nehru", Language::English).unwrap();
    let want = s.search_phonemes_with(&q, 0.45, SearchMethod::BkTree, &mut Verifier::new());
    let got = s.search_phonemes_batched(&q, 0.45, SearchMethod::BkTree, &mut BatchVerifier::new());
    assert_eq!(got, want);
    assert_eq!(want.verifications, s.len(), "fallback verifies every row");
}

/// Regression for the silent screen bypass: queries longer than the
/// 64-phoneme Myers window must still verify correctly (DP-only), be
/// observable via `screens_active`, and count every bypassed pair.
#[test]
fn long_queries_verify_correctly_through_the_dp_only_path() {
    let op = LexEqual::new(MatchConfig::default().with_intra_cluster_cost(0.25));
    let mut strings = corpus(0x10a6_cafe, 24);
    // A 70-phoneme query: past the screen window.
    let long: PhonemeString = PhonemeString::new(
        (0..70)
            .map(|i| Phoneme::from_id((i % Inventory::len()) as u8).unwrap())
            .collect(),
    );
    strings.push(long.clone()); // its own exact match is in the corpus
    let prepared = op.prepare_query(&long);
    assert!(!prepared.screens_active(), "70 phonemes must bypass");
    assert!(
        op.prepare_query(&strings[0]).screens_active() || strings[0].is_empty(),
        "short queries keep their screens"
    );

    let mut scalar = Verifier::new();
    let mut batch = BatchVerifier::new();
    for e in THRESHOLDS {
        for c in &strings {
            let want = op.matches_phonemes(c, &long, e);
            assert_eq!(scalar.matches(&op, &prepared, c, None, None, e), want);
            let mut verdict = [false];
            batch.matches_lanes(&op, &prepared, &[(c, None, None)], e, &mut verdict);
            assert_eq!(verdict[0], want);
        }
    }
    for counters in [scalar.take_counters(), batch.take_counters()] {
        assert!(counters.fast_accept > 0, "the exact copy fast-accepts");
        assert!(counters.bypass > 0, "bypassed pairs must be counted");
        assert_eq!(
            counters.bypass, counters.full_dp,
            "with no screens, every DP pair is a bypass"
        );
    }
}

/// The tentpole's soundness contract: under both cost models, turning
/// the embedding screen on must never change a single verdict, id or
/// verification count — on any access path, at any batch width, under
/// any SIMD backend (re-run with `LEXEQUAL_FORCE_SCALAR=1` to pin the
/// forced-scalar dispatch too). The screen may only change how much
/// work the exact kernel sees, which the counters make observable.
#[test]
fn embed_screen_never_changes_verdicts_under_either_cost_model() {
    let names: [(&str, Language); 11] = [
        ("Nehru", Language::English),
        ("नेहरु", Language::Hindi),
        ("நேரு", Language::Tamil),
        ("Nero", Language::English),
        ("Gandhi", Language::English),
        ("गांधी", Language::Hindi),
        ("Krishnan", Language::English),
        ("Kumar", Language::English),
        ("कुमार", Language::Hindi),
        ("Catherine", Language::English),
        ("Katherine", Language::English),
    ];
    let build = |kind: CostModelKind, screen: bool| {
        let mut s = NameStore::new(
            MatchConfig::default()
                .with_cost_model(kind)
                .with_embed_screen(screen),
        );
        for (n, l) in names {
            s.insert(n, l).unwrap();
        }
        s.build_qgram(3, lexequal::QgramMode::Strict);
        s.build_phonetic_index();
        s.build_bktree();
        s
    };
    let methods = [
        SearchMethod::Scan,
        SearchMethod::Qgram,
        SearchMethod::PhoneticIndex,
        SearchMethod::BkTree,
    ];
    for kind in [CostModelKind::Clustered, CostModelKind::Feature] {
        let on = build(kind, true);
        let off = build(kind, false);
        assert!(
            on.operator().embed_scale() > 0.0,
            "default models must admit a sound screen scale ({kind:?})"
        );
        assert_eq!(off.operator().embed_scale(), 0.0);
        let mut on_scalar = Verifier::new();
        for (query, lang) in [
            ("Nehru", Language::English),
            ("Gandhi", Language::English),
            ("நேரு", Language::Tamil),
            ("Kumari", Language::English),
        ] {
            let q = on.operator().transform(query, lang).unwrap();
            for e in [0.0, 0.3, 0.45] {
                for method in methods {
                    let want = off.search_phonemes_with(&q, e, method, &mut Verifier::new());
                    let got = on.search_phonemes_with(&q, e, method, &mut on_scalar);
                    assert_eq!(got, want, "scalar {kind:?} q={query} e={e} {method:?}");
                    for level in available_simd_levels() {
                        for width in 1..=MAX_LANES {
                            let mut batch = BatchVerifier::with_width_and_level(width, level);
                            let got = on.search_phonemes_batched(&q, e, method, &mut batch);
                            assert_eq!(
                                got, want,
                                "{kind:?} q={query} e={e} {method:?} width={width} level={level}"
                            );
                        }
                    }
                    // Screen-off stores must never touch the embed counters.
                    let mut off_v = Verifier::new();
                    let _ = off.search_phonemes_with(&q, e, method, &mut off_v);
                    let c = off_v.take_counters();
                    assert_eq!(c.embed_accept + c.embed_reject + c.embed_bypass, 0);
                }
            }
        }
        let c = on_scalar.take_counters();
        assert!(
            c.embed_accept > 0 && c.embed_reject > 0,
            "screen must both pass and prune under {kind:?}: {c:?}"
        );
        assert_eq!(c.embed_bypass, 0, "store rows all carry embeddings");
    }
}

/// Rows without embeddings (a store grown from a v1 snapshot before the
/// background fill finishes) are bypassed, never misjudged — and
/// `build_embeddings` flips them to screened without changing verdicts.
#[test]
fn missing_embeddings_bypass_until_built() {
    let op = LexEqual::new(MatchConfig::default());
    let strings = corpus(0xeb3d_0001, 24);
    let cached: Vec<Vec<u8>> = strings.iter().map(|s| op.cluster_ids(s)).collect();
    let prepared = op.prepare_query(&strings[1]);
    let mut v = Verifier::new();
    for (c, ids) in strings.iter().zip(&cached) {
        let want = op.matches_phonemes(c, &strings[1], 0.35);
        // Empty embedding slice = "not built": must bypass, not reject.
        assert_eq!(
            v.matches(&op, &prepared, c, Some(ids), Some(&[][..]), 0.35),
            want
        );
    }
    let c = v.take_counters();
    assert!(c.embed_bypass > 0, "empty embeds must count as bypasses");
    assert_eq!(c.embed_reject, 0);
}
