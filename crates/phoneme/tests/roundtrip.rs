//! Property tests over the whole phoneme crate surface.

use lexequal_phoneme::{ClusterTable, Inventory, Phoneme, PhonemeString};
use proptest::prelude::*;

fn arb_phoneme() -> impl Strategy<Value = Phoneme> {
    (0..Inventory::len()).prop_map(|i| Phoneme::from_id(i as u8).expect("in range"))
}

fn arb_string() -> impl Strategy<Value = PhonemeString> {
    proptest::collection::vec(arb_phoneme(), 0..24).prop_map(PhonemeString::new)
}

proptest! {
    /// Display → parse is the identity on every representable string —
    /// the contract the database storage layer (pname TEXT columns)
    /// depends on.
    #[test]
    fn display_parse_round_trip(s in arb_string()) {
        let text = s.to_string();
        let back: PhonemeString = text.parse().expect("canonical output must parse");
        prop_assert_eq!(back, s);
    }

    /// Parsing is longest-match deterministic: re-rendering the parse
    /// gives the same text back.
    #[test]
    fn render_is_stable(s in arb_string()) {
        let once = s.to_string();
        let twice = once.parse::<PhonemeString>().expect("parses").to_string();
        prop_assert_eq!(once, twice);
    }

    /// Concatenation respects length and parses cleanly.
    #[test]
    fn concat_behaves(a in arb_string(), b in arb_string()) {
        let ab = a.concat(&b);
        prop_assert_eq!(ab.len(), a.len() + b.len());
        let back: PhonemeString = ab.to_string().parse().expect("parses");
        prop_assert_eq!(back, ab);
    }

    /// Cluster tables are total and consistent between the two lookup
    /// forms, and packed keys agree with cluster keys on short strings.
    #[test]
    fn cluster_key_and_packed_key_agree(a in arb_string(), b in arb_string()) {
        let t = ClusterTable::standard();
        if a.len() <= t.packed_prefix_len() && b.len() <= t.packed_prefix_len() {
            let keys_equal = t.cluster_key(&a) == t.cluster_key(&b);
            let packed_equal = t.packed_key(&a) == t.packed_key(&b);
            prop_assert_eq!(keys_equal, packed_equal);
        }
    }

    /// same_cluster is an equivalence relation (reflexive, symmetric;
    /// transitivity follows from it being id-equality but check anyway).
    #[test]
    fn same_cluster_is_equivalence(a in arb_phoneme(), b in arb_phoneme(), c in arb_phoneme()) {
        let t = ClusterTable::standard();
        prop_assert!(t.same_cluster(a, a));
        prop_assert_eq!(t.same_cluster(a, b), t.same_cluster(b, a));
        if t.same_cluster(a, b) && t.same_cluster(b, c) {
            prop_assert!(t.same_cluster(a, c));
        }
    }
}
