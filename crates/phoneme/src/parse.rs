//! IPA text → phoneme tokenization.
//!
//! Parsing uses greedy longest-match against the inventory's canonical
//! symbols, after rewriting alias spellings and stripping the
//! suprasegmental marks the paper discards (§4.1): stress marks, syllable
//! dots, tie bars, and whitespace.

use crate::error::PhonemeError;
use crate::inventory::{ALIASES, TABLE};
use crate::phoneme::Phoneme;

/// Characters carrying suprasegmental or typographic information that the
/// paper strips before matching. Removed wholesale before tokenization.
const IGNORED: &[char] = &[
    'ˈ', 'ˌ', // primary/secondary stress
    '‿', '͡', '͜',         // tie bars / linking
    '\u{0303}', // combining tilde (nasalization) — treated as plain vowel
];

/// Characters acting as hard token boundaries: the greedy matcher never
/// spans one. `.` in particular disambiguates a stop+fricative sequence
/// from the affricate ("t.s" = /t/+/s/, "ts" = the affricate) — Display
/// emits it at exactly those junctions so rendering is injective.
const BOUNDARY: &[char] = &['.', '·', ' ', '\t', '\u{00a0}', '-', '\''];

/// Rewrite alias spellings to canonical ones and drop ignored marks.
fn normalize(input: &str) -> String {
    let mut s: String = input.chars().filter(|c| !IGNORED.contains(c)).collect();
    for (alias, canonical) in ALIASES {
        if s.contains(alias) {
            s = s.replace(alias, canonical);
        }
    }
    s
}

/// Tokenize an IPA string into phonemes by greedy longest match.
///
/// # Errors
///
/// Returns [`PhonemeError::UnknownSymbol`] if a position matches no
/// inventory symbol, reporting the byte offset into the *normalized* input.
pub fn parse_ipa(input: &str) -> Result<Vec<Phoneme>, PhonemeError> {
    let text = normalize(input);
    let mut out = Vec::with_capacity(text.chars().count());
    let mut rest = text.as_str();
    let mut offset = 0usize;
    while !rest.is_empty() {
        // Token boundaries are skipped; matching restarts after them.
        let first = rest.chars().next().expect("non-empty");
        if BOUNDARY.contains(&first) {
            let n = first.len_utf8();
            rest = &rest[n..];
            offset += n;
            continue;
        }
        let mut best: Option<(usize, usize)> = None; // (byte_len, table_index)
        for (i, d) in TABLE.iter().enumerate() {
            if rest.starts_with(d.symbol) {
                let len = d.symbol.len();
                if best.map_or(true, |(blen, _)| len > blen) {
                    best = Some((len, i));
                }
            }
        }
        match best {
            Some((len, i)) => {
                out.push(Phoneme::from_index(i));
                rest = &rest[len..];
                offset += len;
            }
            None => {
                let fragment: String = rest.chars().take(4).collect();
                return Err(PhonemeError::UnknownSymbol { offset, fragment });
            }
        }
    }
    Ok(out)
}

/// Would the canonical renderings of `a` then `b`, concatenated without a
/// separator, re-tokenize as something other than `a` followed by `b`?
/// (E.g. /t/ + /s/ concatenates to "ts", the affricate's symbol.)
/// `PhonemeString`'s `Display` consults this to decide where to emit the
/// `.` separator, keeping rendering injective.
pub fn would_merge(a: Phoneme, b: Phoneme) -> bool {
    let concat = format!("{}{}", a.symbol(), b.symbol());
    // Longest inventory symbol that prefixes the concatenation.
    let mut best_len = 0usize;
    for d in TABLE {
        if concat.starts_with(d.symbol) && d.symbol.len() > best_len {
            best_len = d.symbol.len();
        }
    }
    best_len != a.symbol().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symbols(input: &str) -> Vec<&'static str> {
        parse_ipa(input)
            .unwrap()
            .into_iter()
            .map(|p| p.symbol())
            .collect()
    }

    #[test]
    fn greedy_longest_match_prefers_affricates() {
        // "tʃ" must parse as one affricate, not stop + fricative.
        assert_eq!(symbols("tʃa"), vec!["tʃ", "a"]);
        // and the aspirated variant wins over the plain affricate.
        assert_eq!(symbols("tʃʰa"), vec!["tʃʰ", "a"]);
    }

    #[test]
    fn long_vowels_are_single_segments() {
        assert_eq!(symbols("aːt"), vec!["aː", "t"]);
        assert_eq!(symbols("aat"), vec!["a", "a", "t"]);
    }

    #[test]
    fn stress_and_syllable_marks_are_stripped() {
        assert_eq!(symbols("ˈne.ru"), symbols("neru"));
        assert_eq!(symbols("ˌnɛˈru"), vec!["n", "ɛ", "r", "u"]);
    }

    #[test]
    fn aliases_are_rewritten() {
        // Script g (U+0261) and ligature tʃ.
        assert_eq!(symbols("ɡoʤi"), vec!["g", "o", "dʒ", "i"]);
        // Rhotacized schwa expands to two segments.
        assert_eq!(symbols("fɑðɚ"), vec!["f", "ɑ", "ð", "ə", "r"]);
    }

    #[test]
    fn unknown_symbol_reports_offset_and_fragment() {
        let err = parse_ipa("ne#ru").unwrap_err();
        match err {
            PhonemeError::UnknownSymbol { offset, fragment } => {
                assert_eq!(offset, 2);
                assert!(fragment.starts_with('#'));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_input_parses_to_empty() {
        assert!(parse_ipa("").unwrap().is_empty());
        assert!(parse_ipa("ˈ ").unwrap().is_empty());
    }

    #[test]
    fn paper_sample_strings_parse() {
        // Figure 9 of the paper (modulo symbols outside our inventory).
        for s in ["junəvɜrsɪti", "neɪru", "ɪndɪjaː", "haɪdrədʒən", "ɛspanjøl"] {
            let parsed = parse_ipa(s).unwrap();
            assert!(!parsed.is_empty(), "failed on {s}");
        }
    }
}
