//! [`PhonemeString`]: the unit of comparison in phoneme space.

use crate::bytes::{Bytes, SharedBytes};
use crate::error::PhonemeError;
use crate::parse::parse_ipa;
use crate::phoneme::Phoneme;
use std::fmt;
use std::mem::ManuallyDrop;
use std::ops::Index;
use std::str::FromStr;

/// An immutable sequence of phonemes — the phonemic rendering of one proper
/// name. This is what the LexEQUAL operator actually compares.
///
/// Storage is [`Bytes`]: raw inventory ids, either an owned buffer
/// (parsed or G2P-produced strings) or a borrowed view into a shared
/// allocation (entries served straight out of a memory-mapped
/// snapshot). The invariant that makes [`as_slice`](Self::as_slice)
/// sound is enforced at every construction site: **every stored byte
/// is a valid inventory id** (`< Inventory::len()`).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PhonemeString(Bytes);

impl PhonemeString {
    /// Create from a vector of phonemes.
    pub fn new(phonemes: Vec<Phoneme>) -> Self {
        // `Phoneme` is `#[repr(transparent)]` over `u8`, so the vec's
        // allocation can be adopted wholesale instead of re-collected.
        let mut v = ManuallyDrop::new(phonemes);
        let (ptr, len, cap) = (v.as_mut_ptr(), v.len(), v.capacity());
        // SAFETY: same element layout and alignment (`repr(transparent)`
        // over `u8`), same allocator, and the original vec is leaked via
        // `ManuallyDrop` so the allocation has exactly one owner. Every
        // byte is a valid id because it came from a `Phoneme`.
        let bytes = unsafe { Vec::from_raw_parts(ptr.cast::<u8>(), len, cap) };
        PhonemeString(Bytes::Owned(bytes))
    }

    /// Create from a borrowed view of raw inventory ids, validating
    /// every byte. This is the mmap-load path: the returned string
    /// reads the shared allocation in place, no copy.
    pub fn from_shared(ids: SharedBytes) -> Result<Self, PhonemeError> {
        if let Some(&bad) = ids.as_slice().iter().find(|&&b| !Phoneme::is_valid_id(b)) {
            return Err(PhonemeError::InvalidId(bad));
        }
        Ok(PhonemeString(Bytes::Shared(ids)))
    }

    /// [`from_shared`](Self::from_shared) for bytes a loader already
    /// validated arena-wide. Debug builds still assert; an invalid id
    /// smuggled through indexes the inventory out of range later (a
    /// panic, not UB — `Phoneme` is a plain `u8` wrapper).
    #[doc(hidden)]
    pub fn from_shared_prevalidated(ids: SharedBytes) -> Self {
        debug_assert!(ids.as_slice().iter().all(|&b| Phoneme::is_valid_id(b)));
        PhonemeString(Bytes::Shared(ids))
    }

    /// Empty phoneme string.
    pub fn empty() -> Self {
        PhonemeString(Bytes::default())
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the string has no segments.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The segments as a slice — this is what edit distance runs over.
    #[inline]
    pub fn as_slice(&self) -> &[Phoneme] {
        let bytes = self.0.as_slice();
        // SAFETY: `Phoneme` is `#[repr(transparent)]` over `u8`, so the
        // layouts match; every stored byte is a valid inventory id by
        // the construction invariant (`new` from real `Phoneme`s,
        // `from_shared`/`push` validated).
        unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<Phoneme>(), bytes.len()) }
    }

    /// The segments viewed as their raw inventory ids, in place — the
    /// batched screens and the dense DP read candidate symbols through
    /// this without copying.
    #[inline]
    pub fn id_bytes(&self) -> &[u8] {
        self.0.as_slice()
    }

    /// Iterate over segments.
    pub fn iter(&self) -> std::slice::Iter<'_, Phoneme> {
        self.as_slice().iter()
    }

    /// Append another phoneme string (used by the synthetic dataset
    /// generator, which concatenates lexicon entries pairwise).
    pub fn concat(&self, other: &PhonemeString) -> PhonemeString {
        let mut v = Vec::with_capacity(self.len() + other.len());
        v.extend_from_slice(self.id_bytes());
        v.extend_from_slice(other.id_bytes());
        PhonemeString(Bytes::Owned(v))
    }

    /// Push a single phoneme (used by G2P emitters).
    pub fn push(&mut self, p: Phoneme) {
        self.0.push(p.id());
    }

    /// Last phoneme, if any.
    pub fn last(&self) -> Option<Phoneme> {
        self.as_slice().last().copied()
    }
}

impl Index<usize> for PhonemeString {
    type Output = Phoneme;
    fn index(&self, i: usize) -> &Phoneme {
        &self.as_slice()[i]
    }
}

impl FromStr for PhonemeString {
    type Err = PhonemeError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_ipa(s).map(PhonemeString::new)
    }
}

impl fmt::Display for PhonemeString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut prev: Option<Phoneme> = None;
        for &p in self.as_slice() {
            if let Some(q) = prev {
                // Disambiguate junctions whose concatenation would
                // re-tokenize differently (t + s vs the affricate ts).
                if crate::parse::would_merge(q, p) {
                    f.write_str(".")?;
                }
            }
            f.write_str(p.symbol())?;
            prev = Some(p);
        }
        Ok(())
    }
}

impl fmt::Debug for PhonemeString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "/{self}/")
    }
}

impl FromIterator<Phoneme> for PhonemeString {
    fn from_iter<T: IntoIterator<Item = Phoneme>>(iter: T) -> Self {
        PhonemeString::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a PhonemeString {
    type Item = &'a Phoneme;
    type IntoIter = std::slice::Iter<'a, Phoneme>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn parse_display_round_trip() {
        for s in ["neɪru", "junəvɜrsɪti", "ɪndɪjaː", "tʃʰa", ""] {
            let ps: PhonemeString = s.parse().unwrap();
            assert_eq!(ps.to_string(), s);
        }
    }

    #[test]
    fn concat_concatenates() {
        let a: PhonemeString = "ne".parse().unwrap();
        let b: PhonemeString = "ru".parse().unwrap();
        let ab = a.concat(&b);
        assert_eq!(ab.to_string(), "neru");
        assert_eq!(ab.len(), a.len() + b.len());
    }

    #[test]
    fn len_counts_segments_not_code_points() {
        // aspirated affricate = 1 segment, 3 code points
        let ps: PhonemeString = "tʃʰaː".parse().unwrap();
        assert_eq!(ps.len(), 2);
    }

    #[test]
    fn indexing_and_iteration_agree() {
        let ps: PhonemeString = "neru".parse().unwrap();
        let collected: Vec<_> = ps.iter().copied().collect();
        for (i, p) in collected.iter().enumerate() {
            assert_eq!(ps[i], *p);
        }
        assert_eq!(ps.last(), Some(ps[3]));
    }

    #[test]
    fn ordering_is_lexicographic_over_ids() {
        let a: PhonemeString = "pa".parse().unwrap();
        let b: PhonemeString = "pat".parse().unwrap();
        assert!(a < b, "prefix sorts before extension");
    }

    #[test]
    fn shared_face_is_equal_to_owned_face() {
        let owned: PhonemeString = "neru".parse().unwrap();
        let owner: Arc<crate::bytes::ByteOwner> = Arc::new(owned.id_bytes().to_vec());
        let shared = PhonemeString::from_shared(SharedBytes::whole(owner)).unwrap();
        assert_eq!(owned, shared);
        assert_eq!(owned.to_string(), shared.to_string());
        assert_eq!(owned.as_slice(), shared.as_slice());
    }

    #[test]
    fn from_shared_rejects_out_of_range_ids() {
        let owner: Arc<crate::bytes::ByteOwner> = Arc::new(vec![0u8, 255, 0]);
        let err = PhonemeString::from_shared(SharedBytes::whole(owner)).unwrap_err();
        assert_eq!(err, PhonemeError::InvalidId(255));
    }
}
