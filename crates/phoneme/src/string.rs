//! [`PhonemeString`]: the unit of comparison in phoneme space.

use crate::error::PhonemeError;
use crate::parse::parse_ipa;
use crate::phoneme::Phoneme;
use std::fmt;
use std::ops::Index;
use std::str::FromStr;

/// An immutable sequence of phonemes — the phonemic rendering of one proper
/// name. This is what the LexEQUAL operator actually compares.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PhonemeString(Vec<Phoneme>);

impl PhonemeString {
    /// Create from a vector of phonemes.
    pub fn new(phonemes: Vec<Phoneme>) -> Self {
        PhonemeString(phonemes)
    }

    /// Empty phoneme string.
    pub fn empty() -> Self {
        PhonemeString(Vec::new())
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the string has no segments.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The segments as a slice — this is what edit distance runs over.
    pub fn as_slice(&self) -> &[Phoneme] {
        &self.0
    }

    /// The segments viewed as their raw inventory ids, in place — the
    /// batched screens and the dense DP read candidate symbols through
    /// this without copying.
    pub fn id_bytes(&self) -> &[u8] {
        // SAFETY: `Phoneme` is `#[repr(transparent)]` over `u8`, so a
        // slice of phonemes has the same layout as a slice of bytes.
        unsafe { std::slice::from_raw_parts(self.0.as_ptr().cast::<u8>(), self.0.len()) }
    }

    /// Iterate over segments.
    pub fn iter(&self) -> std::slice::Iter<'_, Phoneme> {
        self.0.iter()
    }

    /// Append another phoneme string (used by the synthetic dataset
    /// generator, which concatenates lexicon entries pairwise).
    pub fn concat(&self, other: &PhonemeString) -> PhonemeString {
        let mut v = Vec::with_capacity(self.len() + other.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        PhonemeString(v)
    }

    /// Push a single phoneme (used by G2P emitters).
    pub fn push(&mut self, p: Phoneme) {
        self.0.push(p);
    }

    /// Last phoneme, if any.
    pub fn last(&self) -> Option<Phoneme> {
        self.0.last().copied()
    }
}

impl Index<usize> for PhonemeString {
    type Output = Phoneme;
    fn index(&self, i: usize) -> &Phoneme {
        &self.0[i]
    }
}

impl FromStr for PhonemeString {
    type Err = PhonemeError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_ipa(s).map(PhonemeString)
    }
}

impl fmt::Display for PhonemeString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut prev: Option<Phoneme> = None;
        for &p in &self.0 {
            if let Some(q) = prev {
                // Disambiguate junctions whose concatenation would
                // re-tokenize differently (t + s vs the affricate ts).
                if crate::parse::would_merge(q, p) {
                    f.write_str(".")?;
                }
            }
            f.write_str(p.symbol())?;
            prev = Some(p);
        }
        Ok(())
    }
}

impl fmt::Debug for PhonemeString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "/{self}/")
    }
}

impl FromIterator<Phoneme> for PhonemeString {
    fn from_iter<T: IntoIterator<Item = Phoneme>>(iter: T) -> Self {
        PhonemeString(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a PhonemeString {
    type Item = &'a Phoneme;
    type IntoIter = std::slice::Iter<'a, Phoneme>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_round_trip() {
        for s in ["neɪru", "junəvɜrsɪti", "ɪndɪjaː", "tʃʰa", ""] {
            let ps: PhonemeString = s.parse().unwrap();
            assert_eq!(ps.to_string(), s);
        }
    }

    #[test]
    fn concat_concatenates() {
        let a: PhonemeString = "ne".parse().unwrap();
        let b: PhonemeString = "ru".parse().unwrap();
        let ab = a.concat(&b);
        assert_eq!(ab.to_string(), "neru");
        assert_eq!(ab.len(), a.len() + b.len());
    }

    #[test]
    fn len_counts_segments_not_code_points() {
        // aspirated affricate = 1 segment, 3 code points
        let ps: PhonemeString = "tʃʰaː".parse().unwrap();
        assert_eq!(ps.len(), 2);
    }

    #[test]
    fn indexing_and_iteration_agree() {
        let ps: PhonemeString = "neru".parse().unwrap();
        let collected: Vec<_> = ps.iter().copied().collect();
        for (i, p) in collected.iter().enumerate() {
            assert_eq!(ps[i], *p);
        }
        assert_eq!(ps.last(), Some(ps[3]));
    }

    #[test]
    fn ordering_is_lexicographic_over_ids() {
        let a: PhonemeString = "pa".parse().unwrap();
        let b: PhonemeString = "pat".parse().unwrap();
        assert!(a < b, "prefix sorts before extension");
    }
}
