//! The static segmental phoneme inventory.
//!
//! The inventory is the closed universe of IPA segments the LexEQUAL stack
//! operates on. It covers the phoneme sets of the languages in the paper's
//! running example and evaluation corpus: English, Hindi, Tamil, Greek,
//! French and Spanish. Suprasegmentals (stress, tone, syllable breaks) are
//! deliberately excluded — the paper strips them before matching (§4.1).
//!
//! Each entry pairs a canonical IPA spelling with its articulatory
//! [`Features`]. A [`crate::Phoneme`] is a compact index into this
//! table, so equality and hashing are O(1) on a single byte.

use crate::features::{
    Backness, ConsonantFeatures, Features, Height, Length, Manner, Place, Roundedness, Voicing,
    VowelFeatures,
};
use crate::phoneme::Phoneme;

/// One row of the inventory: an IPA symbol and its articulatory features.
#[derive(Debug, Clone, Copy)]
pub struct PhonemeDescriptor {
    /// Canonical IPA spelling (may be multiple code points, e.g. `tʃʰ`).
    pub symbol: &'static str,
    /// Articulatory feature bundle.
    pub features: Features,
}

const fn cons(
    symbol: &'static str,
    voicing: Voicing,
    place: Place,
    manner: Manner,
) -> PhonemeDescriptor {
    PhonemeDescriptor {
        symbol,
        features: Features::Consonant(ConsonantFeatures {
            voicing,
            place,
            manner,
            aspirated: false,
        }),
    }
}

const fn cons_asp(
    symbol: &'static str,
    voicing: Voicing,
    place: Place,
    manner: Manner,
) -> PhonemeDescriptor {
    PhonemeDescriptor {
        symbol,
        features: Features::Consonant(ConsonantFeatures {
            voicing,
            place,
            manner,
            aspirated: true,
        }),
    }
}

const fn vowel(
    symbol: &'static str,
    height: Height,
    backness: Backness,
    roundedness: Roundedness,
    length: Length,
) -> PhonemeDescriptor {
    PhonemeDescriptor {
        symbol,
        features: Features::Vowel(VowelFeatures {
            height,
            backness,
            roundedness,
            length,
        }),
    }
}

use Backness::*;
use Height::*;
use Length::*;
use Manner::*;
use Place::*;
use Roundedness::*;
use Voicing::*;

/// The static inventory table. Order is stable and part of the crate's
/// public contract: `Phoneme(i)` refers to `TABLE[i]` forever.
pub static TABLE: &[PhonemeDescriptor] = &[
    // ---- Stops ------------------------------------------------------
    cons("p", Voiceless, Bilabial, Stop),  // 0
    cons("b", Voiced, Bilabial, Stop),     // 1
    cons("t", Voiceless, Alveolar, Stop),  // 2
    cons("d", Voiced, Alveolar, Stop),     // 3
    cons("ʈ", Voiceless, Retroflex, Stop), // 4
    cons("ɖ", Voiced, Retroflex, Stop),    // 5
    cons("k", Voiceless, Velar, Stop),     // 6
    cons("g", Voiced, Velar, Stop),        // 7
    cons("q", Voiceless, Uvular, Stop),    // 8
    cons("ʔ", Voiceless, Glottal, Stop),   // 9
    // ---- Aspirated stops (Hindi/Indic) ------------------------------
    cons_asp("pʰ", Voiceless, Bilabial, Stop),  // 10
    cons_asp("bʱ", Voiced, Bilabial, Stop),     // 11
    cons_asp("tʰ", Voiceless, Alveolar, Stop),  // 12
    cons_asp("dʱ", Voiced, Alveolar, Stop),     // 13
    cons_asp("ʈʰ", Voiceless, Retroflex, Stop), // 14
    cons_asp("ɖʱ", Voiced, Retroflex, Stop),    // 15
    cons_asp("kʰ", Voiceless, Velar, Stop),     // 16
    cons_asp("gʱ", Voiced, Velar, Stop),        // 17
    // ---- Nasals ------------------------------------------------------
    cons("m", Voiced, Bilabial, Nasal),  // 18
    cons("n", Voiced, Alveolar, Nasal),  // 19
    cons("ɳ", Voiced, Retroflex, Nasal), // 20
    cons("ɲ", Voiced, Palatal, Nasal),   // 21
    cons("ŋ", Voiced, Velar, Nasal),     // 22
    // ---- Fricatives --------------------------------------------------
    cons("ɸ", Voiceless, Bilabial, Fricative),     // 23
    cons("β", Voiced, Bilabial, Fricative),        // 24
    cons("f", Voiceless, Labiodental, Fricative),  // 25
    cons("v", Voiced, Labiodental, Fricative),     // 26
    cons("θ", Voiceless, Dental, Fricative),       // 27
    cons("ð", Voiced, Dental, Fricative),          // 28
    cons("s", Voiceless, Alveolar, Fricative),     // 29
    cons("z", Voiced, Alveolar, Fricative),        // 30
    cons("ʃ", Voiceless, Postalveolar, Fricative), // 31
    cons("ʒ", Voiced, Postalveolar, Fricative),    // 32
    cons("ʂ", Voiceless, Retroflex, Fricative),    // 33
    cons("ç", Voiceless, Palatal, Fricative),      // 34
    cons("x", Voiceless, Velar, Fricative),        // 35
    cons("ɣ", Voiced, Velar, Fricative),           // 36
    cons("h", Voiceless, Glottal, Fricative),      // 37
    cons("ɦ", Voiced, Glottal, Fricative),         // 38
    // ---- Affricates --------------------------------------------------
    cons("ts", Voiceless, Alveolar, Affricate),     // 39
    cons("dz", Voiced, Alveolar, Affricate),        // 40
    cons("tʃ", Voiceless, Postalveolar, Affricate), // 41
    cons("dʒ", Voiced, Postalveolar, Affricate),    // 42
    cons_asp("tʃʰ", Voiceless, Postalveolar, Affricate), // 43
    cons_asp("dʒʱ", Voiced, Postalveolar, Affricate), // 44
    // ---- Liquids -----------------------------------------------------
    cons("r", Voiced, Alveolar, Trill),        // 45
    cons("ɾ", Voiced, Alveolar, Tap),          // 46
    cons("ɽ", Voiced, Retroflex, Tap),         // 47
    cons("l", Voiced, Alveolar, Lateral),      // 48
    cons("ɭ", Voiced, Retroflex, Lateral),     // 49
    cons("ʎ", Voiced, Palatal, Lateral),       // 50
    cons("ɻ", Voiced, Retroflex, Approximant), // 51
    // ---- Approximants ------------------------------------------------
    cons("j", Voiced, Palatal, Approximant),     // 52
    cons("w", Voiced, Velar, Approximant),       // 53
    cons("ʋ", Voiced, Labiodental, Approximant), // 54
    // ---- Short vowels --------------------------------------------------
    vowel("i", Close, Front, Unrounded, Short),     // 55
    vowel("ɪ", NearClose, Front, Unrounded, Short), // 56
    vowel("y", Close, Front, Rounded, Short),       // 57
    vowel("e", CloseMid, Front, Unrounded, Short),  // 58
    vowel("ɛ", OpenMid, Front, Unrounded, Short),   // 59
    vowel("ø", CloseMid, Front, Rounded, Short),    // 60
    vowel("æ", NearOpen, Front, Unrounded, Short),  // 61
    vowel("a", Open, Central, Unrounded, Short),    // 62
    vowel("ɑ", Open, Back, Unrounded, Short),       // 63
    vowel("ɒ", Open, Back, Rounded, Short),         // 64
    vowel("ɔ", OpenMid, Back, Rounded, Short),      // 65
    vowel("o", CloseMid, Back, Rounded, Short),     // 66
    vowel("ʊ", NearClose, Back, Rounded, Short),    // 67
    vowel("u", Close, Back, Rounded, Short),        // 68
    vowel("ʌ", OpenMid, Back, Unrounded, Short),    // 69
    vowel("ə", Mid, Central, Unrounded, Short),     // 70
    vowel("ɜ", OpenMid, Central, Unrounded, Short), // 71
    // ---- Long vowels ---------------------------------------------------
    vowel("iː", Close, Front, Unrounded, Long),     // 72
    vowel("eː", CloseMid, Front, Unrounded, Long),  // 73
    vowel("aː", Open, Central, Unrounded, Long),    // 74
    vowel("oː", CloseMid, Back, Rounded, Long),     // 75
    vowel("uː", Close, Back, Rounded, Long),        // 76
    vowel("ɛː", OpenMid, Front, Unrounded, Long),   // 77
    vowel("ɔː", OpenMid, Back, Rounded, Long),      // 78
    vowel("ɜː", OpenMid, Central, Unrounded, Long), // 79
];

/// Alias spellings accepted on input and rewritten to canonical symbols
/// before tokenization. Covers common Unicode and ASCII-ish variants.
pub static ALIASES: &[(&str, &str)] = &[
    ("ɡ", "g"),  // U+0261 LATIN SMALL LETTER SCRIPT G
    ("ʧ", "tʃ"), // deprecated ligature
    ("ʤ", "dʒ"), // deprecated ligature
    ("ʦ", "ts"),
    ("ʣ", "dz"),
    ("ɚ", "ər"), // rhotacized schwa -> schwa + r
    ("ɝ", "ɜr"),
    ("ɹ", "r"), // English approximant r folded into the trill entry
    ("ʁ", "ɣ"), // uvular fricative folded into voiced velar fricative
    ("c", "k"), // plain-text fallback
];

/// Handle to the static inventory; exists so call sites read
/// `Inventory::get(...)` rather than poking `TABLE` directly.
pub struct Inventory;

impl Inventory {
    /// Number of phonemes in the inventory.
    pub fn len() -> usize {
        TABLE.len()
    }

    /// Descriptor for a phoneme id, if in range.
    pub fn get(id: u8) -> Option<&'static PhonemeDescriptor> {
        TABLE.get(id as usize)
    }

    /// Find the phoneme whose canonical symbol equals `symbol` exactly.
    pub fn by_symbol(symbol: &str) -> Option<Phoneme> {
        TABLE
            .iter()
            .position(|d| d.symbol == symbol)
            .map(Phoneme::from_index)
    }

    /// Iterate over all phonemes in id order.
    pub fn iter() -> impl Iterator<Item = Phoneme> {
        (0..TABLE.len()).map(Phoneme::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_symbols_are_unique() {
        for (i, a) in TABLE.iter().enumerate() {
            for b in &TABLE[i + 1..] {
                assert_ne!(a.symbol, b.symbol, "duplicate symbol {:?}", a.symbol);
            }
        }
    }

    #[test]
    fn inventory_fits_in_u8() {
        assert!(TABLE.len() <= u8::MAX as usize);
    }

    #[test]
    fn by_symbol_round_trips() {
        for (i, d) in TABLE.iter().enumerate() {
            let p = Inventory::by_symbol(d.symbol).expect("symbol must resolve");
            assert_eq!(p.index(), i);
            assert_eq!(p.symbol(), d.symbol);
        }
    }

    #[test]
    fn aliases_expand_to_known_canonical_symbols() {
        // Every alias RHS must tokenize entirely from canonical symbols;
        // checked the simple way: each RHS is a concatenation of symbols.
        for (alias, canon) in ALIASES {
            assert!(
                Inventory::by_symbol(canon).is_some() || canon.chars().count() > 1,
                "alias {alias:?} expands to {canon:?} which must be canonical or multi-symbol"
            );
        }
    }

    #[test]
    fn get_out_of_range_is_none() {
        assert!(Inventory::get(200).is_none());
        assert!(Inventory::get((TABLE.len()) as u8).is_none());
    }

    #[test]
    fn feature_table_is_total_and_distinguishing() {
        // Totality: every inventory entry carries a full feature bundle
        // whose segment kind agrees with `is_vowel` — the feature-graded
        // cost model and the embedder both read these bundles without any
        // fallback path, so a gap here would silently skew costs.
        for p in Inventory::iter() {
            let f = p.features();
            assert_eq!(
                f.kind() == crate::features::SegmentKind::Vowel,
                p.is_vowel(),
                "kind disagrees with is_vowel for {:?}",
                p.symbol()
            );
            assert_eq!(f.dissimilarity(&f), 0, "{:?}", p.symbol());
        }
        // Distinguishability: no two distinct phonemes share an identical
        // bundle. If they did, the feature cost model would price their
        // substitution at the bare floor and the phonemes would be
        // indistinguishable to every feature-driven consumer.
        for a in Inventory::iter() {
            for b in Inventory::iter() {
                if a != b {
                    assert!(
                        a.features().dissimilarity(&b.features()) > 0,
                        "{:?} and {:?} share a feature bundle",
                        a.symbol(),
                        b.symbol()
                    );
                }
            }
        }
    }
}
