//! Articulatory feature descriptions for segmental phonemes.
//!
//! Features follow the conventions of the International Phonetic Alphabet
//! chart. They serve two purposes in the LexEQUAL stack:
//!
//! 1. The standard [`ClusterTable`](crate::ClusterTable) groups phonemes by
//!    shared manner/place features, generalizing the Soundex digit groups to
//!    the multilingual phoneme space.
//! 2. Feature distance is available as an alternative, finer-grained
//!    substitution cost signal for experimentation.

/// Whether a segment is a vowel or a consonant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentKind {
    /// A vowel segment, described by height/backness/roundedness.
    Vowel,
    /// A consonant segment, described by voicing/place/manner.
    Consonant,
}

/// Vocal fold vibration during a consonant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Voicing {
    /// Vocal folds vibrate (e.g. /b/, /z/).
    Voiced,
    /// Vocal folds do not vibrate (e.g. /p/, /s/).
    Voiceless,
}

/// Place of articulation for consonants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Place {
    /// Both lips (/p/, /m/).
    Bilabial,
    /// Lower lip against upper teeth (/f/, /v/).
    Labiodental,
    /// Tongue against teeth (/θ/, /ð/).
    Dental,
    /// Tongue against alveolar ridge (/t/, /s/, /n/).
    Alveolar,
    /// Just behind the alveolar ridge (/ʃ/, /tʃ/).
    Postalveolar,
    /// Tongue curled back (/ʈ/, /ɳ/, /ɽ/) — contrastive in Indic languages.
    Retroflex,
    /// Tongue body against hard palate (/ç/, /ɲ/, /j/).
    Palatal,
    /// Tongue body against soft palate (/k/, /ŋ/, /x/).
    Velar,
    /// Tongue root against uvula (/q/).
    Uvular,
    /// At the glottis (/h/, /ʔ/).
    Glottal,
}

/// Manner of articulation for consonants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Manner {
    /// Complete closure then release (/p/, /t/, /k/).
    Stop,
    /// Turbulent airflow through a narrow channel (/f/, /s/, /x/).
    Fricative,
    /// Stop released into a fricative (/tʃ/, /dʒ/, /ts/).
    Affricate,
    /// Airflow through the nose (/m/, /n/, /ŋ/).
    Nasal,
    /// Single rapid closure (/ɾ/, /ɽ/).
    Tap,
    /// Repeated vibration (/r/).
    Trill,
    /// Lateral airflow around the tongue (/l/, /ɭ/).
    Lateral,
    /// Vowel-like constriction (/j/, /w/, /ʋ/).
    Approximant,
}

/// Vowel height (vertical tongue position).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Height {
    /// High/close vowels (/i/, /u/).
    Close,
    /// Near-close (/ɪ/, /ʊ/).
    NearClose,
    /// Close-mid (/e/, /o/, /ø/).
    CloseMid,
    /// True mid (/ə/).
    Mid,
    /// Open-mid (/ɛ/, /ɔ/, /ʌ/).
    OpenMid,
    /// Near-open (/æ/).
    NearOpen,
    /// Open/low vowels (/a/, /ɑ/).
    Open,
}

/// Vowel backness (horizontal tongue position).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backness {
    /// Front vowels (/i/, /e/, /æ/).
    Front,
    /// Central vowels (/ə/, /ɜ/, /a/).
    Central,
    /// Back vowels (/u/, /o/, /ɑ/).
    Back,
}

/// Lip rounding for vowels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Roundedness {
    /// Rounded lips (/u/, /o/, /y/, /ø/).
    Rounded,
    /// Spread/neutral lips (/i/, /e/, /a/).
    Unrounded,
}

/// Phonemic length. Contrastive in Hindi and Tamil (a vs ā), carried as a
/// feature on distinct inventory entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Length {
    /// Short (default) quantity.
    Short,
    /// Long quantity, written with the IPA length mark ː.
    Long,
}

/// The articulatory description of one consonant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConsonantFeatures {
    /// Voiced or voiceless.
    pub voicing: Voicing,
    /// Place of articulation.
    pub place: Place,
    /// Manner of articulation.
    pub manner: Manner,
    /// Aspirated release (contrastive in Hindi: /pʰ/ vs /p/).
    pub aspirated: bool,
}

/// The articulatory description of one vowel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VowelFeatures {
    /// Vowel height.
    pub height: Height,
    /// Vowel backness.
    pub backness: Backness,
    /// Lip rounding.
    pub roundedness: Roundedness,
    /// Phonemic length.
    pub length: Length,
}

/// Articulatory features of a segment: either vowel or consonant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Features {
    /// Vowel description.
    Vowel(VowelFeatures),
    /// Consonant description.
    Consonant(ConsonantFeatures),
}

impl Features {
    /// The coarse segment kind of this feature bundle.
    pub fn kind(&self) -> SegmentKind {
        match self {
            Features::Vowel(_) => SegmentKind::Vowel,
            Features::Consonant(_) => SegmentKind::Consonant,
        }
    }

    /// A small integer dissimilarity between two feature bundles, in
    /// `0..=4`. Zero means identical; vowels and consonants are maximally
    /// dissimilar. Used by the feature-based cost model ablation.
    pub fn dissimilarity(&self, other: &Features) -> u32 {
        match (self, other) {
            (Features::Vowel(a), Features::Vowel(b)) => {
                let mut d = 0;
                if a.height != b.height {
                    d += 1;
                }
                if a.backness != b.backness {
                    d += 1;
                }
                if a.roundedness != b.roundedness {
                    d += 1;
                }
                if a.length != b.length {
                    d += 1;
                }
                d
            }
            (Features::Consonant(a), Features::Consonant(b)) => {
                let mut d = 0;
                if a.voicing != b.voicing {
                    d += 1;
                }
                if a.place != b.place {
                    d += 1;
                }
                if a.manner != b.manner {
                    d += 1;
                }
                if a.aspirated != b.aspirated {
                    d += 1;
                }
                d
            }
            _ => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vowel(h: Height, b: Backness, r: Roundedness, l: Length) -> Features {
        Features::Vowel(VowelFeatures {
            height: h,
            backness: b,
            roundedness: r,
            length: l,
        })
    }

    fn consonant(v: Voicing, p: Place, m: Manner, asp: bool) -> Features {
        Features::Consonant(ConsonantFeatures {
            voicing: v,
            place: p,
            manner: m,
            aspirated: asp,
        })
    }

    #[test]
    fn identical_features_have_zero_dissimilarity() {
        let a = vowel(
            Height::Close,
            Backness::Front,
            Roundedness::Unrounded,
            Length::Short,
        );
        assert_eq!(a.dissimilarity(&a), 0);
        let c = consonant(Voicing::Voiced, Place::Bilabial, Manner::Stop, false);
        assert_eq!(c.dissimilarity(&c), 0);
    }

    #[test]
    fn vowel_consonant_pairs_are_maximally_dissimilar() {
        let a = vowel(
            Height::Open,
            Backness::Central,
            Roundedness::Unrounded,
            Length::Short,
        );
        let c = consonant(Voicing::Voiceless, Place::Velar, Manner::Stop, false);
        assert_eq!(a.dissimilarity(&c), 4);
        assert_eq!(c.dissimilarity(&a), 4);
    }

    #[test]
    fn dissimilarity_is_symmetric() {
        let p = consonant(Voicing::Voiceless, Place::Bilabial, Manner::Stop, false);
        let b = consonant(Voicing::Voiced, Place::Bilabial, Manner::Stop, false);
        let bh = consonant(Voicing::Voiced, Place::Bilabial, Manner::Stop, true);
        assert_eq!(p.dissimilarity(&b), b.dissimilarity(&p));
        assert_eq!(p.dissimilarity(&b), 1);
        assert_eq!(p.dissimilarity(&bh), 2);
    }

    #[test]
    fn kind_reports_segment_class() {
        let a = vowel(
            Height::Mid,
            Backness::Central,
            Roundedness::Unrounded,
            Length::Short,
        );
        assert_eq!(a.kind(), SegmentKind::Vowel);
        let c = consonant(Voicing::Voiced, Place::Alveolar, Manner::Nasal, false);
        assert_eq!(c.kind(), SegmentKind::Consonant);
    }
}
