//! Phoneme clustering: grouping *like phonemes*.
//!
//! LexEQUAL's clustered edit distance (paper §3.3) extends the Soundex idea
//! to the phoneme space: near-equal phonemes are grouped into clusters, and
//! a substitution *within* a cluster is charged the tunable
//! *intra-cluster substitution cost* while substitutions *across* clusters
//! cost a full unit. The phonetic index (paper §5.3) reuses the same
//! partition: each phoneme string maps to the sequence of its cluster ids —
//! the *grouped phoneme string identifier* — which is B-tree indexable.
//!
//! Two built-in tables are provided:
//!
//! * [`ClusterTable::standard`] — a fine partition derived from articulatory
//!   features, following the multilingual clustering of Mareuil et al.
//!   (ICPhS 1999): stops by place, sibilants, nasals, liquids, glides, and
//!   five vowel regions.
//! * [`ClusterTable::coarse`] — a deliberately coarse, Soundex-like
//!   partition (all stops together, all vowels together, …) used by the
//!   cluster-granularity ablation in the benchmark suite.
//!
//! Users may also build custom tables ([`ClusterTable::from_groups`]),
//! matching the paper's "user customization of clustering".

use crate::error::PhonemeError;
use crate::features::{Features, Height, Manner, Place};
use crate::inventory::{Inventory, TABLE};
use crate::phoneme::Phoneme;
use crate::string::PhonemeString;
use std::fmt;

/// Identifier of a phoneme cluster within a [`ClusterTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId(pub u8);

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A total mapping from every inventory phoneme to a cluster id.
///
/// Invariant: `assignment.len() == Inventory::len()` and every phoneme is
/// assigned (the table is a *partition* of the inventory).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterTable {
    assignment: Vec<ClusterId>,
    cluster_count: u8,
    name: &'static str,
}

impl ClusterTable {
    /// The standard fine-grained partition (see module docs).
    ///
    /// Clusters:
    /// 0 labial stops, 1 coronal stops (alveolar/dental/retroflex, incl.
    /// dental fricatives), 3 velar/uvular/glottal stops, 4 labial
    /// fricatives & approximants, 5 sibilants & affricates, 6 nasals,
    /// 7 liquids, 8 glottal fricatives, 9 palatal glide,
    /// 10 front-high vowels, 11 front-mid vowels, 12 central/open vowels,
    /// 13 back-high vowels, 14 back-mid vowels.
    pub fn standard() -> Self {
        Self::from_classifier("standard", |f| match f {
            Features::Consonant(c) => match (c.manner, c.place) {
                (Manner::Stop, Place::Bilabial) => 0,
                // Coronal stops: alveolar, dental and retroflex together —
                // Indic scripts render English /t d/ with the retroflex
                // series, so the two must be like phonemes for
                // multiscript matching.
                (Manner::Stop, Place::Alveolar | Place::Dental | Place::Retroflex) => 1,
                (Manner::Fricative, Place::Dental) => 1, // θ ð pattern with t d
                (Manner::Stop, Place::Velar | Place::Uvular | Place::Glottal) => 3,
                (Manner::Fricative, Place::Velar) => 3, // x ɣ with k g
                (Manner::Fricative | Manner::Approximant, Place::Bilabial | Place::Labiodental) => {
                    4
                }
                (Manner::Approximant, Place::Velar) => 4, // w patterns with v/ʋ
                (Manner::Fricative, Place::Alveolar | Place::Postalveolar | Place::Retroflex) => 5,
                (Manner::Fricative, Place::Palatal) => 5, // ç
                (Manner::Affricate, _) => 5,
                (Manner::Nasal, _) => 6,
                (Manner::Trill | Manner::Tap | Manner::Lateral, _) => 7,
                (Manner::Approximant, Place::Retroflex) => 7, // ɻ
                (Manner::Fricative, Place::Glottal) => 8,
                (Manner::Approximant, Place::Palatal) => 9,
                _ => 8,
            },
            Features::Vowel(v) => match (v.backness, v.height) {
                (crate::features::Backness::Front, Height::Close | Height::NearClose) => 10,
                // All unrounded open(-ish) vowels cluster together:
                // /a aː ɑ æ/ are interchangeable across the corpus
                // languages (Indic scripts render each with the a-series).
                (_, Height::Open | Height::NearOpen)
                    if v.roundedness == crate::features::Roundedness::Unrounded =>
                {
                    12
                }
                (crate::features::Backness::Front, _) => 11,
                (crate::features::Backness::Central, _) => 12,
                (crate::features::Backness::Back, Height::Close | Height::NearClose) => 13,
                (crate::features::Backness::Back, _) => 14,
            },
        })
    }

    /// A coarse Soundex-like partition: 0 stops, 1 fricatives/affricates,
    /// 2 nasals, 3 liquids, 4 glides, 5 vowels. Used to study how cluster
    /// granularity trades recall against precision and index selectivity.
    pub fn coarse() -> Self {
        Self::from_classifier("coarse", |f| match f {
            Features::Consonant(c) => match c.manner {
                Manner::Stop => 0,
                Manner::Fricative | Manner::Affricate => 1,
                Manner::Nasal => 2,
                Manner::Trill | Manner::Tap | Manner::Lateral => 3,
                Manner::Approximant => 4,
            },
            Features::Vowel(_) => 5,
        })
    }

    /// The identity partition: every phoneme in its own cluster. With this
    /// table the clustered edit distance degenerates to plain Levenshtein
    /// regardless of the intra-cluster cost.
    pub fn identity() -> Self {
        let assignment = (0..TABLE.len()).map(|i| ClusterId(i as u8)).collect();
        ClusterTable {
            assignment,
            cluster_count: TABLE.len() as u8,
            name: "identity",
        }
    }

    /// Build a table from a classifier function over features.
    fn from_classifier(name: &'static str, f: impl Fn(&Features) -> u8) -> Self {
        let assignment: Vec<ClusterId> = TABLE.iter().map(|d| ClusterId(f(&d.features))).collect();
        let cluster_count = assignment.iter().map(|c| c.0).max().map_or(0, |m| m + 1);
        ClusterTable {
            assignment,
            cluster_count,
            name,
        }
    }

    /// Build a custom table from explicit groups of IPA symbols. Phonemes
    /// not mentioned in any group are each placed in their own fresh
    /// cluster (so the result is still a partition of the inventory).
    ///
    /// # Errors
    ///
    /// Returns [`PhonemeError::UnknownPhoneme`] if a group names a symbol
    /// not in the inventory.
    pub fn from_groups(groups: &[&[&str]]) -> Result<Self, PhonemeError> {
        let mut assignment: Vec<Option<ClusterId>> = vec![None; TABLE.len()];
        let mut next = 0u8;
        for group in groups {
            let id = ClusterId(next);
            next += 1;
            for sym in *group {
                let p = Inventory::by_symbol(sym)
                    .ok_or_else(|| PhonemeError::UnknownPhoneme((*sym).to_owned()))?;
                assignment[p.index()] = Some(id);
            }
        }
        let assignment = assignment
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    let id = ClusterId(next);
                    next += 1;
                    id
                })
            })
            .collect();
        Ok(ClusterTable {
            assignment,
            cluster_count: next,
            name: "custom",
        })
    }

    /// The cluster containing `p`.
    pub fn cluster_of(&self, p: Phoneme) -> ClusterId {
        self.assignment[p.index()]
    }

    /// Whether two phonemes are *like phonemes* (same cluster).
    pub fn same_cluster(&self, a: Phoneme, b: Phoneme) -> bool {
        self.cluster_of(a) == self.cluster_of(b)
    }

    /// Number of clusters in the partition.
    pub fn cluster_count(&self) -> u8 {
        self.cluster_count
    }

    /// Human-readable name of this table ("standard", "coarse", …).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The *grouped phoneme string* of `s`: the sequence of cluster ids of
    /// its phonemes. Two strings with equal cluster keys differ only by
    /// intra-cluster substitutions — the candidate condition of the
    /// phonetic index (paper §5.3).
    pub fn cluster_key(&self, s: &PhonemeString) -> Vec<ClusterId> {
        s.iter().map(|&p| self.cluster_of(p)).collect()
    }

    /// Pack the cluster key into a single `u128` *grouped phoneme string
    /// identifier* suitable for storage in an integer-keyed B-tree index.
    ///
    /// Encoding: base-(cluster_count+1) positional code, most significant
    /// segment first, with digit value `cluster + 1` so that prefixes do
    /// not collide with shorter strings. Strings whose key would overflow
    /// 128 bits are truncated to their first [`Self::packed_prefix_len`]
    /// segments — equality on the packed id is then a *necessary*
    /// condition for cluster-key equality, which preserves index
    /// correctness (it only admits extra candidates, never drops any).
    pub fn packed_key(&self, s: &PhonemeString) -> u128 {
        let base = self.cluster_count as u128 + 1;
        let mut acc: u128 = 0;
        for &p in s.iter().take(self.packed_prefix_len()) {
            acc = acc * base + (self.cluster_of(p).0 as u128 + 1);
        }
        acc
    }

    /// How many segments fit into the packed 128-bit key without overflow.
    pub fn packed_prefix_len(&self) -> usize {
        let base = (self.cluster_count as f64 + 1.0).log2();
        (127.0 / base).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(sym: &str) -> Phoneme {
        Phoneme::from_symbol(sym).unwrap()
    }

    #[test]
    fn standard_table_is_total() {
        let t = ClusterTable::standard();
        for ph in Inventory::iter() {
            let c = t.cluster_of(ph);
            assert!(c.0 < t.cluster_count(), "{ph:?} has out-of-range cluster");
        }
    }

    #[test]
    fn like_phonemes_share_standard_clusters() {
        let t = ClusterTable::standard();
        // Voicing and aspiration variants of a stop cluster together.
        assert!(t.same_cluster(p("p"), p("b")));
        assert!(t.same_cluster(p("p"), p("pʰ")));
        assert!(t.same_cluster(p("t"), p("d")));
        assert!(t.same_cluster(p("t"), p("θ")));
        assert!(t.same_cluster(p("k"), p("g")));
        // Sibilants cluster together.
        assert!(t.same_cluster(p("s"), p("ʃ")));
        assert!(t.same_cluster(p("s"), p("tʃ")));
        // Nasals cluster together.
        assert!(t.same_cluster(p("n"), p("ɳ")));
        // Liquids.
        assert!(t.same_cluster(p("r"), p("l")));
        // Vowel regions.
        assert!(t.same_cluster(p("i"), p("ɪ")));
        assert!(t.same_cluster(p("o"), p("ɔ")));
        assert!(t.same_cluster(p("a"), p("aː")));
        assert!(t.same_cluster(p("æ"), p("aː"))); // æ joins the open vowels
    }

    #[test]
    fn unlike_phonemes_are_separated_in_standard() {
        let t = ClusterTable::standard();
        assert!(!t.same_cluster(p("p"), p("k")));
        assert!(!t.same_cluster(p("s"), p("t")));
        assert!(!t.same_cluster(p("n"), p("r")));
        assert!(!t.same_cluster(p("i"), p("u")));
        assert!(!t.same_cluster(p("a"), p("n")));
    }

    #[test]
    fn coarse_is_coarser_than_standard() {
        let fine = ClusterTable::standard();
        let coarse = ClusterTable::coarse();
        assert!(coarse.cluster_count() < fine.cluster_count());
        // Coarse merges all stops; standard does not.
        assert!(coarse.same_cluster(p("p"), p("k")));
        assert!(!fine.same_cluster(p("p"), p("k")));
        // Coarse merges all fricatives; standard separates labial from sibilant.
        assert!(coarse.same_cluster(p("f"), p("s")));
        assert!(!fine.same_cluster(p("f"), p("s")));
        // Coarse merges all vowels; standard separates front from back.
        assert!(coarse.same_cluster(p("i"), p("u")));
        assert!(!fine.same_cluster(p("i"), p("u")));
    }

    #[test]
    fn identity_separates_everything() {
        let t = ClusterTable::identity();
        assert!(!t.same_cluster(p("p"), p("b")));
        assert_eq!(t.cluster_count() as usize, Inventory::len());
    }

    #[test]
    fn custom_groups_apply_and_rest_are_singletons() {
        let t = ClusterTable::from_groups(&[&["p", "b", "f", "v"], &["s", "z"]]).unwrap();
        assert!(t.same_cluster(p("p"), p("f")));
        assert!(t.same_cluster(p("s"), p("z")));
        assert!(!t.same_cluster(p("p"), p("s")));
        // Unmentioned phonemes are singletons.
        assert!(!t.same_cluster(p("m"), p("n")));
    }

    #[test]
    fn custom_groups_reject_unknown_symbols() {
        assert!(matches!(
            ClusterTable::from_groups(&[&["p", "zz"]]),
            Err(PhonemeError::UnknownPhoneme(_))
        ));
    }

    #[test]
    fn cluster_key_equal_iff_intra_cluster_variants() {
        let t = ClusterTable::standard();
        let a: PhonemeString = "neru".parse().unwrap();
        let b: PhonemeString = "neɾu".parse().unwrap(); // trill -> tap: same cluster
        let c: PhonemeString = "neku".parse().unwrap(); // r -> k: different cluster
        assert_eq!(t.cluster_key(&a), t.cluster_key(&b));
        assert_ne!(t.cluster_key(&a), t.cluster_key(&c));
    }

    #[test]
    fn packed_key_consistent_with_cluster_key_for_short_strings() {
        let t = ClusterTable::standard();
        let a: PhonemeString = "neru".parse().unwrap();
        let b: PhonemeString = "neɾu".parse().unwrap();
        let c: PhonemeString = "nero".parse().unwrap(); // u -> o: different vowel region
        assert_eq!(t.packed_key(&a), t.packed_key(&b));
        assert_ne!(t.packed_key(&a), t.packed_key(&c));
        // Prefix must not collide with shorter string.
        let short: PhonemeString = "ner".parse().unwrap();
        assert_ne!(t.packed_key(&a), t.packed_key(&short));
    }

    #[test]
    fn packed_prefix_len_is_generous() {
        // With 15 clusters, base 16 → 31 segments fit. Names are ~7, the
        // synthetic concatenated dataset ~15, both well inside.
        assert!(ClusterTable::standard().packed_prefix_len() >= 28);
    }
}
