//! The [`Phoneme`] handle type.

use crate::error::PhonemeError;
use crate::features::{Features, SegmentKind};
use crate::inventory::{Inventory, PhonemeDescriptor, TABLE};
use std::fmt;

/// A single segmental phoneme: a compact handle (one byte) into the static
/// [inventory](crate::inventory).
///
/// `Phoneme` is `Copy`, one byte wide, and compares/hashes in O(1) — the
/// edit-distance inner loop of LexEQUAL runs over slices of these.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Phoneme(u8);

impl Phoneme {
    /// Construct from a raw inventory index. Panics if out of range;
    /// reserved for construction sites that iterate the inventory itself.
    pub(crate) fn from_index(index: usize) -> Self {
        assert!(index < TABLE.len(), "phoneme index out of range");
        Phoneme(index as u8)
    }

    /// Construct from a raw id, validating range.
    pub fn from_id(id: u8) -> Result<Self, PhonemeError> {
        if Self::is_valid_id(id) {
            Ok(Phoneme(id))
        } else {
            Err(PhonemeError::InvalidId(id))
        }
    }

    /// Whether a raw byte is a valid inventory id — the invariant the
    /// zero-copy [`PhonemeString`](crate::PhonemeString) storage
    /// enforces on every byte it adopts.
    #[inline]
    pub fn is_valid_id(id: u8) -> bool {
        (id as usize) < TABLE.len()
    }

    /// Look up a phoneme by its canonical IPA symbol.
    pub fn from_symbol(symbol: &str) -> Result<Self, PhonemeError> {
        Inventory::by_symbol(symbol).ok_or_else(|| PhonemeError::UnknownPhoneme(symbol.to_owned()))
    }

    /// The raw inventory id.
    pub fn id(self) -> u8 {
        self.0
    }

    /// The inventory index (same value as [`id`](Self::id), as `usize`).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The full descriptor from the inventory.
    pub fn descriptor(self) -> &'static PhonemeDescriptor {
        &TABLE[self.0 as usize]
    }

    /// Canonical IPA spelling.
    pub fn symbol(self) -> &'static str {
        self.descriptor().symbol
    }

    /// Articulatory features.
    pub fn features(self) -> Features {
        self.descriptor().features
    }

    /// Whether this is a vowel.
    pub fn is_vowel(self) -> bool {
        self.features().kind() == SegmentKind::Vowel
    }

    /// Whether this is a consonant.
    pub fn is_consonant(self) -> bool {
        self.features().kind() == SegmentKind::Consonant
    }
}

impl fmt::Display for Phoneme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

impl fmt::Debug for Phoneme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "/{}/", self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_id_validates_range() {
        assert!(Phoneme::from_id(0).is_ok());
        assert!(Phoneme::from_id((TABLE.len() - 1) as u8).is_ok());
        assert_eq!(
            Phoneme::from_id(TABLE.len() as u8),
            Err(PhonemeError::InvalidId(TABLE.len() as u8))
        );
    }

    #[test]
    fn from_symbol_resolves_known_and_rejects_unknown() {
        let n = Phoneme::from_symbol("n").unwrap();
        assert_eq!(n.symbol(), "n");
        assert!(n.is_consonant());
        assert!(!n.is_vowel());
        assert!(matches!(
            Phoneme::from_symbol("℗"),
            Err(PhonemeError::UnknownPhoneme(_))
        ));
    }

    #[test]
    fn display_and_debug_render_symbol() {
        let a = Phoneme::from_symbol("aː").unwrap();
        assert_eq!(a.to_string(), "aː");
        assert_eq!(format!("{a:?}"), "/aː/");
        assert!(a.is_vowel());
    }

    #[test]
    fn phoneme_is_one_byte() {
        assert_eq!(std::mem::size_of::<Phoneme>(), 1);
    }
}
