//! IPA phoneme inventory, articulatory features, and phoneme clustering.
//!
//! This crate is the foundation of the LexEQUAL multiscript matching stack
//! (Kumaran & Haritsa, EDBT 2004). LexEQUAL matches proper names across
//! scripts by transforming each string into the *phoneme space* and comparing
//! there; everything in that pipeline manipulates the types defined here:
//!
//! * [`Phoneme`] — a single segmental IPA phoneme, a compact handle into the
//!   static [`inventory`].
//! * [`PhonemeString`] — a sequence of phonemes, the unit of comparison.
//! * [`features`] — articulatory feature descriptions (place, manner,
//!   voicing, vowel height/backness) used to derive phoneme similarity.
//! * [`ClusterTable`] — a partition of the inventory into clusters of
//!   *like phonemes*, generalizing Soundex groups to the full IPA segment
//!   set (after Mareuil et al., "Multilingual Automatic Phoneme
//!   Clustering"). The intra-cluster substitution cost parameter of the
//!   LexEQUAL clustered edit distance is defined with respect to such a
//!   table, and the phonetic index derives its *grouped phoneme string
//!   identifier* from it.
//!
//! The inventory covers the segments needed for English, Hindi, Tamil,
//! Greek, French and Spanish — the languages appearing in the paper's
//! running example (Figure 1) and evaluation corpus.
//!
//! # Example
//!
//! ```
//! use lexequal_phoneme::{PhonemeString, ClusterTable};
//!
//! let neru: PhonemeString = "neɪru".parse().unwrap();
//! assert_eq!(neru.len(), 5);
//! assert_eq!(neru.to_string(), "neɪru");
//!
//! let clusters = ClusterTable::standard();
//! // /n/ and /m/ are both nasals: same cluster.
//! let n = "n".parse::<PhonemeString>().unwrap()[0];
//! let m = "m".parse::<PhonemeString>().unwrap()[0];
//! assert_eq!(clusters.cluster_of(n), clusters.cluster_of(m));
//! ```

pub mod bytes;
pub mod cluster;
pub mod error;
pub mod features;
pub mod inventory;
pub mod parse;
pub mod phoneme;
pub mod string;

pub use bytes::{ByteOwner, Bytes, SharedBytes};
pub use cluster::{ClusterId, ClusterTable};
pub use error::PhonemeError;
pub use features::{Backness, Height, Length, Manner, Place, Roundedness, SegmentKind, Voicing};
pub use inventory::{Inventory, PhonemeDescriptor};
pub use phoneme::Phoneme;
pub use string::PhonemeString;
