//! Error type for phoneme parsing and lookup.

use std::fmt;

/// Errors raised while parsing IPA text or looking up phonemes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhonemeError {
    /// The input contained a character sequence that does not start any
    /// phoneme symbol in the inventory. Carries the byte offset and the
    /// offending remainder (truncated).
    UnknownSymbol {
        /// Byte offset into the original input where tokenization failed.
        offset: usize,
        /// A short prefix of the unrecognized remainder, for diagnostics.
        fragment: String,
    },
    /// A phoneme id was out of range for the static inventory.
    InvalidId(u8),
    /// A cluster table customization referenced a phoneme not in the
    /// inventory.
    UnknownPhoneme(String),
}

impl fmt::Display for PhonemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhonemeError::UnknownSymbol { offset, fragment } => write!(
                f,
                "unknown IPA symbol at byte offset {offset}: {fragment:?}"
            ),
            PhonemeError::InvalidId(id) => write!(f, "invalid phoneme id {id}"),
            PhonemeError::UnknownPhoneme(sym) => {
                write!(f, "phoneme {sym:?} is not in the inventory")
            }
        }
    }
}

impl std::error::Error for PhonemeError {}
