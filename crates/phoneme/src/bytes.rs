//! Borrowed-or-owned byte storage for zero-copy corpora.
//!
//! The memory-mapped snapshot format serves phoneme strings and
//! cluster-id vectors *directly out of the mapping*: the store holds
//! views into one shared allocation (the `mmap`ed file, or the raw
//! snapshot transfer buffer on a replica) instead of one heap `Vec`
//! per entry. [`SharedBytes`] is that view — an `Arc`-owned immutable
//! byte region plus a pre-resolved `(ptr, len)` window into it — and
//! [`Bytes`] is the two-faced storage the store actually keeps:
//! `Owned` for wire-`ADD`ed tails, `Shared` for loaded corpora.
//!
//! Both faces expose exactly one thing, `as_slice(&self) -> &[u8]`,
//! so the verification kernel and the access paths never know which
//! face they are reading.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The owner trait object behind a [`SharedBytes`] view: any stable,
/// immutable byte region — an mmap, a `Vec<u8>`, a boxed slice.
pub type ByteOwner = dyn AsRef<[u8]> + Send + Sync;

/// An immutable window into a shared byte allocation.
///
/// Cloning is an `Arc` bump; the bytes are never copied. The `ptr`
/// and `len` are resolved once at construction so reads skip the
/// vtable call on the owner.
pub struct SharedBytes {
    owner: Arc<ByteOwner>,
    ptr: *const u8,
    len: usize,
}

// SAFETY: the owner is `Send + Sync` and the region it exposes is
// immutable for the owner's lifetime (`AsRef<[u8]>` on a stable
// allocation); `ptr` is derived from that region and outlived by the
// `Arc` we hold, so sharing the view across threads is sound.
unsafe impl Send for SharedBytes {}
unsafe impl Sync for SharedBytes {}

impl SharedBytes {
    /// View `owner[offset..offset + len]`. Returns `None` when the
    /// window falls outside the owner's region.
    pub fn new(owner: Arc<ByteOwner>, offset: usize, len: usize) -> Option<Self> {
        let region: &[u8] = (*owner).as_ref();
        let end = offset.checked_add(len)?;
        if end > region.len() {
            return None;
        }
        let ptr = region[offset..end].as_ptr();
        Some(SharedBytes { owner, ptr, len })
    }

    /// View the owner's whole region.
    pub fn whole(owner: Arc<ByteOwner>) -> Self {
        let region: &[u8] = (*owner).as_ref();
        let (ptr, len) = (region.as_ptr(), region.len());
        SharedBytes { owner, ptr, len }
    }

    /// A sub-window of this view (same owner, no copy).
    pub fn slice(&self, offset: usize, len: usize) -> Option<Self> {
        let end = offset.checked_add(len)?;
        if end > self.len {
            return None;
        }
        Some(SharedBytes {
            owner: Arc::clone(&self.owner),
            // SAFETY: `offset <= end <= self.len`, so the new pointer
            // stays inside the window established at construction.
            ptr: unsafe { self.ptr.add(offset) },
            len,
        })
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: `ptr`/`len` were validated against the owner's
        // region at construction and the owner is immutable and kept
        // alive by our `Arc`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Window length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Clone for SharedBytes {
    fn clone(&self) -> Self {
        SharedBytes {
            owner: Arc::clone(&self.owner),
            ptr: self.ptr,
            len: self.len,
        }
    }
}

impl AsRef<[u8]> for SharedBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharedBytes({} bytes)", self.len)
    }
}

/// Byte storage that is either an owned heap buffer or a borrowed
/// view into a shared allocation. Equality, ordering and hashing are
/// over the byte content, never the representation.
#[derive(Clone, Debug)]
pub enum Bytes {
    /// A private heap allocation (wire-`ADD`ed entries, G2P output).
    Owned(Vec<u8>),
    /// A view into a shared allocation (mmap-loaded corpora).
    Shared(SharedBytes),
}

impl Bytes {
    /// The stored bytes, whichever face holds them.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Bytes::Owned(v) => v.as_slice(),
            Bytes::Shared(s) => s.as_slice(),
        }
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Bytes::Owned(v) => v.len(),
            Bytes::Shared(s) => s.len(),
        }
    }

    /// Whether the storage is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a byte, converting a shared view into an owned buffer
    /// first (copy-on-write; loaded corpora are immutable, so in
    /// practice only owned tails are ever pushed to).
    pub fn push(&mut self, b: u8) {
        self.make_owned().push(b);
    }

    /// The owned buffer, converting from a shared view if needed.
    fn make_owned(&mut self) -> &mut Vec<u8> {
        if let Bytes::Shared(s) = self {
            *self = Bytes::Owned(s.as_slice().to_vec());
        }
        match self {
            Bytes::Owned(v) => v,
            Bytes::Shared(_) => unreachable!("just converted"),
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::Owned(Vec::new())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::Owned(v)
    }
}

impl From<SharedBytes> for Bytes {
    fn from(s: SharedBytes) -> Self {
        Bytes::Shared(s)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Matches `Vec<u8>`'s slice hash so either face of equal
        // content lands in the same bucket.
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_window_bounds_are_enforced() {
        let owner: Arc<ByteOwner> = Arc::new(vec![1u8, 2, 3, 4, 5]);
        let whole = SharedBytes::whole(Arc::clone(&owner));
        assert_eq!(whole.as_slice(), &[1, 2, 3, 4, 5]);
        let mid = SharedBytes::new(Arc::clone(&owner), 1, 3).unwrap();
        assert_eq!(mid.as_slice(), &[2, 3, 4]);
        assert!(SharedBytes::new(Arc::clone(&owner), 3, 3).is_none());
        assert!(SharedBytes::new(Arc::clone(&owner), usize::MAX, 2).is_none());
        // Sub-windows re-validate against the parent window, not the owner.
        assert_eq!(mid.slice(1, 2).unwrap().as_slice(), &[3, 4]);
        assert!(mid.slice(2, 2).is_none());
    }

    #[test]
    fn faces_compare_and_hash_by_content() {
        use std::collections::hash_map::DefaultHasher;
        let owner: Arc<ByteOwner> = Arc::new(vec![9u8, 8, 7]);
        let shared = Bytes::from(SharedBytes::whole(owner));
        let owned = Bytes::from(vec![9u8, 8, 7]);
        assert_eq!(shared, owned);
        assert_eq!(shared.cmp(&owned), std::cmp::Ordering::Equal);
        let h = |b: &Bytes| {
            let mut s = DefaultHasher::new();
            b.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&shared), h(&owned));
    }

    #[test]
    fn push_converts_shared_to_owned() {
        let owner: Arc<ByteOwner> = Arc::new(vec![1u8, 2]);
        let mut b = Bytes::from(SharedBytes::whole(owner));
        b.push(3);
        assert_eq!(b.as_slice(), &[1, 2, 3]);
        assert!(matches!(b, Bytes::Owned(_)));
    }

    #[test]
    fn clone_is_view_not_copy() {
        let owner: Arc<ByteOwner> = Arc::new(vec![0u8; 64]);
        let a = SharedBytes::whole(owner);
        let b = a.clone();
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }
}
