//! Myers' bit-parallel Levenshtein distance (64-bit word).
//!
//! Computes the *unit-cost* edit distance between a pattern of at most 64
//! symbols and an arbitrary-length text in O(|text|) word operations
//! (Myers, JACM 1999). Symbols are `u8` identifiers — phoneme ids or
//! cluster ids in the LexEQUAL stack — so the per-symbol match bitmask
//! table (`peq`) is a flat 256-entry array built once per pattern.
//!
//! The verification kernel uses this as a two-sided *exact screen* around
//! the clustered DP (see `lexequal-core`'s `verify` module):
//!
//! * **fast-accept** — clustered distance ≤ Levenshtein distance (indels
//!   cost 1 on both sides, clustered substitutions cost ≤ 1), so
//!   `myers(a, b) ≤ k` proves the clustered predicate holds;
//! * **fast-reject** — every clustered edit op costs at least the unit op
//!   it induces on the cluster-id strings (intra-cluster substitutions
//!   become matches, cross-cluster substitutions and indels become unit
//!   ops), so `myers(cluster(a), cluster(b)) > k` proves it fails.

/// A pattern preprocessed for bit-parallel distance computations.
///
/// Construction is O(|pattern|) plus zeroing the 256-entry mask table;
/// each subsequent [`distance`](MyersPattern::distance) call is
/// allocation-free and O(|text|).
pub struct MyersPattern {
    /// `peq[s]` bit `i` is set iff `pattern[i] == s`.
    peq: Box<[u64; 256]>,
    len: usize,
}

impl MyersPattern {
    /// Maximum pattern length the single-word formulation supports.
    pub const MAX_LEN: usize = 64;

    /// Preprocess `pattern`. Returns `None` when the pattern is empty or
    /// longer than [`MAX_LEN`](Self::MAX_LEN) symbols; callers fall back
    /// to the DP in those cases.
    pub fn build(pattern: impl IntoIterator<Item = u8>) -> Option<MyersPattern> {
        let mut peq = Box::new([0u64; 256]);
        let mut len = 0usize;
        for sym in pattern {
            if len == Self::MAX_LEN {
                return None;
            }
            peq[sym as usize] |= 1u64 << len;
            len += 1;
        }
        if len == 0 {
            return None;
        }
        Some(MyersPattern { peq, len })
    }

    /// Pattern length in symbols (1..=64).
    pub fn len(&self) -> usize {
        self.len
    }

    /// The per-symbol match-bitmask table (shared by the interleaved
    /// multi-lane form in [`crate::myers_batch`]).
    pub(crate) fn peq(&self) -> &[u64; 256] {
        &self.peq
    }

    /// Whether the pattern is empty — never true for a built pattern.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exact Levenshtein distance between the pattern and `text`.
    ///
    /// `text` may be any length; the score column is maintained in two
    /// machine words (`pv`/`mv`) and updated once per text symbol.
    pub fn distance(&self, text: impl IntoIterator<Item = u8>) -> usize {
        let m = self.len;
        let mut pv = !0u64; // all positions start at +1 per row
        let mut mv = 0u64;
        let mut score = m;
        let high = 1u64 << (m - 1);
        for sym in text {
            let eq = self.peq[sym as usize];
            let xv = eq | mv;
            let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
            let ph = mv | !(xh | pv);
            let mh = pv & xh;
            if ph & high != 0 {
                score += 1;
            }
            if mh & high != 0 {
                score -= 1;
            }
            let ph = (ph << 1) | 1;
            let mh = mh << 1;
            pv = mh | !(xv | ph);
            mv = ph & xv;
        }
        score
    }
}

impl std::fmt::Debug for MyersPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MyersPattern")
            .field("len", &self.len)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UnitCost;
    use crate::distance::edit_distance;

    fn reference(a: &[u8], b: &[u8]) -> usize {
        edit_distance(a, b, UnitCost) as usize
    }

    fn myers(a: &[u8], b: &[u8]) -> usize {
        MyersPattern::build(a.iter().copied())
            .expect("non-empty pattern")
            .distance(b.iter().copied())
    }

    #[test]
    fn classic_cases() {
        assert_eq!(myers(b"kitten", b"sitting"), 3);
        assert_eq!(myers(b"flaw", b"lawn"), 2);
        assert_eq!(myers(b"same", b"same"), 0);
        assert_eq!(myers(b"abc", b""), 3);
        assert_eq!(myers(b"a", b"abcdef"), 5);
    }

    #[test]
    fn empty_and_oversized_patterns_are_rejected() {
        assert!(MyersPattern::build(std::iter::empty()).is_none());
        assert!(MyersPattern::build((0..=64).map(|_| 7u8)).is_none());
        assert!(MyersPattern::build((0..64).map(|_| 7u8)).is_some());
    }

    #[test]
    fn full_word_pattern() {
        // Exactly 64 symbols exercises the high-bit bookkeeping.
        let a: Vec<u8> = (0..64).map(|i| (i % 5) as u8).collect();
        let mut b = a.clone();
        b[10] = 99;
        b.remove(40);
        assert_eq!(myers(&a, &b), reference(&a, &b));
        assert_eq!(myers(&a, &a), 0);
    }

    #[test]
    fn agrees_with_dp_on_deterministic_corpus() {
        // xorshift-generated strings: no external dependency, fixed seed.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut strings: Vec<Vec<u8>> = Vec::new();
        for _ in 0..60 {
            let len = (next() % 65) as usize;
            strings.push((0..len).map(|_| (next() % 6) as u8).collect());
        }
        for a in &strings {
            let Some(pat) = MyersPattern::build(a.iter().copied()) else {
                continue; // empty pattern
            };
            for b in &strings {
                assert_eq!(
                    pat.distance(b.iter().copied()),
                    reference(a, b),
                    "a={a:?} b={b:?}"
                );
            }
        }
    }

    #[cfg(feature = "property-tests")]
    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Myers == classic Levenshtein for all patterns up to 64 symbols.
            #[test]
            fn myers_equals_levenshtein(
                a in proptest::collection::vec(0u8..8, 1..=64),
                b in proptest::collection::vec(0u8..8, 0..=80)
            ) {
                prop_assert_eq!(myers(&a, &b), reference(&a, &b));
            }
        }
    }
}
