//! Damerau extension: adjacent transpositions as a fourth edit operation.
//!
//! The paper notes its DP formulation was chosen "for its flexibility in
//! simulating a wide range of different edit distances by appropriate
//! parameterization" (§2.3). Transpositions are the classic such
//! extension for *typing* errors — `Catyh` for `Cathy` is the paper's own
//! §2.3 example of an input-error variant — and cost a single operation
//! under Damerau semantics instead of two substitutions.
//!
//! This module implements the restricted (optimal-string-alignment)
//! variant: each substring may participate in at most one transposition.
//! OSA does not satisfy the triangle inequality, so it must not be used
//! as a BK-tree metric; the q-gram filters remain valid because OSA never
//! exceeds plain Levenshtein.

use crate::cost::CostModel;

/// Edit distance with substitutions, indels and adjacent transpositions
/// (restricted Damerau / optimal string alignment). Transpositions cost
/// `transposition_cost`; other operations come from `model`.
pub fn damerau_distance<T: PartialEq, M: CostModel<T>>(
    left: &[T],
    right: &[T],
    model: M,
    transposition_cost: f64,
) -> f64 {
    let (n, m) = (left.len(), right.len());
    // Full matrix: the transposition case needs D[i-2][j-2].
    let mut d = vec![vec![0.0f64; m + 1]; n + 1];
    for i in 1..=n {
        d[i][0] = d[i - 1][0] + model.del(&left[i - 1]);
    }
    for j in 1..=m {
        d[0][j] = d[0][j - 1] + model.ins(&right[j - 1]);
    }
    for i in 1..=n {
        for j in 1..=m {
            let mut best = d[i - 1][j - 1] + model.sub(&left[i - 1], &right[j - 1]);
            best = best.min(d[i][j - 1] + model.ins(&right[j - 1]));
            best = best.min(d[i - 1][j] + model.del(&left[i - 1]));
            if i > 1
                && j > 1
                && left[i - 1] == right[j - 2]
                && left[i - 2] == right[j - 1]
                && left[i - 1] != left[i - 2]
            {
                best = best.min(d[i - 2][j - 2] + transposition_cost);
            }
            d[i][j] = best;
        }
    }
    d[n][m]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UnitCost;
    use crate::distance::edit_distance;

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    fn dd(a: &str, b: &str) -> f64 {
        damerau_distance(&chars(a), &chars(b), UnitCost, 1.0)
    }

    #[test]
    fn the_papers_catyh_example() {
        // "variants due to input errors, such as Catyh" (§2.3):
        // one transposition under Damerau, two ops under Levenshtein.
        assert_eq!(dd("cathy", "catyh"), 1.0);
        let lev = edit_distance(&chars("cathy"), &chars("catyh"), UnitCost);
        assert_eq!(lev, 2.0);
    }

    #[test]
    fn classic_cases() {
        assert_eq!(dd("ca", "ac"), 1.0);
        assert_eq!(dd("abc", "acb"), 1.0);
        assert_eq!(dd("", "ab"), 2.0);
        assert_eq!(dd("same", "same"), 0.0);
        // A transposition of equal symbols is not a transposition.
        assert_eq!(dd("aa", "aa"), 0.0);
    }

    #[test]
    fn transposition_cost_is_tunable() {
        let half = damerau_distance(&chars("cathy"), &chars("catyh"), UnitCost, 0.5);
        assert_eq!(half, 0.5);
        // Expensive transpositions fall back to substitution pairs.
        let expensive = damerau_distance(&chars("ca"), &chars("ac"), UnitCost, 5.0);
        assert_eq!(expensive, 2.0);
    }

    #[cfg(feature = "property-tests")]
    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Damerau never exceeds Levenshtein (a transposition is also two
            /// substitutions), and equals it when transpositions cost 2.
            #[test]
            fn bounded_by_levenshtein(a in "[a-d]{0,10}", b in "[a-d]{0,10}") {
                let av = chars(&a);
                let bv = chars(&b);
                let lev = edit_distance(&av, &bv, UnitCost);
                let dam = damerau_distance(&av, &bv, UnitCost, 1.0);
                prop_assert!(dam <= lev + 1e-12);
                let dam2 = damerau_distance(&av, &bv, UnitCost, 2.0);
                prop_assert!((dam2 - lev).abs() < 1e-9);
            }

            #[test]
            fn symmetric(a in "[a-d]{0,10}", b in "[a-d]{0,10}") {
                let av = chars(&a);
                let bv = chars(&b);
                prop_assert_eq!(
                    damerau_distance(&av, &bv, UnitCost, 1.0),
                    damerau_distance(&bv, &av, UnitCost, 1.0)
                );
            }

            #[test]
            fn zero_iff_equal(a in "[a-d]{0,8}", b in "[a-d]{0,8}") {
                let d = dd(&a, &b);
                prop_assert_eq!(d == 0.0, a == b);
            }
        }
    }
}
