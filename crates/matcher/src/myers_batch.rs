//! Interleaved multi-lane Myers screens: one pattern, many texts.
//!
//! The scalar [`MyersPattern::distance`](crate::MyersPattern::distance)
//! recurrence is a single ~10-op dependency chain per text symbol — the
//! CPU retires it far below its issue width because every operation waits
//! on the previous one. Verification, however, screens *batches* of
//! independent candidates against the *same* query pattern, and their
//! recurrences do not depend on each other. This module runs up to
//! [`MAX_LANES`] texts through the recurrence in **lane blocks**: the
//! shared 256-entry `peq` mask table feeds 4 lanes held in one AVX2
//! register (2 per SSE2 register, 4 scalar registers as the portable
//! fallback), so every step advances a block of independent chains at
//! the core's issue width instead of one chain at its dependency depth.
//!
//! Exactness: the recurrence is pure 64-bit bitwise logic plus one
//! wrapping add, and the vector forms (`vpaddq`, `vpand`, `vpor`,
//! `vpxor`, `vpsllq`, `vpsrlq`) are all lane-wise — lane `l` performs
//! *exactly* the word operations the scalar `distance(texts[l])`
//! performs, in the same order, on the same state. The branchless score
//! update reads the same high bit the scalar branches on: `ph & high` is
//! either `0` or `1 << (m-1)`, so shifting it right by `m-1` adds the
//! same 0-or-1. The returned distances are therefore identical to the
//! scalar ones by construction (and pinned by the tests below across
//! every [`SimdLevel`]).

use crate::myers::MyersPattern;
use crate::simd::SimdLevel;

/// Maximum number of texts one blocked call processes. Chosen so a
/// batch keeps several independent blocks in flight while the lane
/// state stays in registers/L1.
pub const MAX_LANES: usize = 16;

/// Lanes per scalar register block. Four `(pv, mv)` state pairs plus
/// the recurrence temporaries fit x86-64's sixteen general registers;
/// wider scalar blocks spill lane state to the stack and reintroduce
/// the store-forwarding stalls blocking is meant to remove.
const BLOCK: usize = 4;

/// One lane-step of the Myers recurrence — the same word operations as
/// the loop body of the scalar [`MyersPattern::distance`]. The score
/// updates are branchless (`setcc`+`add` instead of branches): when
/// lanes interleave, the per-lane horizontal-delta patterns the branch
/// predictor tracks in the scalar loop get shuffled together, and the
/// resulting mispredictions would cost more than both updates.
#[inline(always)]
fn step_lane(peq: &[u64; 256], high: u64, sym: u8, pv: &mut u64, mv: &mut u64, score: &mut usize) {
    let eq = peq[sym as usize];
    let xv = eq | *mv;
    let xh = (((eq & *pv).wrapping_add(*pv)) ^ *pv) | eq;
    let ph = *mv | !(xh | *pv);
    let mh = *pv & xh;
    *score += usize::from(ph & high != 0);
    *score -= usize::from(mh & high != 0);
    let ph = (ph << 1) | 1;
    let mh = mh << 1;
    *pv = mh | !(xv | ph);
    *mv = ph & xv;
}

/// Finish `texts[l][common..]` tails one lane at a time from extracted
/// block state — shared by every block kernel.
#[inline(always)]
fn finish_tails<const W: usize>(
    peq: &[u64; 256],
    high: u64,
    common: usize,
    texts: &[&[u8]; W],
    pv: [u64; W],
    mv: [u64; W],
    mut score: [usize; W],
) -> [usize; W] {
    let mut pv = pv;
    let mut mv = mv;
    for l in 0..W {
        for &sym in &texts[l][common..] {
            step_lane(peq, high, sym, &mut pv[l], &mut mv[l], &mut score[l]);
        }
    }
    score
}

/// Advance one scalar register block of [`BLOCK`] lanes to completion:
/// the common prefix interleaved (four independent recurrence chains in
/// flight per iteration), then each lane's tail.
#[inline]
fn run_block(peq: &[u64; 256], high: u64, m: usize, texts: [&[u8]; BLOCK]) -> [usize; BLOCK] {
    // Plain scalar locals per lane (not a state array): element
    // references like `&mut pv[l]` would keep the state addressable and
    // block scalar replacement.
    let (mut pv0, mut pv1, mut pv2, mut pv3) = (!0u64, !0u64, !0u64, !0u64);
    let (mut mv0, mut mv1, mut mv2, mut mv3) = (0u64, 0u64, 0u64, 0u64);
    let (mut sc0, mut sc1, mut sc2, mut sc3) = (m, m, m, m);
    let common = texts.iter().map(|t| t.len()).min().unwrap_or(0);
    // Zipped equal-length prefixes: no per-step bounds checks; each
    // iteration issues four independent recurrence chains.
    let zipped = texts[0][..common]
        .iter()
        .zip(&texts[1][..common])
        .zip(&texts[2][..common])
        .zip(&texts[3][..common]);
    for (((&s0, &s1), &s2), &s3) in zipped {
        step_lane(peq, high, s0, &mut pv0, &mut mv0, &mut sc0);
        step_lane(peq, high, s1, &mut pv1, &mut mv1, &mut sc1);
        step_lane(peq, high, s2, &mut pv2, &mut mv2, &mut sc2);
        step_lane(peq, high, s3, &mut pv3, &mut mv3, &mut sc3);
    }
    finish_tails(
        peq,
        high,
        common,
        &texts,
        [pv0, pv1, pv2, pv3],
        [mv0, mv1, mv2, mv3],
        [sc0, sc1, sc2, sc3],
    )
}

/// Four lanes in one AVX2 register: `pv`/`mv`/`score` are `4 × u64`
/// vectors and every recurrence op is the lane-wise vector form of the
/// scalar one, so each lane's words are bit-identical to the scalar
/// chain. The per-step `peq` feeds come from four scalar loads (the
/// table is shared, only the indices differ per lane).
///
/// # Safety
///
/// Requires AVX2 (callers dispatch on [`SimdLevel::Avx2`], which
/// [`crate::detect_simd_level`] only reports on AVX2 hardware).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn run_block_avx2(peq: &[u64; 256], high: u64, m: usize, texts: [&[u8]; 4]) -> [usize; 4] {
    use std::arch::x86_64::*;
    let common = texts.iter().map(|t| t.len()).min().unwrap_or(0);
    let (t0, t1) = (&texts[0][..common], &texts[1][..common]);
    let (t2, t3) = (&texts[2][..common], &texts[3][..common]);
    let mut pv = _mm256_set1_epi64x(-1);
    let mut mv = _mm256_setzero_si256();
    let mut score = _mm256_set1_epi64x(m as i64);
    let ones = _mm256_set1_epi64x(1);
    let all = _mm256_set1_epi64x(-1);
    let highv = _mm256_set1_epi64x(high as i64);
    // `_mm256_srl_epi64` takes its count from an XMM register, so the
    // pattern-length shift stays loop-invariant.
    let shift = _mm_cvtsi32_si128((m - 1) as i32);
    for step in 0..common {
        let eq = _mm256_set_epi64x(
            peq[t3[step] as usize] as i64,
            peq[t2[step] as usize] as i64,
            peq[t1[step] as usize] as i64,
            peq[t0[step] as usize] as i64,
        );
        let xv = _mm256_or_si256(eq, mv);
        let add = _mm256_add_epi64(_mm256_and_si256(eq, pv), pv);
        let xh = _mm256_or_si256(_mm256_xor_si256(add, pv), eq);
        // `!x` is `x ^ !0` lane-wise.
        let ph = _mm256_or_si256(mv, _mm256_xor_si256(_mm256_or_si256(xh, pv), all));
        let mh = _mm256_and_si256(pv, xh);
        // score ± the high bit, shifted down to 0-or-1.
        score = _mm256_add_epi64(score, _mm256_srl_epi64(_mm256_and_si256(ph, highv), shift));
        score = _mm256_sub_epi64(score, _mm256_srl_epi64(_mm256_and_si256(mh, highv), shift));
        let ph = _mm256_or_si256(_mm256_slli_epi64(ph, 1), ones);
        let mh = _mm256_slli_epi64(mh, 1);
        pv = _mm256_or_si256(mh, _mm256_xor_si256(_mm256_or_si256(xv, ph), all));
        mv = _mm256_and_si256(ph, xv);
    }
    let mut pvs = [0u64; 4];
    let mut mvs = [0u64; 4];
    let mut scs = [0u64; 4];
    _mm256_storeu_si256(pvs.as_mut_ptr().cast(), pv);
    _mm256_storeu_si256(mvs.as_mut_ptr().cast(), mv);
    _mm256_storeu_si256(scs.as_mut_ptr().cast(), score);
    finish_tails(
        peq,
        high,
        common,
        &texts,
        pvs,
        mvs,
        [
            scs[0] as usize,
            scs[1] as usize,
            scs[2] as usize,
            scs[3] as usize,
        ],
    )
}

/// Two lanes in one SSE2 register — the x86-64 baseline form of
/// [`run_block_avx2`], same lane-wise ops, same exactness argument.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
fn run_block_sse2(peq: &[u64; 256], high: u64, m: usize, texts: [&[u8]; 2]) -> [usize; 2] {
    use std::arch::x86_64::*;
    // SSE2 is unconditionally part of the x86-64 baseline, so callers
    // need no runtime gate and no `unsafe` feature promise.
    let common = texts[0].len().min(texts[1].len());
    let (t0, t1) = (&texts[0][..common], &texts[1][..common]);
    let mut pv = _mm_set1_epi64x(-1);
    let mut mv = _mm_setzero_si128();
    let mut score = _mm_set1_epi64x(m as i64);
    let ones = _mm_set1_epi64x(1);
    let all = _mm_set1_epi64x(-1);
    let highv = _mm_set1_epi64x(high as i64);
    let shift = _mm_cvtsi32_si128((m - 1) as i32);
    for step in 0..common {
        let eq = _mm_set_epi64x(peq[t1[step] as usize] as i64, peq[t0[step] as usize] as i64);
        let xv = _mm_or_si128(eq, mv);
        let add = _mm_add_epi64(_mm_and_si128(eq, pv), pv);
        let xh = _mm_or_si128(_mm_xor_si128(add, pv), eq);
        let ph = _mm_or_si128(mv, _mm_xor_si128(_mm_or_si128(xh, pv), all));
        let mh = _mm_and_si128(pv, xh);
        score = _mm_add_epi64(score, _mm_srl_epi64(_mm_and_si128(ph, highv), shift));
        score = _mm_sub_epi64(score, _mm_srl_epi64(_mm_and_si128(mh, highv), shift));
        let ph = _mm_or_si128(_mm_slli_epi64(ph, 1), ones);
        let mh = _mm_slli_epi64(mh, 1);
        pv = _mm_or_si128(mh, _mm_xor_si128(_mm_or_si128(xv, ph), all));
        mv = _mm_and_si128(ph, xv);
    }
    let mut pvs = [0u64; 2];
    let mut mvs = [0u64; 2];
    let mut scs = [0u64; 2];
    unsafe {
        _mm_storeu_si128(pvs.as_mut_ptr().cast(), pv);
        _mm_storeu_si128(mvs.as_mut_ptr().cast(), mv);
        _mm_storeu_si128(scs.as_mut_ptr().cast(), score);
    }
    finish_tails(
        peq,
        high,
        common,
        &texts,
        pvs,
        mvs,
        [scs[0] as usize, scs[1] as usize],
    )
}

impl MyersPattern {
    /// Exact Levenshtein distance between the pattern and each of
    /// `texts`, computed in interleaved lane blocks on the requested
    /// backend; `out[l]` receives `self.distance(texts[l])` bit-for-bit
    /// regardless of `level`.
    ///
    /// # Panics
    ///
    /// Panics when `texts.len() > MAX_LANES` or `out` is shorter than
    /// `texts`.
    pub fn distance_batch(&self, texts: &[&[u8]], out: &mut [usize], level: SimdLevel) {
        let w = texts.len();
        assert!(w <= MAX_LANES, "at most {MAX_LANES} lanes per call");
        assert!(out.len() >= w, "out must hold one distance per text");
        let m = self.len();
        let high = 1u64 << (m - 1);
        let peq = self.peq();
        let mut l = 0;
        #[cfg(target_arch = "x86_64")]
        {
            if level == SimdLevel::Avx2 {
                while l + 4 <= w {
                    let block = [texts[l], texts[l + 1], texts[l + 2], texts[l + 3]];
                    // SAFETY: the Avx2 level is only dispatched on CPUs
                    // that report AVX2 (see `detect_simd_level`).
                    let scores = unsafe { run_block_avx2(peq, high, m, block) };
                    out[l..l + 4].copy_from_slice(&scores);
                    l += 4;
                }
            }
            if level != SimdLevel::Scalar {
                // AVX2 leftovers (< 4 lanes) and the whole SSE2 level
                // drain through the 2-lane baseline kernel.
                while l + 2 <= w {
                    // SAFETY: SSE2 is part of the x86-64 baseline.
                    let scores = unsafe { run_block_sse2(peq, high, m, [texts[l], texts[l + 1]]) };
                    out[l..l + 2].copy_from_slice(&scores);
                    l += 2;
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = level;
        if level == SimdLevel::Scalar {
            while l + BLOCK <= w {
                let block = [texts[l], texts[l + 1], texts[l + 2], texts[l + 3]];
                let scores = run_block(peq, high, m, block);
                out[l..l + BLOCK].copy_from_slice(&scores);
                l += BLOCK;
            }
        }
        // Leftover lanes run the scalar recurrence — same operations,
        // same results.
        for i in l..w {
            out[i] = self.distance(texts[i].iter().copied());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::available_simd_levels;

    fn xorshift(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed;
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        }
    }

    #[test]
    fn batch_equals_scalar_on_mixed_length_texts() {
        let mut next = xorshift(0xbadc_0001);
        let strings: Vec<Vec<u8>> = (0..48)
            .map(|_| {
                let len = (next() % 80) as usize;
                (0..len).map(|_| (next() % 7) as u8).collect()
            })
            .collect();
        for plen in [1usize, 5, 31, 64] {
            let pattern: Vec<u8> = (0..plen).map(|_| (next() % 7) as u8).collect();
            let pat = MyersPattern::build(pattern.iter().copied()).unwrap();
            for level in available_simd_levels() {
                for width in 1..=MAX_LANES {
                    for chunk in strings.chunks(width) {
                        let texts: Vec<&[u8]> = chunk.iter().map(Vec::as_slice).collect();
                        let mut out = [0usize; MAX_LANES];
                        pat.distance_batch(&texts, &mut out, level);
                        for (l, t) in texts.iter().enumerate() {
                            assert_eq!(
                                out[l],
                                pat.distance(t.iter().copied()),
                                "plen={plen} level={level} width={width} lane={l}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_texts_and_empty_batches() {
        let pat = MyersPattern::build([1u8, 2, 3]).unwrap();
        for level in available_simd_levels() {
            let mut out = [99usize; MAX_LANES];
            pat.distance_batch(&[], &mut out, level);
            assert_eq!(out[0], 99, "empty batch writes nothing");
            let texts: [&[u8]; 4] = [&[], b"\x01\x02\x03", &[], b"\x01\x02\x03"];
            pat.distance_batch(&texts, &mut out, level);
            assert_eq!(out[0], 3, "empty text costs the whole pattern");
            assert_eq!(out[1], 0);
            assert_eq!(out[2], 3);
            assert_eq!(out[3], 0);
        }
    }

    #[test]
    #[should_panic(expected = "lanes per call")]
    fn oversized_batch_panics() {
        let pat = MyersPattern::build([1u8]).unwrap();
        let texts = [b"\x01".as_slice(); MAX_LANES + 1];
        let mut out = [0usize; MAX_LANES + 1];
        pat.distance_batch(&texts, &mut out, SimdLevel::Scalar);
    }
}
