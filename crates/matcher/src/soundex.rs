//! The classical Soundex code (Knuth, TAOCP vol. 3).
//!
//! Soundex is the pseudo-phonetic matcher most database systems ship
//! (paper §2.2); it serves as the historical baseline that LexEQUAL's
//! clustered edit distance generalizes. Letters are mapped to digit groups,
//! adjacent duplicates collapsed, vowels dropped, and the result truncated
//! and zero-padded to one letter plus three digits.

/// Soundex digit for an ASCII letter, or `None` for vowels and the
/// ignorable letters h/w/y.
fn digit(c: char) -> Option<u8> {
    match c.to_ascii_lowercase() {
        'b' | 'f' | 'p' | 'v' => Some(1),
        'c' | 'g' | 'j' | 'k' | 'q' | 's' | 'x' | 'z' => Some(2),
        'd' | 't' => Some(3),
        'l' => Some(4),
        'm' | 'n' => Some(5),
        'r' => Some(6),
        _ => None,
    }
}

/// Whether a letter separates equal codes (vowels do, h/w do not).
fn is_separator(c: char) -> bool {
    matches!(c.to_ascii_lowercase(), 'a' | 'e' | 'i' | 'o' | 'u' | 'y')
}

/// Compute the 4-character Soundex code of `name`.
///
/// Non-ASCII-alphabetic characters are skipped. Returns `None` when the
/// input contains no ASCII letter at all (e.g. a name written in an Indic
/// script — exactly the case motivating LexEQUAL).
pub fn soundex(name: &str) -> Option<String> {
    let mut letters = name.chars().filter(|c| c.is_ascii_alphabetic());
    let first = letters.next()?;
    let mut code = String::with_capacity(4);
    code.push(first.to_ascii_uppercase());

    let mut last_digit = digit(first);
    for c in letters {
        if code.len() == 4 {
            break;
        }
        match digit(c) {
            Some(d) => {
                if last_digit != Some(d) {
                    code.push(char::from(b'0' + d));
                }
                last_digit = Some(d);
            }
            None => {
                if is_separator(c) {
                    last_digit = None;
                }
                // h/w are transparent: last_digit is kept.
            }
        }
    }
    while code.len() < 4 {
        code.push('0');
    }
    Some(code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knuth_reference_codes() {
        assert_eq!(soundex("Robert").as_deref(), Some("R163"));
        assert_eq!(soundex("Rupert").as_deref(), Some("R163"));
        assert_eq!(soundex("Ashcraft").as_deref(), Some("A261"));
        assert_eq!(soundex("Ashcroft").as_deref(), Some("A261"));
        assert_eq!(soundex("Tymczak").as_deref(), Some("T522"));
        // p and f share code 1 and are adjacent, so f merges into P,
        // leaving s,t,r -> 2,3,6.
        assert_eq!(soundex("Pfister").as_deref(), Some("P236"));
        assert_eq!(soundex("Honeyman").as_deref(), Some("H555"));
    }

    #[test]
    fn like_sounding_names_share_codes() {
        assert_eq!(soundex("Nehru"), soundex("Neru"));
        assert_eq!(
            soundex("Cathy"),
            soundex("Kathy").map(|k| {
                // C and K map to the same digit but the *letter* differs —
                // classical Soundex keeps the first letter, so these differ.
                let mut c = k;
                c.replace_range(0..1, "C");
                c
            })
        );
        assert_eq!(soundex("Smith"), soundex("Smyth"));
    }

    #[test]
    fn short_names_are_zero_padded() {
        assert_eq!(soundex("Lee").as_deref(), Some("L000"));
        assert_eq!(soundex("A").as_deref(), Some("A000"));
    }

    #[test]
    fn non_latin_input_has_no_code() {
        assert_eq!(soundex("नेहरु"), None);
        assert_eq!(soundex("நேரு"), None);
        assert_eq!(soundex(""), None);
        assert_eq!(soundex("123"), None);
    }

    #[test]
    fn hw_transparent_vowels_separate() {
        // 'h' between same-coded letters: collapsed (Ashcraft case above);
        // vowel between same-coded letters: kept distinct.
        assert_eq!(soundex("bub").as_deref(), Some("B100")); // b..b separated by vowel -> B1..1?
    }
}
