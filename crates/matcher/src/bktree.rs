//! A Burkhard–Keller tree: a metric index over discrete distances.
//!
//! The paper's future-work section proposes "extending the approximate
//! indexing techniques [Baeza-Yates & Navarro; Chávez et al.] for creating
//! a metric index for phonemes". A BK-tree is the classic such structure:
//! it supports range queries `{x : d(x, query) ≤ k}` over any metric with
//! small integer values, probing only children whose edge distance lies in
//! `[d − k, d + k]` (justified by the triangle inequality).
//!
//! The tree stores arbitrary payloads alongside keys, so callers can index
//! row-ids by phoneme string.

/// A node: a key, its payloads (duplicate keys fold into one node), and
/// children indexed by distance-to-this-key.
struct Node<K, V> {
    key: K,
    values: Vec<V>,
    // Sparse child map: (distance, child index) pairs, kept sorted.
    children: Vec<(u32, usize)>,
}

/// A BK-tree over keys `K` with metric `dist`.
///
/// The metric must satisfy the usual axioms (identity, symmetry, triangle
/// inequality) for range queries to be exact; edit distance qualifies.
pub struct BkTree<K, V, D: Fn(&K, &K) -> u32> {
    nodes: Vec<Node<K, V>>,
    dist: D,
    len: usize,
}

impl<K, V, D: Fn(&K, &K) -> u32> BkTree<K, V, D> {
    /// Create an empty tree with the given metric.
    pub fn new(dist: D) -> Self {
        BkTree {
            nodes: Vec::new(),
            dist,
            len: 0,
        }
    }

    /// Number of (key, value) insertions performed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a key with a payload. Duplicate keys (distance 0) accumulate
    /// payloads on the existing node.
    pub fn insert(&mut self, key: K, value: V) {
        self.len += 1;
        if self.nodes.is_empty() {
            self.nodes.push(Node {
                key,
                values: vec![value],
                children: Vec::new(),
            });
            return;
        }
        let mut cur = 0usize;
        loop {
            let d = (self.dist)(&self.nodes[cur].key, &key);
            if d == 0 {
                self.nodes[cur].values.push(value);
                return;
            }
            match self.nodes[cur]
                .children
                .binary_search_by_key(&d, |&(dd, _)| dd)
            {
                Ok(pos) => {
                    cur = self.nodes[cur].children[pos].1;
                }
                Err(pos) => {
                    let idx = self.nodes.len();
                    self.nodes.push(Node {
                        key,
                        values: vec![value],
                        children: Vec::new(),
                    });
                    self.nodes[cur].children.insert(pos, (d, idx));
                    return;
                }
            }
        }
    }

    /// All `(key, value)` pairs whose key is within distance `k` of
    /// `query`, along with the distance. Order is unspecified.
    pub fn range(&self, query: &K, k: u32) -> Vec<(&K, &V, u32)> {
        let mut out = Vec::new();
        if self.nodes.is_empty() {
            return out;
        }
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            let node = &self.nodes[i];
            let d = (self.dist)(&node.key, query);
            if d <= k {
                for v in &node.values {
                    out.push((&node.key, v, d));
                }
            }
            let lo = d.saturating_sub(k);
            let hi = d.saturating_add(k);
            for &(cd, child) in &node.children {
                if cd >= lo && cd <= hi {
                    stack.push(child);
                }
            }
        }
        out
    }

    /// [`range`](Self::range) with an early-exit bounded metric.
    ///
    /// `bounded(a, b, bound)` must return `Some(d(a, b))` when
    /// `d(a, b) <= bound` and `None` otherwise — e.g.
    /// [`bounded_levenshtein`](crate::distance::bounded_levenshtein). Each
    /// node is probed with `bound = k + max(child edge distance)`: a `None`
    /// answer proves the node is not a hit *and* that no child edge lies in
    /// the `[d − k, d + k]` window, so the whole subtree is pruned without
    /// ever paying full-matrix cost. Results are identical to `range`.
    pub fn range_bounded<B>(&self, query: &K, k: u32, bounded: B) -> Vec<(&K, &V, u32)>
    where
        B: Fn(&K, &K, u32) -> Option<u32>,
    {
        let mut out = Vec::new();
        if self.nodes.is_empty() {
            return out;
        }
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            let node = &self.nodes[i];
            // Children are sorted by edge distance; the last entry is the
            // largest distance any probe window could need to cover.
            let max_edge = node.children.last().map_or(0, |&(cd, _)| cd);
            let Some(d) = bounded(&node.key, query, k.saturating_add(max_edge)) else {
                // d > k + max_edge: not a hit, and d − k exceeds every
                // child edge distance, so the window below is empty.
                continue;
            };
            if d <= k {
                for v in &node.values {
                    out.push((&node.key, v, d));
                }
            }
            let lo = d.saturating_sub(k);
            let hi = d.saturating_add(k);
            for &(cd, child) in &node.children {
                if cd >= lo && cd <= hi {
                    stack.push(child);
                }
            }
        }
        out
    }

    /// Number of metric evaluations a `range` query would perform —
    /// exposes pruning effectiveness for the benchmark suite.
    pub fn probe_count(&self, query: &K, k: u32) -> usize {
        if self.nodes.is_empty() {
            return 0;
        }
        let mut probes = 0usize;
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            let node = &self.nodes[i];
            probes += 1;
            let d = (self.dist)(&node.key, query);
            let lo = d.saturating_sub(k);
            let hi = d.saturating_add(k);
            for &(cd, child) in &node.children {
                if cd >= lo && cd <= hi {
                    stack.push(child);
                }
            }
        }
        probes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::levenshtein;

    fn tree_of(words: &[&str]) -> BkTree<String, usize, impl Fn(&String, &String) -> u32> {
        let mut t = BkTree::new(|a: &String, b: &String| levenshtein(a, b) as u32);
        for (i, w) in words.iter().enumerate() {
            t.insert((*w).to_owned(), i);
        }
        t
    }

    #[test]
    fn exact_lookup_distance_zero() {
        let t = tree_of(&["nehru", "neru", "nero", "gandhi"]);
        let hits = t.range(&"nehru".to_owned(), 0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, "nehru");
        assert_eq!(hits[0].2, 0);
    }

    #[test]
    fn range_query_finds_all_within_k() {
        let t = tree_of(&["nehru", "neru", "nero", "gandhi", "nefertiti"]);
        let mut hits: Vec<&str> = t
            .range(&"neru".to_owned(), 1)
            .into_iter()
            .map(|(k, _, _)| k.as_str())
            .collect();
        hits.sort_unstable();
        assert_eq!(hits, vec!["nehru", "nero", "neru"]);
    }

    #[test]
    fn duplicate_keys_accumulate_values() {
        let mut t = BkTree::new(|a: &String, b: &String| levenshtein(a, b) as u32);
        t.insert("neru".to_owned(), 1);
        t.insert("neru".to_owned(), 2);
        assert_eq!(t.len(), 2);
        let hits = t.range(&"neru".to_owned(), 0);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn empty_tree_behaviour() {
        let t: BkTree<String, (), _> =
            BkTree::new(|a: &String, b: &String| levenshtein(a, b) as u32);
        assert!(t.is_empty());
        assert!(t.range(&"x".to_owned(), 5).is_empty());
        assert_eq!(t.probe_count(&"x".to_owned(), 5), 0);
    }

    #[test]
    fn range_bounded_matches_range() {
        use crate::distance::bounded_levenshtein;
        let words: Vec<String> = (0..120)
            .map(|i| format!("entry{}{}", i % 11, "x".repeat(i % 7)))
            .chain(["nehru", "neru", "nero", "gandhi"].map(str::to_owned))
            .collect();
        let mut t = BkTree::new(|a: &String, b: &String| levenshtein(a, b) as u32);
        for (i, w) in words.iter().enumerate() {
            t.insert(w.clone(), i);
        }
        let bounded = |a: &String, b: &String, bound: u32| {
            let av: Vec<char> = a.chars().collect();
            let bv: Vec<char> = b.chars().collect();
            bounded_levenshtein(&av, &bv, bound)
        };
        for query in ["neru", "entry3xx", "absent", ""] {
            for k in 0..4u32 {
                let mut want: Vec<(usize, u32)> = t
                    .range(&query.to_owned(), k)
                    .into_iter()
                    .map(|(_, &v, d)| (v, d))
                    .collect();
                let mut got: Vec<(usize, u32)> = t
                    .range_bounded(&query.to_owned(), k, bounded)
                    .into_iter()
                    .map(|(_, &v, d)| (v, d))
                    .collect();
                want.sort_unstable();
                got.sort_unstable();
                assert_eq!(got, want, "query={query} k={k}");
            }
        }
    }

    #[test]
    fn pruning_probes_fewer_than_linear() {
        let words: Vec<String> = (0..200).map(|i| format!("name{i:03}entry")).collect();
        let mut t = BkTree::new(|a: &String, b: &String| levenshtein(a, b) as u32);
        for (i, w) in words.iter().enumerate() {
            t.insert(w.clone(), i);
        }
        let probes = t.probe_count(&"name000entry".to_owned(), 1);
        assert!(
            probes < words.len(),
            "expected pruning, probed {probes}/{}",
            words.len()
        );
    }

    #[cfg(feature = "property-tests")]
    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// BK-tree range queries must agree exactly with a linear scan.
            #[test]
            fn range_agrees_with_linear_scan(
                words in proptest::collection::vec("[a-c]{0,6}", 1..30),
                query in "[a-c]{0,6}",
                k in 0u32..4
            ) {
                let mut t = BkTree::new(|a: &String, b: &String| levenshtein(a, b) as u32);
                for (i, w) in words.iter().enumerate() {
                    t.insert(w.clone(), i);
                }
                let mut got: Vec<usize> = t.range(&query, k).into_iter().map(|(_, &v, _)| v).collect();
                got.sort_unstable();
                let mut want: Vec<usize> = words
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| levenshtein(w, &query) as u32 <= k)
                    .map(|(i, _)| i)
                    .collect();
                want.sort_unstable();
                prop_assert_eq!(got, want);
            }
        }
    }
}
