//! Approximate string matching primitives for the LexEQUAL stack.
//!
//! LexEQUAL (Kumaran & Haritsa, EDBT 2004) compares proper names in phoneme
//! space with a *parameterized* edit distance: the dynamic-programming
//! formulation of Figure 8 in the paper, with pluggable `InsCost`/`DelCost`/
//! `SubCost` functions. This crate implements that machinery *generically*
//! over any symbol type, so it is equally usable for phoneme strings
//! (the LexEQUAL core), plain `char` strings (tests, monolingual q-gram
//! experiments), and byte strings.
//!
//! Contents:
//!
//! * [`cost`] — the [`cost::CostModel`] trait and the unit-cost
//!   (Levenshtein) model.
//! * [`distance`] — full-matrix and rolling two-row DP edit distance.
//! * [`banded`] — a thresholded variant (`within_distance`) with Ukkonen-
//!   style band pruning and early exit, the hot path of the UDF; the
//!   `_scratch` form reuses caller-owned DP rows for allocation-free
//!   verification loops.
//! * [`myers`] — Myers' bit-parallel Levenshtein over `u8` symbol ids,
//!   used as an exact accept/reject screen around the clustered DP.
//! * [`myers_batch`] — the interleaved multi-lane form of the Myers
//!   screen: one shared pattern, up to 16 texts advanced per step with
//!   struct-of-arrays lane state, so independent recurrences fill the
//!   pipeline.
//! * [`simd`] — the dense-matrix specialization of the banded DP with
//!   SSE2/AVX2 column kernels and once-per-process runtime dispatch
//!   (`LEXEQUAL_FORCE_SCALAR=1` pins the portable fallback).
//! * [`qgram`] — positional q-grams (Gravano et al., VLDB 2001) and the
//!   Length / Count / Position filters used to pre-filter candidates.
//! * [`soundex`](mod@soundex) — the classical Soundex code (Knuth), the pseudo-phonetic
//!   baseline the paper contrasts against.
//! * [`bktree`] — a Burkhard-Keller metric tree over any integer-valued
//!   distance, implementing the paper's "metric index for phonemes"
//!   future-work direction.

pub mod alignment;
pub mod banded;
pub mod bktree;
pub mod cost;
pub mod damerau;
pub mod distance;
pub mod myers;
pub mod myers_batch;
pub mod qgram;
pub mod simd;
pub mod soundex;

pub use alignment::{align, Alignment, EditOp};
pub use banded::{within_distance, within_distance_scratch, DpScratch};
pub use bktree::BkTree;
pub use cost::{CostModel, UnitCost};
pub use damerau::damerau_distance;
pub use distance::{bounded_levenshtein, edit_distance, edit_distance_matrix};
pub use myers::MyersPattern;
pub use myers_batch::MAX_LANES;
pub use qgram::{
    count_filter_passes, length_filter_passes, matching_qgrams, positional_qgrams, Gram,
    PositionalQgram, QgramSymbol,
};
pub use simd::{
    available_simd_levels, detect_simd_level, simd_level, within_distance_dense, SimdLevel,
};
pub use soundex::soundex;
