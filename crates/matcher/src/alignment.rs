//! Optimal alignment traces.
//!
//! Beyond the scalar distance, applications (and debugging sessions) want
//! to know *which* edits an optimal alignment uses — e.g. to show a user
//! why `Nehru` matched `नेहरु`, or to audit a phonetic index dismissal.
//! [`align`] runs the full-matrix DP and backtracks one optimal path.

use crate::cost::CostModel;
use crate::distance::edit_distance_matrix;

/// One step of an optimal alignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EditOp<T> {
    /// Symbols matched exactly (zero cost).
    Match(T),
    /// `left` was substituted by `right` at the given cost.
    Substitute {
        /// The left-side symbol.
        left: T,
        /// The right-side symbol.
        right: T,
        /// The substitution's cost under the model.
        cost: f64,
    },
    /// A right-side symbol was inserted.
    Insert(T),
    /// A left-side symbol was deleted.
    Delete(T),
}

impl<T> EditOp<T> {
    /// The cost this step contributes.
    pub fn cost(&self, model: &impl CostModel<T>) -> f64 {
        match self {
            EditOp::Match(_) => 0.0,
            EditOp::Substitute { cost, .. } => *cost,
            EditOp::Insert(t) => model.ins(t),
            EditOp::Delete(t) => model.del(t),
        }
    }
}

/// An optimal alignment: the operations plus the total distance.
#[derive(Debug, Clone, PartialEq)]
pub struct Alignment<T> {
    /// Steps from the start of both strings to their ends.
    pub ops: Vec<EditOp<T>>,
    /// The total edit distance.
    pub distance: f64,
}

/// Compute one optimal alignment between `left` and `right`.
pub fn align<T: Copy + PartialEq, M: CostModel<T>>(
    left: &[T],
    right: &[T],
    model: M,
) -> Alignment<T> {
    let d = edit_distance_matrix(left, right, &model);
    let mut ops = Vec::new();
    let (mut i, mut j) = (left.len(), right.len());
    while i > 0 || j > 0 {
        let here = d[i][j];
        // Prefer diagonal (match/substitute), then insert, then delete —
        // ties broken deterministically.
        if i > 0 && j > 0 {
            let sub_cost = model.sub(&left[i - 1], &right[j - 1]);
            if (d[i - 1][j - 1] + sub_cost - here).abs() < 1e-9 {
                if left[i - 1] == right[j - 1] {
                    ops.push(EditOp::Match(left[i - 1]));
                } else {
                    ops.push(EditOp::Substitute {
                        left: left[i - 1],
                        right: right[j - 1],
                        cost: sub_cost,
                    });
                }
                i -= 1;
                j -= 1;
                continue;
            }
        }
        if j > 0 && (d[i][j - 1] + model.ins(&right[j - 1]) - here).abs() < 1e-9 {
            ops.push(EditOp::Insert(right[j - 1]));
            j -= 1;
            continue;
        }
        debug_assert!(i > 0, "backtrack must make progress");
        ops.push(EditOp::Delete(left[i - 1]));
        i -= 1;
    }
    ops.reverse();
    Alignment {
        ops,
        distance: d[left.len()][right.len()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UnitCost;

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    #[test]
    fn identical_strings_align_with_matches_only() {
        let a = align(&chars("neru"), &chars("neru"), UnitCost);
        assert_eq!(a.distance, 0.0);
        assert!(a.ops.iter().all(|op| matches!(op, EditOp::Match(_))));
        assert_eq!(a.ops.len(), 4);
    }

    #[test]
    fn kitten_sitting_trace() {
        let a = align(&chars("kitten"), &chars("sitting"), UnitCost);
        assert_eq!(a.distance, 3.0);
        let subs = a
            .ops
            .iter()
            .filter(|o| matches!(o, EditOp::Substitute { .. }))
            .count();
        let ins = a
            .ops
            .iter()
            .filter(|o| matches!(o, EditOp::Insert(_)))
            .count();
        assert_eq!(subs, 2); // k->s, e->i
        assert_eq!(ins, 1); // +g
    }

    #[test]
    fn insert_and_delete_directions() {
        let a = align(&chars("abc"), &chars("abxc"), UnitCost);
        assert_eq!(a.distance, 1.0);
        assert!(a.ops.contains(&EditOp::Insert('x')));
        let a = align(&chars("abxc"), &chars("abc"), UnitCost);
        assert!(a.ops.contains(&EditOp::Delete('x')));
    }

    #[test]
    fn empty_sides() {
        let a = align(&chars(""), &chars("ab"), UnitCost);
        assert_eq!(a.ops, vec![EditOp::Insert('a'), EditOp::Insert('b')]);
        let a = align(&chars("ab"), &chars(""), UnitCost);
        assert_eq!(a.distance, 2.0);
    }

    #[cfg(feature = "property-tests")]
    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The alignment's operation costs must sum to the DP distance,
            /// and replaying it must transform left into right.
            #[test]
            fn alignment_is_consistent(a in "[a-d]{0,10}", b in "[a-d]{0,10}") {
                let av = chars(&a);
                let bv = chars(&b);
                let al = align(&av, &bv, UnitCost);
                let total: f64 = al.ops.iter().map(|o| o.cost(&UnitCost)).sum();
                prop_assert!((total - al.distance).abs() < 1e-9);
                // Replay.
                let mut rebuilt = Vec::new();
                for op in &al.ops {
                    match op {
                        EditOp::Match(c) => rebuilt.push(*c),
                        EditOp::Substitute { right, .. } => rebuilt.push(*right),
                        EditOp::Insert(c) => rebuilt.push(*c),
                        EditOp::Delete(_) => {}
                    }
                }
                prop_assert_eq!(rebuilt, bv);
            }
        }
    }
}
