//! SIMD-accelerated banded DP over a dense substitution matrix, with
//! runtime dispatch.
//!
//! [`within_distance_dense`] decides `editdistance(left, right) <= k` for
//! symbol-id strings under a *dense* cost model — unit insert/delete, and
//! substitution cost looked up in a caller-provided row-major `N×N`
//! `f64` matrix (`matrix[a * n_syms + b]`). It is the specialization of
//! [`within_distance_scratch`](crate::within_distance_scratch) the
//! verification kernel's DP drain runs: same band, same early exit, and —
//! critically — **the same floats in the same order per cell**, so its
//! verdict is bit-for-bit identical to the generic form (pinned by the
//! tests below and by `lexequal`'s differential suite).
//!
//! The inner column loop has three backends selected by [`SimdLevel`]:
//!
//! * `scalar` — a verbatim transcription of the generic loop;
//! * `sse2` — the x86-64 baseline: the data-parallel half of the cell
//!   recurrence (`min(prev[i-1] + sub, prev[i] + 1)`) two cells at a
//!   time, then a scalar scan for the in-column delete dependency;
//! * `avx2` — the same split four cells wide, with the substitution-row
//!   loads issued as hardware gathers from the cache-resident matrix
//!   (`vgatherqpd`; the per-symbol row offsets are precomputed once per
//!   call into the scratch).
//!
//! Exactness of the split: the scalar loop computes each cell as
//! `min(sub, ins, del)` where `del` reads the *final* value of the cell
//! below. Computing `t[i] = min(sub_i, ins_i)` first (vectorized — both
//! operands live in the previous column, so cells are independent) and
//! then scanning `cur[i] = min(t[i], cur[i-1] + 1)` evaluates the same
//! three-way minimum of the same IEEE values; `addpd`/`minpd` are
//! per-lane IEEE operations, all operands are non-negative or `+inf`
//! (no NaNs, no `-0.0`), so the selected minima are bitwise identical.
//!
//! Dispatch is decided once per process by [`simd_level`]: the
//! `LEXEQUAL_FORCE_SCALAR=1` environment variable pins the scalar
//! backend (for differential testing and triage), otherwise x86-64 gets
//! `avx2` when the CPU reports it and `sse2` (the architectural
//! baseline) when not; every other architecture runs scalar.

use crate::banded::DpScratch;
use std::sync::OnceLock;

/// Which inner-loop backend the dense DP uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable fallback; also what `LEXEQUAL_FORCE_SCALAR=1` pins.
    Scalar,
    /// x86-64 baseline: 2-wide `f64` column kernel.
    Sse2,
    /// 4-wide `f64` column kernel with gathered substitution rows.
    Avx2,
}

impl SimdLevel {
    /// Wire/report name (`scalar` | `sse2` | `avx2`).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Probe the environment and CPU for the dispatch decision —
/// [`simd_level`] caches this; call it directly only to observe a
/// changed environment (tests).
pub fn detect_simd_level() -> SimdLevel {
    if std::env::var_os("LEXEQUAL_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0") {
        return SimdLevel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else {
            // SSE2 is part of the x86-64 baseline: always present.
            SimdLevel::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    SimdLevel::Scalar
}

/// The process-wide backend, selected once at first use (runtime feature
/// detection + `LEXEQUAL_FORCE_SCALAR` override) and then fixed.
pub fn simd_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(detect_simd_level)
}

/// Every backend that can run on this machine (scalar always; the vector
/// levels when the CPU has them) — what the differential suites iterate.
pub fn available_simd_levels() -> Vec<SimdLevel> {
    let mut levels = vec![SimdLevel::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        levels.push(SimdLevel::Sse2);
        if std::arch::is_x86_feature_detected!("avx2") {
            levels.push(SimdLevel::Avx2);
        }
    }
    levels
}

/// Decide `editdistance(left, right) <= k` under unit indels and the
/// dense substitution matrix `matrix` (`N×N` row-major, `N = n_syms`,
/// cost of substituting `a` by `b` at `matrix[a * n_syms + b]`).
///
/// Bit-identical to
/// [`within_distance_scratch`](crate::within_distance_scratch) with a
/// cost model wrapping the same matrix, on any [`SimdLevel`].
///
/// # Panics
///
/// Panics when `matrix` is smaller than `n_syms * n_syms` or any symbol
/// id in `left`/`right` is `>= n_syms` (the vector backends read the
/// matrix through raw gathers, so the bounds are checked up front).
pub fn within_distance_dense(
    left: &[u8],
    right: &[u8],
    k: f64,
    matrix: &[f64],
    n_syms: usize,
    scratch: &mut DpScratch,
    level: SimdLevel,
) -> bool {
    assert!(matrix.len() >= n_syms * n_syms, "matrix must be N x N");
    assert!(
        left.iter().chain(right).all(|&s| (s as usize) < n_syms),
        "symbol id out of matrix range"
    );
    if k < 0.0 {
        return false;
    }
    let (n, m) = (left.len(), right.len());
    // Unit indels: |n - m| of them are unavoidable (min_indel = 1).
    if n.abs_diff(m) as f64 > k {
        return false;
    }
    if n == 0 || m == 0 {
        // Distance is one unit indel per symbol of the non-empty side.
        return n.max(m) as f64 <= k + 1e-12;
    }

    let band = k.floor() as usize; // k / min_indel with min_indel = 1

    // Short bands: the vector column kernels pay a prefix-min fix-up
    // pass and gather setup that only amortize over wide bands; below
    // this many band cells the scalar column wins, and every backend
    // computes the identical floats, so this is pure perf dispatch.
    const DENSE_SIMD_MIN_CELLS: usize = 16;
    let level = if n.min(2 * band + 1) < DENSE_SIMD_MIN_CELLS {
        SimdLevel::Scalar
    } else {
        level
    };

    let inf = f64::INFINITY;
    scratch.prev.clear();
    scratch.prev.resize(n + 1, inf);
    scratch.cur.clear();
    scratch.cur.resize(n + 1, inf);
    // Row offsets of the left symbols into the matrix, gather-ready.
    scratch.off.clear();
    scratch
        .off
        .extend(left.iter().map(|&s| (s as usize * n_syms) as i64));
    let off = &scratch.off;
    let mut prev = &mut scratch.prev;
    let mut cur = &mut scratch.cur;
    prev[0] = 0.0;
    for i in 1..=n.min(band) {
        prev[i] = prev[i - 1] + 1.0;
    }

    for j in 1..=m {
        let lo = j.saturating_sub(band);
        let hi = (j + band).min(n);
        if lo > hi {
            return false;
        }
        // `row[off[i]]` is `matrix[left[i] * n_syms + right[j-1]]`.
        let row = &matrix[right[j - 1] as usize..];
        cur[lo.saturating_sub(1)..=hi].fill(inf);
        if lo == 0 {
            cur[0] = prev[0] + 1.0;
        }
        let mut col_min = if lo == 0 { cur[0] } else { inf };
        let start = lo.max(1);
        match level {
            SimdLevel::Scalar => column_scalar(off, row, prev, cur, start, hi, &mut col_min),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: SSE2 is the x86-64 baseline; bounds were checked
            // above, and the kernel only reads `prev[start-1..=hi]`,
            // `off[start-1..hi]` and `row[off[..]]`, all in range.
            SimdLevel::Sse2 => unsafe { column_sse2(off, row, prev, cur, start, hi, &mut col_min) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: callers obtain `Avx2` only from `simd_level` /
            // `available_simd_levels`, which gate it on CPU detection;
            // the gather indexes `row[off[..]]`, in range per the
            // up-front bounds check.
            SimdLevel::Avx2 => unsafe { column_avx2(off, row, prev, cur, start, hi, &mut col_min) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => column_scalar(off, row, prev, cur, start, hi, &mut col_min),
        }
        if col_min > k + 1e-12 {
            return false;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n] <= k + 1e-12
}

/// The generic inner loop, specialized to unit indels + matrix lookups —
/// a verbatim transcription of `within_distance_scratch`'s cell order.
fn column_scalar(
    off: &[i64],
    row: &[f64],
    prev: &[f64],
    cur: &mut [f64],
    start: usize,
    hi: usize,
    col_min: &mut f64,
) {
    for i in start..=hi {
        let mut best = prev[i - 1] + row[off[i - 1] as usize];
        let insert = prev[i] + 1.0; // prev[i] is inf outside band
        if insert < best {
            best = insert;
        }
        let delete = cur[i - 1] + 1.0;
        if delete < best {
            best = delete;
        }
        cur[i] = best;
        if best < *col_min {
            *col_min = best;
        }
    }
}

/// The scalar scan that resolves the in-column delete dependency after a
/// vector pass filled `cur[start..=hi]` with `min(sub, ins)` per cell.
#[cfg(target_arch = "x86_64")]
#[inline]
fn delete_scan(cur: &mut [f64], start: usize, hi: usize, col_min: &mut f64) {
    for i in start..=hi {
        let delete = cur[i - 1] + 1.0;
        if delete < cur[i] {
            cur[i] = delete;
        }
        if cur[i] < *col_min {
            *col_min = cur[i];
        }
    }
}

/// # Safety
///
/// Requires SSE2 (always true on x86-64) and, for all `i` in
/// `start..=hi`: `i <= cur.len() - 1`, `i <= prev.len() - 1`,
/// `off[i - 1]` in bounds of `off`, and `row[off[i - 1]]` in bounds.
#[cfg(target_arch = "x86_64")]
unsafe fn column_sse2(
    off: &[i64],
    row: &[f64],
    prev: &[f64],
    cur: &mut [f64],
    start: usize,
    hi: usize,
    col_min: &mut f64,
) {
    use std::arch::x86_64::*;
    let ones = _mm_set1_pd(1.0);
    let mut i = start;
    // Pass 1: cur[i] = min(prev[i-1] + sub_i, prev[i] + 1), two cells at
    // a time (both operands come from the previous column — no
    // dependency between cells).
    while i < hi {
        let sub = _mm_set_pd(
            *row.get_unchecked(*off.get_unchecked(i) as usize),
            *row.get_unchecked(*off.get_unchecked(i - 1) as usize),
        );
        let diag = _mm_loadu_pd(prev.as_ptr().add(i - 1));
        let ins = _mm_loadu_pd(prev.as_ptr().add(i));
        let t = _mm_min_pd(_mm_add_pd(diag, sub), _mm_add_pd(ins, ones));
        _mm_storeu_pd(cur.as_mut_ptr().add(i), t);
        i += 2;
    }
    pass1_tail(off, row, prev, cur, i, hi);
    // Pass 2: the delete scan (sequential by nature, but one add + two
    // compares per cell against the gather-heavy pass above).
    delete_scan(cur, start, hi, col_min);
}

/// # Safety
///
/// Requires AVX2, plus the same bounds as [`column_sse2`]; the
/// substitution loads are hardware gathers `row[off[i-1]]`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn column_avx2(
    off: &[i64],
    row: &[f64],
    prev: &[f64],
    cur: &mut [f64],
    start: usize,
    hi: usize,
    col_min: &mut f64,
) {
    use std::arch::x86_64::*;
    let ones = _mm256_set1_pd(1.0);
    let mut i = start;
    while i + 3 <= hi {
        let idx = _mm256_loadu_si256(off.as_ptr().add(i - 1) as *const __m256i);
        let sub = _mm256_i64gather_pd::<8>(row.as_ptr(), idx);
        let diag = _mm256_loadu_pd(prev.as_ptr().add(i - 1));
        let ins = _mm256_loadu_pd(prev.as_ptr().add(i));
        let t = _mm256_min_pd(_mm256_add_pd(diag, sub), _mm256_add_pd(ins, ones));
        _mm256_storeu_pd(cur.as_mut_ptr().add(i), t);
        i += 4;
    }
    pass1_tail(off, row, prev, cur, i, hi);
    delete_scan(cur, start, hi, col_min);
}

/// Scalar remainder of pass 1 for the vector kernels.
#[cfg(target_arch = "x86_64")]
#[inline]
fn pass1_tail(off: &[i64], row: &[f64], prev: &[f64], cur: &mut [f64], from: usize, hi: usize) {
    for i in from..=hi {
        let mut best = prev[i - 1] + row[off[i - 1] as usize];
        let insert = prev[i] + 1.0;
        if insert < best {
            best = insert;
        }
        cur[i] = best;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::within_distance_scratch;

    /// A dense matrix as a generic cost model — the reference the SIMD
    /// kernels must reproduce bit-for-bit.
    struct MatrixCost<'a> {
        matrix: &'a [f64],
        n: usize,
    }

    impl CostModel<u8> for &MatrixCost<'_> {
        fn ins(&self, _t: &u8) -> f64 {
            1.0
        }
        fn del(&self, _t: &u8) -> f64 {
            1.0
        }
        fn sub(&self, a: &u8, b: &u8) -> f64 {
            self.matrix[*a as usize * self.n + *b as usize]
        }
    }

    fn xorshift(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed;
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        }
    }

    #[test]
    fn dense_dp_matches_generic_on_every_backend() {
        let n_syms = 9usize;
        let mut next = xorshift(0x51d3_77aa);
        // A symmetric-ish matrix with zero diagonal and fractional costs.
        let mut matrix = vec![0.0f64; n_syms * n_syms];
        for a in 0..n_syms {
            for b in 0..n_syms {
                if a != b {
                    matrix[a * n_syms + b] = 0.25 + (next() % 4) as f64 * 0.25;
                }
            }
        }
        let model = MatrixCost {
            matrix: &matrix,
            n: n_syms,
        };
        let strings: Vec<Vec<u8>> = (0..40)
            .map(|_| {
                let len = (next() % 70) as usize;
                (0..len).map(|_| (next() % n_syms as u64) as u8).collect()
            })
            .collect();
        let levels = available_simd_levels();
        assert!(levels.contains(&SimdLevel::Scalar));
        let mut scratch = DpScratch::new();
        let mut reference_scratch = DpScratch::new();
        for a in &strings {
            for b in &strings {
                for k in [0.0, 0.3, 1.0, 2.75, 7.5, 40.0] {
                    let want = within_distance_scratch(a, b, k, &model, &mut reference_scratch);
                    for &level in &levels {
                        assert_eq!(
                            within_distance_dense(a, b, k, &matrix, n_syms, &mut scratch, level),
                            want,
                            "|a|={} |b|={} k={k} level={level}",
                            a.len(),
                            b.len()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn degenerate_inputs() {
        let matrix = [0.0f64; 4];
        let mut s = DpScratch::new();
        for level in available_simd_levels() {
            assert!(within_distance_dense(
                &[],
                &[],
                0.0,
                &matrix,
                2,
                &mut s,
                level
            ));
            assert!(within_distance_dense(
                &[0, 1],
                &[],
                2.0,
                &matrix,
                2,
                &mut s,
                level
            ));
            assert!(!within_distance_dense(
                &[0, 1, 0],
                &[],
                2.0,
                &matrix,
                2,
                &mut s,
                level
            ));
            assert!(!within_distance_dense(
                &[0],
                &[1],
                -0.5,
                &matrix,
                2,
                &mut s,
                level
            ));
        }
    }

    #[test]
    #[should_panic(expected = "out of matrix range")]
    fn out_of_range_symbol_panics() {
        let matrix = [0.0f64; 4];
        let mut s = DpScratch::new();
        within_distance_dense(&[5], &[0], 1.0, &matrix, 2, &mut s, SimdLevel::Scalar);
    }

    #[test]
    fn force_scalar_env_is_detected() {
        // `detect_simd_level` re-reads the environment (the cached
        // `simd_level` must not, so dispatch stays fixed per process).
        let key = "LEXEQUAL_FORCE_SCALAR";
        let saved = std::env::var_os(key);
        std::env::set_var(key, "1");
        assert_eq!(detect_simd_level(), SimdLevel::Scalar);
        std::env::set_var(key, "0");
        let unforced = detect_simd_level();
        assert!(available_simd_levels().contains(&unforced));
        match saved {
            Some(v) => std::env::set_var(key, v),
            None => std::env::remove_var(key),
        }
    }
}
