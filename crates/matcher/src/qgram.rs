//! Positional q-grams and the Length / Count / Position filters.
//!
//! Q-gram filtering (Gravano et al., "Approximate String Joins in a
//! Database (almost) for Free", VLDB 2001) is the first of the paper's two
//! LexEQUAL accelerators (§5.2): the phoneme strings' positional q-grams
//! are materialized in an auxiliary table, and three cheap filters weed out
//! most non-matches before the expensive edit-distance UDF runs:
//!
//! * **Length filter** — strings within edit distance `k` cannot differ in
//!   length by more than `k`.
//! * **Count filter** — they must share at least
//!   `max(|σ₁|,|σ₂|) − 1 − (k−1)·q` positional q-grams.
//! * **Position filter** — a positional q-gram of one string cannot match
//!   one of the other that is more than `k` positions away.
//!
//! All three are *necessary* conditions for unit-cost (Levenshtein) edit
//! distance ≤ `k`: they admit false positives but never false dismissals.
//! (With the clustered cost model, substitutions can be cheaper than 1, so
//! a clustered threshold `k` must be mapped to a conservative Levenshtein
//! bound before filtering — the LexEQUAL core handles that; see
//! `lexequal::qgram_plan`.)

use std::fmt;
use std::hash::Hash;

/// A symbol of the padded (extended) string: `q−1` start markers are
/// prepended and `q−1` end markers appended before grams are extracted, so
/// that prefixes/suffixes produce distinguishable grams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QgramSymbol<T> {
    /// The `◁` padding symbol, not in the original alphabet.
    Start,
    /// An original-string symbol.
    Sym(T),
    /// The `▷` padding symbol, not in the original alphabet.
    End,
}

impl<T: fmt::Display> fmt::Display for QgramSymbol<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QgramSymbol::Start => f.write_str("◁"),
            QgramSymbol::End => f.write_str("▷"),
            QgramSymbol::Sym(t) => t.fmt(f),
        }
    }
}

/// A q-gram: `q` consecutive symbols of the extended string.
pub type Gram<T> = Vec<QgramSymbol<T>>;

/// A positional q-gram: the gram plus its (0-based) position in the
/// extended string.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PositionalQgram<T> {
    /// 0-based position of the gram's first symbol in the extended string.
    pub pos: u32,
    /// The gram itself.
    pub gram: Gram<T>,
}

impl<T: Copy> PositionalQgram<T> {
    /// Pack this gram into a `u64` signature using `encode` for symbols.
    /// `encode` must return values `< 0xFFFE` (0xFFFE/0xFFFF are reserved
    /// for the padding markers) and `q` must be ≤ 4 for the 16-bit-per-
    /// symbol packing to fit.
    pub fn signature(&self, encode: impl Fn(T) -> u64) -> u64 {
        assert!(self.gram.len() <= 4, "signature packing supports q <= 4");
        let mut acc: u64 = 0;
        for s in &self.gram {
            let v = match s {
                QgramSymbol::Start => 0xFFFE,
                QgramSymbol::End => 0xFFFF,
                QgramSymbol::Sym(t) => {
                    let e = encode(*t);
                    debug_assert!(e < 0xFFFE, "symbol encoding collides with padding");
                    e
                }
            };
            acc = (acc << 16) | v;
        }
        acc
    }
}

/// Extract all positional q-grams of `s` (an extended-string sliding
/// window). A string of length `n` yields `n + q − 1` grams.
///
/// # Panics
///
/// Panics if `q == 0`.
pub fn positional_qgrams<T: Copy>(s: &[T], q: usize) -> Vec<PositionalQgram<T>> {
    assert!(q > 0, "q must be positive");
    let n = s.len();
    let ext_len = n + 2 * (q - 1);
    let sym_at = |i: usize| -> QgramSymbol<T> {
        if i < q - 1 {
            QgramSymbol::Start
        } else if i < q - 1 + n {
            QgramSymbol::Sym(s[i - (q - 1)])
        } else {
            QgramSymbol::End
        }
    };
    let count = ext_len + 1 - q; // = n + q - 1
    let mut out = Vec::with_capacity(count);
    for pos in 0..count {
        let gram: Gram<T> = (pos..pos + q).map(sym_at).collect();
        out.push(PositionalQgram {
            pos: pos as u32,
            gram,
        });
    }
    out
}

/// The length filter: can `|la − lb| ≤ k` hold?
pub fn length_filter_passes(la: usize, lb: usize, k: f64) -> bool {
    (la.abs_diff(lb) as f64) <= k + 1e-12
}

/// The count filter: is `shared ≥ max(la, lb) − 1 − (k−1)·q`?
/// `shared` is the number of position-compatible matching grams.
pub fn count_filter_passes(la: usize, lb: usize, shared: usize, k: f64, q: usize) -> bool {
    let required = (la.max(lb) as f64) - 1.0 - (k - 1.0) * (q as f64);
    (shared as f64) >= required - 1e-12
}

/// Count matching positional q-grams between `a` and `b` under the
/// position filter (`|posₐ − pos_b| ≤ k`), with bag semantics: each gram
/// occurrence matches at most one on the other side.
pub fn matching_qgrams<T: Copy + Ord + Hash>(
    a: &[PositionalQgram<T>],
    b: &[PositionalQgram<T>],
    k: f64,
) -> usize {
    // Sort both sides by (gram, pos); then for each equal-gram run, count
    // a maximum matching under the position constraint greedily (both runs
    // sorted by pos; two-pointer works because the constraint is an
    // interval around each position).
    let mut sa: Vec<&PositionalQgram<T>> = a.iter().collect();
    let mut sb: Vec<&PositionalQgram<T>> = b.iter().collect();
    sa.sort_by(|x, y| x.gram.cmp(&y.gram).then(x.pos.cmp(&y.pos)));
    sb.sort_by(|x, y| x.gram.cmp(&y.gram).then(x.pos.cmp(&y.pos)));

    let kk = k.floor() as i64;
    let (mut i, mut j, mut matched) = (0usize, 0usize, 0usize);
    while i < sa.len() && j < sb.len() {
        match sa[i].gram.cmp(&sb[j].gram) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let pa = sa[i].pos as i64;
                let pb = sb[j].pos as i64;
                if (pa - pb).abs() <= kk {
                    matched += 1;
                    i += 1;
                    j += 1;
                } else if pa < pb {
                    i += 1;
                } else {
                    j += 1;
                }
            }
        }
    }
    matched
}

/// The full q-gram candidate test: length, position and count filters
/// combined. Returns `true` if `(a, b)` *may* be within edit distance `k`.
pub fn qgram_candidate<T: Copy + Ord + Hash>(a: &[T], b: &[T], k: f64, q: usize) -> bool {
    if !length_filter_passes(a.len(), b.len(), k) {
        return false;
    }
    let ga = positional_qgrams(a, q);
    let gb = positional_qgrams(b, q);
    let shared = matching_qgrams(&ga, &gb, k);
    count_filter_passes(a.len(), b.len(), shared, k, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    #[test]
    fn gram_count_is_n_plus_q_minus_1() {
        for q in 1..=4 {
            for n in 0..6 {
                let s: Vec<char> = "abcdef".chars().take(n).collect();
                assert_eq!(positional_qgrams(&s, q).len(), n + q - 1);
            }
        }
    }

    #[test]
    fn paper_footnote_example() {
        // "LexEQUAL" with q=3 yields 10 grams, first (0, ◁◁L), last (9, L▷▷)
        // (paper uses 1-based positions; ours are 0-based).
        let s = chars("LexEQUAL");
        let grams = positional_qgrams(&s, 3);
        assert_eq!(grams.len(), 10);
        assert_eq!(
            grams[0].gram,
            vec![
                QgramSymbol::Start,
                QgramSymbol::Start,
                QgramSymbol::Sym('L')
            ]
        );
        assert_eq!(
            grams[9].gram,
            vec![QgramSymbol::Sym('L'), QgramSymbol::End, QgramSymbol::End]
        );
    }

    #[test]
    fn identical_strings_share_all_grams() {
        let s = chars("nehru");
        let g = positional_qgrams(&s, 2);
        assert_eq!(matching_qgrams(&g, &g, 0.0), g.len());
    }

    #[test]
    fn length_filter_rejects_far_lengths() {
        assert!(length_filter_passes(5, 7, 2.0));
        assert!(!length_filter_passes(5, 8, 2.0));
    }

    #[test]
    fn count_filter_never_rejects_identical() {
        // shared = n + q - 1 >= n - 1 - (k-1)q always holds for k >= 0.
        for n in 1..10usize {
            for q in 1..4usize {
                assert!(count_filter_passes(n, n, n + q - 1, 1.0, q));
            }
        }
    }

    #[test]
    fn candidate_test_known_cases() {
        // cathy/kathy: distance 1 — must be a candidate at k=1.
        assert!(qgram_candidate(&chars("cathy"), &chars("kathy"), 1.0, 3));
        // totally different strings of same length fail count filter.
        assert!(!qgram_candidate(&chars("aaaaaa"), &chars("zzzzzz"), 1.0, 3));
    }

    #[test]
    fn signature_distinguishes_grams_and_positions_dont_matter() {
        let s = chars("ab");
        let grams = positional_qgrams(&s, 2);
        let enc = |c: char| c as u64;
        let sigs: Vec<u64> = grams.iter().map(|g| g.signature(enc)).collect();
        // ◁a, ab, b▷ — all distinct.
        assert_eq!(sigs.len(), 3);
        assert!(sigs[0] != sigs[1] && sigs[1] != sigs[2] && sigs[0] != sigs[2]);
    }

    #[cfg(feature = "property-tests")]
    mod property {
        use super::*;
        use crate::cost::UnitCost;
        use crate::distance::edit_distance;
        use proptest::prelude::*;

        proptest! {
            /// Completeness: the filters must NEVER reject a true match
            /// (no false dismissals) under unit-cost edit distance.
            #[test]
            fn filters_are_complete(
                a in "[a-c]{0,10}", b in "[a-c]{0,10}",
                k in 0.0f64..5.0, q in 1usize..4
            ) {
                let av = chars(&a);
                let bv = chars(&b);
                let d = edit_distance(&av, &bv, UnitCost);
                if d <= k {
                    prop_assert!(
                        qgram_candidate(&av, &bv, k, q),
                        "false dismissal: {:?} {:?} d={} k={} q={}", a, b, d, k, q
                    );
                }
            }

            #[test]
            fn matching_qgrams_is_symmetric(
                a in "[a-c]{0,8}", b in "[a-c]{0,8}", k in 0.0f64..4.0
            ) {
                let ga = positional_qgrams(&chars(&a), 2);
                let gb = positional_qgrams(&chars(&b), 2);
                prop_assert_eq!(matching_qgrams(&ga, &gb, k), matching_qgrams(&gb, &ga, k));
            }

            #[test]
            fn shared_grams_bounded_by_gram_count(
                a in "[a-c]{0,8}", b in "[a-c]{0,8}"
            ) {
                let ga = positional_qgrams(&chars(&a), 3);
                let gb = positional_qgrams(&chars(&b), 3);
                let shared = matching_qgrams(&ga, &gb, 10.0);
                prop_assert!(shared <= ga.len().min(gb.len()));
            }
        }
    }
}
