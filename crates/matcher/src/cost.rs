//! Edit-operation cost models.
//!
//! The LexEQUAL algorithm (paper Figure 8) parameterizes its dynamic
//! program with three cost functions — `InsCost`, `DelCost`, `SubCost` —
//! "due to the flexibility that it offers in experimenting with different
//! cost functions". [`CostModel`] is that parameterization as a trait.

/// Costs for the three edit operations over symbols of type `T`.
///
/// Implementations must satisfy, for the thresholded algorithms in this
/// crate to be correct:
///
/// * all costs are finite and non-negative;
/// * `sub(a, a) == 0.0` for every `a` (matching a symbol to itself is free);
/// * `sub` is symmetric: `sub(a, b) == sub(b, a)`.
pub trait CostModel<T: ?Sized> {
    /// Cost of inserting `t`.
    fn ins(&self, t: &T) -> f64;
    /// Cost of deleting `t`.
    fn del(&self, t: &T) -> f64;
    /// Cost of substituting `a` by `b`.
    fn sub(&self, a: &T, b: &T) -> f64;

    /// The smallest possible insert/delete cost; used by banded algorithms
    /// to bound how far from the diagonal a path within threshold `k` can
    /// stray. The default (1.0) is correct for unit-cost models; models
    /// with cheaper indels must override.
    fn min_indel(&self) -> f64 {
        1.0
    }
}

/// The standard Levenshtein model: every operation costs 1, matches cost 0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitCost;

impl<T: PartialEq + ?Sized> CostModel<T> for UnitCost {
    fn ins(&self, _t: &T) -> f64 {
        1.0
    }
    fn del(&self, _t: &T) -> f64 {
        1.0
    }
    fn sub(&self, a: &T, b: &T) -> f64 {
        if a == b {
            0.0
        } else {
            1.0
        }
    }
}

/// Blanket impl so `&M` can be passed where a model is expected.
impl<T: ?Sized, M: CostModel<T>> CostModel<T> for &M {
    fn ins(&self, t: &T) -> f64 {
        (**self).ins(t)
    }
    fn del(&self, t: &T) -> f64 {
        (**self).del(t)
    }
    fn sub(&self, a: &T, b: &T) -> f64 {
        (**self).sub(a, b)
    }
    fn min_indel(&self) -> f64 {
        (**self).min_indel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_cost_matches_levenshtein_semantics() {
        let m = UnitCost;
        assert_eq!(CostModel::<char>::ins(&m, &'a'), 1.0);
        assert_eq!(CostModel::<char>::del(&m, &'b'), 1.0);
        assert_eq!(m.sub(&'a', &'a'), 0.0);
        assert_eq!(m.sub(&'a', &'b'), 1.0);
        assert_eq!(CostModel::<char>::min_indel(&m), 1.0);
    }

    #[test]
    fn reference_forwarding_preserves_costs() {
        let m = UnitCost;
        let r = &m;
        assert_eq!(r.sub(&'x', &'y'), 1.0);
        assert_eq!(CostModel::<char>::min_indel(&r), 1.0);
    }
}
