//! Thresholded edit distance with band pruning and early exit.
//!
//! The LexEQUAL predicate never needs the exact distance — only whether
//! `editdistance(l, r) <= k` (paper Figure 8, step 5). That admits two
//! classic optimizations (Ukkonen; see Navarro's survey §5):
//!
//! * **banding** — an alignment path that reaches a cell with `|i - j| = d`
//!   contains at least `d` insertions or deletions, each costing at least
//!   [`CostModel::min_indel`]; cells with `|i - j| > k / min_indel` can
//!   therefore never participate in a path of cost ≤ `k` and need not be
//!   computed;
//! * **early exit** — DP values along a row are non-decreasing in the
//!   column index direction of the minimum; if every cell of the current
//!   column exceeds `k`, no later cell can come back under it.

use crate::cost::CostModel;

/// Reusable DP rows for [`within_distance_scratch`].
///
/// The banded decision procedure needs two `f64` rows of length
/// `|left| + 1`. Allocating them per call is measurable in the
/// verification loops that dominate filter-then-verify search; a
/// `DpScratch` owned by the caller (one per shard worker or query)
/// amortizes the allocation to zero after warm-up.
#[derive(Debug, Default)]
pub struct DpScratch {
    pub(crate) prev: Vec<f64>,
    pub(crate) cur: Vec<f64>,
    /// Substitution-row byte offsets of the left string's symbols into a
    /// dense cost matrix — only the dense/SIMD form (`crate::simd`) uses
    /// this; the generic DP above leaves it empty.
    pub(crate) off: Vec<i64>,
}

impl DpScratch {
    /// An empty scratch; rows grow on first use and are then reused.
    pub fn new() -> Self {
        DpScratch::default()
    }

    /// Current row capacity in cells (diagnostic; capacity never shrinks).
    pub fn capacity(&self) -> usize {
        self.prev.capacity()
    }
}

/// Decide `editdistance(left, right) <= k` under `model`, in
/// O(k/min_indel · max(|left|,|right|)) time.
///
/// `k` must be non-negative; a negative `k` never matches.
pub fn within_distance<T, M: CostModel<T>>(left: &[T], right: &[T], k: f64, model: M) -> bool {
    within_distance_scratch(left, right, k, model, &mut DpScratch::new())
}

/// [`within_distance`] with caller-owned DP rows: identical decision
/// procedure (same code path, same float operations, hence bit-identical
/// results), but zero heap allocations once `scratch` has grown to the
/// longest `left` seen.
pub fn within_distance_scratch<T, M: CostModel<T>>(
    left: &[T],
    right: &[T],
    k: f64,
    model: M,
    scratch: &mut DpScratch,
) -> bool {
    if k < 0.0 {
        return false;
    }
    let (n, m) = (left.len(), right.len());
    let min_indel = model.min_indel().max(f64::MIN_POSITIVE);
    // Length filter: |n - m| indels are unavoidable.
    if (n.abs_diff(m)) as f64 * min_indel > k {
        return false;
    }
    if n == 0 || m == 0 {
        // Distance is the sum of indel costs of the non-empty side.
        let total: f64 = if n == 0 {
            right.iter().map(|t| model.ins(t)).sum()
        } else {
            left.iter().map(|t| model.del(t)).sum()
        };
        return total <= k + 1e-12;
    }

    let band = (k / min_indel).floor() as usize;

    // Column-rolling DP over `right` (columns j), rows are `left` (i).
    let inf = f64::INFINITY;
    scratch.prev.clear();
    scratch.prev.resize(n + 1, inf);
    scratch.cur.clear();
    scratch.cur.resize(n + 1, inf);
    let mut prev = &mut scratch.prev;
    let mut cur = &mut scratch.cur;
    prev[0] = 0.0;
    for i in 1..=n.min(band) {
        prev[i] = prev[i - 1] + model.del(&left[i - 1]);
    }

    for j in 1..=m {
        let lo = j.saturating_sub(band);
        let hi = (j + band).min(n);
        if lo > hi {
            return false;
        }
        let cj = &right[j - 1];
        cur[lo.saturating_sub(1)..=hi].fill(inf);
        if lo == 0 {
            cur[0] = prev[0] + model.ins(cj);
        }
        let mut col_min = if lo == 0 { cur[0] } else { inf };
        let start = lo.max(1);
        for i in start..=hi {
            let li = &left[i - 1];
            let mut best = prev[i - 1] + model.sub(li, cj);
            let insert = prev[i] + model.ins(cj); // prev[i] is inf outside band
            if insert < best {
                best = insert;
            }
            let delete = cur[i - 1] + model.del(li);
            if delete < best {
                best = delete;
            }
            cur[i] = best;
            if best < col_min {
                col_min = best;
            }
        }
        if col_min > k + 1e-12 {
            return false;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n] <= k + 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UnitCost;

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    #[test]
    fn basic_threshold_decisions() {
        let a = chars("kitten");
        let b = chars("sitting");
        assert!(within_distance(&a, &b, 3.0, UnitCost));
        assert!(!within_distance(&a, &b, 2.0, UnitCost));
        assert!(within_distance(&a, &a, 0.0, UnitCost));
        assert!(!within_distance(&a, &chars("kittex"), 0.0, UnitCost));
    }

    #[test]
    fn negative_threshold_never_matches() {
        let a = chars("x");
        assert!(!within_distance(&a, &a, -0.1, UnitCost));
    }

    #[test]
    fn empty_sides() {
        assert!(within_distance::<char, _>(&[], &[], 0.0, UnitCost));
        assert!(within_distance(&[], &chars("ab"), 2.0, UnitCost));
        assert!(!within_distance(&[], &chars("abc"), 2.0, UnitCost));
        assert!(within_distance(&chars("ab"), &[], 2.0, UnitCost));
    }

    #[test]
    fn length_filter_kicks_in() {
        // Lengths differ by 5 > k=2: must reject without DP.
        let a = chars("a");
        let b = chars("abcdef");
        assert!(!within_distance(&a, &b, 2.0, UnitCost));
    }

    /// A model with fractional substitution cost, mimicking the clustered
    /// phoneme cost of LexEQUAL.
    struct QuarterSub;
    impl CostModel<char> for QuarterSub {
        fn ins(&self, _t: &char) -> f64 {
            1.0
        }
        fn del(&self, _t: &char) -> f64 {
            1.0
        }
        fn sub(&self, a: &char, b: &char) -> f64 {
            if a == b {
                0.0
            } else {
                0.25
            }
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_allocation() {
        let words = ["kitten", "sitting", "", "a", "abcdefgh", "kitten"];
        let mut scratch = DpScratch::new();
        for a in words {
            for b in words {
                for k in [0.0, 0.5, 1.0, 2.5, 7.0] {
                    let av = chars(a);
                    let bv = chars(b);
                    assert_eq!(
                        within_distance_scratch(&av, &bv, k, UnitCost, &mut scratch),
                        within_distance(&av, &bv, k, UnitCost),
                        "a={a} b={b} k={k}"
                    );
                }
            }
        }
        assert!(scratch.capacity() > "abcdefgh".len());
    }

    #[test]
    fn fractional_costs_respected() {
        let a = chars("abcd");
        let b = chars("axyd"); // two substitutions at 0.25 each
        assert!(within_distance(&a, &b, 0.5, QuarterSub));
        assert!(!within_distance(&a, &b, 0.49, QuarterSub));
    }

    #[cfg(feature = "property-tests")]
    mod property {
        use super::*;
        use crate::distance::edit_distance;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn agrees_with_exact_distance(
                a in "[a-d]{0,12}", b in "[a-d]{0,12}", k in 0.0f64..6.0
            ) {
                let av = chars(&a);
                let bv = chars(&b);
                let exact = edit_distance(&av, &bv, UnitCost);
                prop_assert_eq!(
                    within_distance(&av, &bv, k, UnitCost),
                    exact <= k + 1e-12,
                    "a={} b={} k={} exact={}", a, b, k, exact
                );
            }

            #[test]
            fn agrees_with_exact_distance_fractional(
                a in "[a-c]{0,10}", b in "[a-c]{0,10}", k in 0.0f64..4.0
            ) {
                let av = chars(&a);
                let bv = chars(&b);
                let exact = edit_distance(&av, &bv, QuarterSub);
                prop_assert_eq!(
                    within_distance(&av, &bv, k, QuarterSub),
                    exact <= k + 1e-12
                );
            }
        }
    }
}
