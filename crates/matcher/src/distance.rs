//! Dynamic-programming edit distance (paper Figure 8, `editdistance`).

use crate::cost::CostModel;

/// Edit distance between `left` and `right` under `model`, computed with a
/// rolling two-row dynamic program — O(|left|·|right|) time,
/// O(min-side) space. This is the production entry point; see
/// [`edit_distance_matrix`] for the full-matrix variant used in tests and
/// alignment inspection.
pub fn edit_distance<T, M: CostModel<T>>(left: &[T], right: &[T], model: M) -> f64 {
    // Keep the shorter string as the row to minimize memory.
    if right.len() < left.len() {
        return edit_distance_asym(right, left, &model, true);
    }
    edit_distance_asym(left, right, &model, false)
}

/// `swapped` records whether left/right were exchanged, so that asymmetric
/// ins/del costs are still charged to the correct side.
fn edit_distance_asym<T, M: CostModel<T>>(
    row_str: &[T],
    col_str: &[T],
    model: &M,
    swapped: bool,
) -> f64 {
    let n = row_str.len();
    let ins = |t: &T| if swapped { model.del(t) } else { model.ins(t) };
    let del = |t: &T| if swapped { model.ins(t) } else { model.del(t) };

    // prev[i] = D[i][j-1]; cur[i] = D[i][j]
    let mut prev: Vec<f64> = Vec::with_capacity(n + 1);
    prev.push(0.0);
    for i in 1..=n {
        let p = prev[i - 1] + del(&row_str[i - 1]);
        prev.push(p);
    }
    let mut cur = vec![0.0f64; n + 1];

    for cj in col_str {
        cur[0] = prev[0] + ins(cj);
        for i in 1..=n {
            let ri = &row_str[i - 1];
            let subst = prev[i - 1] + model.sub(ri, cj);
            let insert = prev[i] + ins(cj);
            let delete = cur[i - 1] + del(ri);
            cur[i] = subst.min(insert).min(delete);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

/// Full-matrix edit distance; returns the entire DP matrix
/// (`(left.len()+1) x (right.len()+1)`, row-major). Used by tests to check
/// the rolling version and by tools that want to trace alignments.
pub fn edit_distance_matrix<T, M: CostModel<T>>(
    left: &[T],
    right: &[T],
    model: M,
) -> Vec<Vec<f64>> {
    let (n, m) = (left.len(), right.len());
    let mut d = vec![vec![0.0f64; m + 1]; n + 1];
    for i in 1..=n {
        d[i][0] = d[i - 1][0] + model.del(&left[i - 1]);
    }
    for j in 1..=m {
        d[0][j] = d[0][j - 1] + model.ins(&right[j - 1]);
    }
    for i in 1..=n {
        for j in 1..=m {
            let subst = d[i - 1][j - 1] + model.sub(&left[i - 1], &right[j - 1]);
            let insert = d[i][j - 1] + model.ins(&right[j - 1]);
            let delete = d[i - 1][j] + model.del(&left[i - 1]);
            d[i][j] = subst.min(insert).min(delete);
        }
    }
    d
}

/// Convenience: Levenshtein distance over chars as an integer.
pub fn levenshtein(a: &str, b: &str) -> usize {
    // ASCII fast path: bytes and chars are in bijection, so the byte-level
    // distance equals the char-level one without collecting either string.
    if a.is_ascii() && b.is_ascii() {
        return edit_distance(a.as_bytes(), b.as_bytes(), crate::cost::UnitCost) as usize;
    }
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    edit_distance(&av, &bv, crate::cost::UnitCost) as usize
}

/// Unit-cost Levenshtein distance if it is ≤ `bound`, else `None` —
/// Ukkonen's banded decision computed with integer arithmetic and an
/// early exit, in O(bound · min(|a|,|b|)) time instead of O(|a|·|b|).
///
/// Metric indexes (the BK-tree range query) only consume distances up to
/// a per-node bound; computing the full matrix per probed node wastes the
/// triangle-inequality pruning this buys.
pub fn bounded_levenshtein<T: PartialEq>(a: &[T], b: &[T], bound: u32) -> Option<u32> {
    // Keep the shorter side as the row: unit costs are symmetric.
    let (row, col) = if b.len() < a.len() { (b, a) } else { (a, b) };
    let (n, m) = (row.len(), col.len());
    if (m - n) as u64 > bound as u64 {
        return None;
    }
    if n == 0 {
        return Some(m as u32); // ≤ bound by the length check above
    }
    let band = bound as usize;
    let inf = u32::MAX / 2;
    let mut prev = vec![inf; n + 1];
    let mut cur = vec![inf; n + 1];
    prev[0] = 0;
    for (i, p) in prev.iter_mut().enumerate().take(n.min(band) + 1).skip(1) {
        *p = i as u32;
    }
    for j in 1..=m {
        let lo = j.saturating_sub(band);
        let hi = (j + band).min(n);
        if lo > hi {
            return None;
        }
        cur[lo.saturating_sub(1)..=hi].fill(inf);
        if lo == 0 {
            cur[0] = j as u32;
        }
        let mut row_min = if lo == 0 { cur[0] } else { inf };
        let cj = &col[j - 1];
        for i in lo.max(1)..=hi {
            let sub = if row[i - 1] == *cj { 0 } else { 1 };
            let best = (prev[i - 1] + sub).min(prev[i] + 1).min(cur[i - 1] + 1);
            cur[i] = best;
            row_min = row_min.min(best);
        }
        if row_min > bound {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    (prev[n] <= bound).then_some(prev[n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostModel, UnitCost};

    #[test]
    fn classic_levenshtein_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
        assert_eq!(levenshtein("cathy", "kathy"), 1);
    }

    #[test]
    fn non_ascii_still_counts_chars_not_bytes() {
        // Multi-byte chars must be one edit each, same as before the
        // ASCII byte fast path.
        assert_eq!(levenshtein("réné", "rene"), 2);
        assert_eq!(levenshtein("नेहरू", "नेहरू"), 0);
        assert_eq!(levenshtein("नेहरू", ""), "नेहरू".chars().count());
        assert_eq!(levenshtein("café", "cafe"), 1);
    }

    #[test]
    fn bounded_agrees_with_exact_within_bound() {
        let words = ["", "a", "kitten", "sitting", "kitchen", "abcdefgh"];
        for a in words {
            for b in words {
                let av: Vec<char> = a.chars().collect();
                let bv: Vec<char> = b.chars().collect();
                let exact = levenshtein(a, b) as u32;
                for bound in 0..10u32 {
                    let got = bounded_levenshtein(&av, &bv, bound);
                    if exact <= bound {
                        assert_eq!(got, Some(exact), "a={a} b={b} bound={bound}");
                    } else {
                        assert_eq!(got, None, "a={a} b={b} bound={bound}");
                    }
                }
            }
        }
    }

    /// A deliberately asymmetric model to catch swapped ins/del accounting.
    struct AsymCost;
    impl CostModel<char> for AsymCost {
        fn ins(&self, _t: &char) -> f64 {
            2.0
        }
        fn del(&self, _t: &char) -> f64 {
            3.0
        }
        fn sub(&self, a: &char, b: &char) -> f64 {
            if a == b {
                0.0
            } else {
                10.0 // force indel paths
            }
        }
        fn min_indel(&self) -> f64 {
            2.0
        }
    }

    #[test]
    fn asymmetric_costs_respect_direction() {
        // "ab" -> "abc": one insertion of 'c' (cost 2), regardless of which
        // side is shorter internally.
        let ab: Vec<char> = "ab".chars().collect();
        let abc: Vec<char> = "abc".chars().collect();
        assert_eq!(edit_distance(&ab, &abc, AsymCost), 2.0);
        // "abc" -> "ab": one deletion of 'c' (cost 3).
        assert_eq!(edit_distance(&abc, &ab, AsymCost), 3.0);
    }

    #[test]
    fn rolling_matches_full_matrix() {
        let cases = [("kitten", "sitting"), ("abcdef", "azced"), ("", "xyz")];
        for (a, b) in cases {
            let av: Vec<char> = a.chars().collect();
            let bv: Vec<char> = b.chars().collect();
            let full = edit_distance_matrix(&av, &bv, UnitCost);
            let rolled = edit_distance(&av, &bv, UnitCost);
            assert_eq!(full[av.len()][bv.len()], rolled, "{a} vs {b}");
        }
    }

    #[cfg(feature = "property-tests")]
    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn distance_is_symmetric_under_unit_cost(a in "[a-d]{0,12}", b in "[a-d]{0,12}") {
                prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
            }

            #[test]
            fn distance_zero_iff_equal(a in "[a-d]{0,10}", b in "[a-d]{0,10}") {
                let d = levenshtein(&a, &b);
                prop_assert_eq!(d == 0, a == b);
            }

            #[test]
            fn triangle_inequality(
                a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}"
            ) {
                let ab = levenshtein(&a, &b);
                let bc = levenshtein(&b, &c);
                let ac = levenshtein(&a, &c);
                prop_assert!(ac <= ab + bc);
            }

            #[test]
            fn bounded_by_longer_length(a in "[a-e]{0,12}", b in "[a-e]{0,12}") {
                let d = levenshtein(&a, &b);
                let la = a.chars().count();
                let lb = b.chars().count();
                prop_assert!(d <= la.max(lb));
                prop_assert!(d >= la.abs_diff(lb));
            }

            #[test]
            fn rolling_equals_matrix_prop(a in "[a-d]{0,10}", b in "[a-d]{0,10}") {
                let av: Vec<char> = a.chars().collect();
                let bv: Vec<char> = b.chars().collect();
                let m = edit_distance_matrix(&av, &bv, UnitCost);
                prop_assert_eq!(m[av.len()][bv.len()], edit_distance(&av, &bv, UnitCost));
            }
        }
    }
}
