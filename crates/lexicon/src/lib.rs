//! Evaluation datasets and quality metrics for the LexEQUAL reproduction.
//!
//! The paper's experiments (Kumaran & Haritsa, EDBT 2004, §4–§5) run over
//! two datasets this crate builds deterministically from embedded name
//! lists:
//!
//! * [`Corpus`] — the tagged multiscript lexicon (~800 names × 3 scripts,
//!   §4.1): English base names from three domains (Indian, American,
//!   generic nouns), machine-rendered into Devanagari and Tamil, each
//!   group sharing a ground-truth tag. Drives the match-quality
//!   experiments (Figures 10–12).
//! * [`SyntheticDataset`] — ≈200K entries built by in-language pairwise
//!   concatenation (§5), driving the performance experiments (Figure 13,
//!   Tables 1–3).
//!
//! [`quality`] implements the recall/precision sweep of §4.2.

pub mod corpus;
pub mod data;
pub mod quality;
pub mod synthetic;

pub use corpus::{Corpus, LexiconEntry};
pub use data::{NameDomain, AMERICAN_NAMES, GENERIC_NAMES, INDIAN_NAMES};
pub use quality::{sweep, sweep_sampled, sweep_with_model, QualityPoint};
pub use synthetic::{SyntheticDataset, SyntheticEntry};
