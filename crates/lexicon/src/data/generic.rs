//! Generic names: places, objects and chemicals (OED flavour).

/// 160 generic nouns across the paper's three categories.
#[rustfmt::skip]
pub static GENERIC_NAMES: &[&str] = &[
    // Places
    "Alexandria", "Amsterdam", "Athens", "Atlanta", "Baghdad", "Bangalore",
    "Barcelona", "Beijing", "Berlin", "Bombay", "Boston", "Brussels",
    "Budapest", "Cairo", "Calcutta", "Chicago", "Copenhagen", "Damascus",
    "Delhi", "Denver", "Dublin", "Edinburgh", "Florence", "Geneva",
    "Hamburg", "Havana", "Helsinki", "Houston", "Istanbul", "Jakarta",
    "Jerusalem", "Karachi", "Kyoto", "Lahore", "Lisbon", "London",
    "Madras", "Madrid", "Manila", "Marseille", "Melbourne", "Montreal",
    "Moscow", "Munich", "Nairobi", "Naples", "Osaka", "Oslo", "Paris",
    "Prague", "Rangoon", "Rome", "Seattle", "Seoul", "Shanghai",
    "Singapore", "Stockholm", "Sydney", "Tehran", "Tokyo", "Toronto",
    "Venice", "Vienna", "Warsaw", "Zurich",
    // Objects
    "Anchor", "Basket", "Bicycle", "Blanket", "Bottle", "Bridge",
    "Bucket", "Button", "Camera", "Candle", "Carpet", "Chariot",
    "Compass", "Curtain", "Diamond", "Engine", "Fountain", "Furnace",
    "Garden", "Guitar", "Hammer", "Harvest", "Ladder", "Lantern",
    "Machine", "Mirror", "Needle", "Organ", "Palace", "Pencil",
    "Piano", "Pillar", "Pitcher", "Pulley", "Ribbon", "Saddle",
    "Scissors", "Shovel", "Spindle", "Stable", "Telescope", "Temple",
    "Theatre", "Trumpet", "Turbine", "Umbrella", "Vessel", "Violin",
    "Wagon", "Whistle",
    // Chemicals
    "Acetone", "Ammonia", "Argon", "Arsenic", "Barium", "Benzene",
    "Bromine", "Cadmium", "Calcium", "Carbon", "Chlorine", "Chromium",
    "Cobalt", "Copper", "Ethanol", "Fluorine", "Glucose", "Glycerin",
    "Helium", "Hydrogen", "Iodine", "Iridium", "Lithium", "Magnesium",
    "Manganese", "Mercury", "Methane", "Nickel", "Nitrogen", "Oxygen",
    "Phosphorus", "Platinum", "Potassium", "Propane", "Radium", "Silicon",
    "Sodium", "Sulphur", "Titanium", "Tungsten", "Uranium", "Vanadium",
    "Xenon", "Zinc", "Zirconium", "Quinine",
];
