//! Base name lists for the evaluation corpus.
//!
//! The paper's corpus (§4.1) drew from three sources "so as to cover
//! common names in English and Indic domains":
//!
//! 1. names "randomly picked … from the *Bangalore Telephone Directory*,
//!    covering most frequently used Indian names" → [`INDIAN_NAMES`];
//! 2. names "from the *San Francisco Physicians Directory*, covering most
//!    common American first and last names" → [`AMERICAN_NAMES`];
//! 3. "generic names representing Places, Objects and Chemicals … picked
//!    from the *Oxford English Dictionary*" → [`GENERIC_NAMES`].
//!
//! Neither directory is available, so these lists are equivalent samples
//! of the same populations (see DESIGN.md §2). Together they provide the
//! ~800 English-script base names the corpus generator renders into
//! Devanagari and Tamil.

mod american;
mod generic;
mod indian;

pub use american::AMERICAN_NAMES;
pub use generic::GENERIC_NAMES;
pub use indian::INDIAN_NAMES;

/// The three name domains of the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NameDomain {
    /// Bangalore-telephone-directory-style Indian names.
    Indian,
    /// San-Francisco-physicians-style American names.
    American,
    /// OED-style generic nouns (places, objects, chemicals).
    Generic,
}

/// All base names with their domains, in a stable order.
pub fn all_names() -> impl Iterator<Item = (&'static str, NameDomain)> {
    INDIAN_NAMES
        .iter()
        .map(|n| (*n, NameDomain::Indian))
        .chain(AMERICAN_NAMES.iter().map(|n| (*n, NameDomain::American)))
        .chain(GENERIC_NAMES.iter().map(|n| (*n, NameDomain::Generic)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn roughly_800_names_total() {
        let n = all_names().count();
        assert!(
            (750..=900).contains(&n),
            "paper used ~800 base names, got {n}"
        );
    }

    #[test]
    fn no_duplicates_within_or_across_lists() {
        let mut seen = HashSet::new();
        for (name, _) in all_names() {
            assert!(seen.insert(name.to_lowercase()), "duplicate name {name}");
        }
    }

    #[test]
    fn names_are_ascii_alphabetic_words() {
        for (name, _) in all_names() {
            assert!(
                name.chars().all(|c| c.is_ascii_alphabetic()),
                "bad name {name:?}"
            );
            assert!(name.len() >= 2, "too short: {name:?}");
        }
    }

    #[test]
    fn domains_have_expected_sizes() {
        assert!((280..=360).contains(&INDIAN_NAMES.len()));
        assert!((280..=360).contains(&AMERICAN_NAMES.len()));
        assert!((140..=220).contains(&GENERIC_NAMES.len()));
    }
}
