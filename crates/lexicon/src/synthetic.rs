//! The synthetic performance dataset (paper §5).
//!
//! "Since the real multiscript lexicon … was not large enough for
//! performance experiments, we synthetically generated a large dataset …
//! Specifically, we concatenated each string with all remaining strings
//! *within a given language*. The generated set contained about 200,000
//! names, with an average lexicographic length of 14.71 and average
//! phonemic length of 14.31."
//!
//! With ~800 base names per language the full pairwise concatenation
//! would exceed 600K entries *per language*; the paper's 200K total
//! implies a subset of roughly 260 base names per language. The generator
//! takes a target size and picks the base-name prefix per language that
//! meets it.

use crate::corpus::Corpus;
use lexequal_g2p::Language;
use lexequal_phoneme::PhonemeString;

/// One generated entry: concatenated text, language, phonemes.
#[derive(Debug, Clone)]
pub struct SyntheticEntry {
    /// Concatenated lexicographic string.
    pub text: String,
    /// Language (same as both sources).
    pub language: Language,
    /// Concatenated phoneme string.
    pub phonemes: PhonemeString,
}

/// The generated dataset.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// All entries.
    pub entries: Vec<SyntheticEntry>,
}

impl SyntheticDataset {
    /// Generate ≈`target` entries from the corpus by in-language pairwise
    /// concatenation, balanced across the three languages.
    pub fn generate(corpus: &Corpus, target: usize) -> Self {
        let per_language = target / 3;
        // n(n-1) >= per_language  =>  n ≈ ceil((1+sqrt(1+4p))/2)
        let n = ((1.0 + (1.0 + 4.0 * per_language as f64).sqrt()) / 2.0).ceil() as usize;
        let mut entries = Vec::with_capacity(3 * n * n.saturating_sub(1));
        for language in [Language::English, Language::Hindi, Language::Tamil] {
            let base: Vec<&crate::corpus::LexiconEntry> = corpus
                .entries
                .iter()
                .filter(|e| e.language == language)
                .take(n)
                .collect();
            for (i, a) in base.iter().enumerate() {
                for (j, b) in base.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    entries.push(SyntheticEntry {
                        text: format!("{}{}", a.text, b.text),
                        language,
                        phonemes: a.phonemes.concat(&b.phonemes),
                    });
                }
            }
        }
        SyntheticDataset { entries }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Average lexicographic length in characters (paper: 14.71).
    pub fn avg_lex_len(&self) -> f64 {
        let total: usize = self.entries.iter().map(|e| e.text.chars().count()).sum();
        total as f64 / self.len() as f64
    }

    /// Average phonemic length in segments (paper: 14.31).
    pub fn avg_phon_len(&self) -> f64 {
        let total: usize = self.entries.iter().map(|e| e.phonemes.len()).sum();
        total as f64 / self.len() as f64
    }

    /// Length histogram `(length, lex_count, phon_count)` for Figure 13.
    pub fn length_distribution(&self) -> Vec<(usize, usize, usize)> {
        let max = self
            .entries
            .iter()
            .map(|e| e.text.chars().count().max(e.phonemes.len()))
            .max()
            .unwrap_or(0);
        let mut out = vec![(0usize, 0usize, 0usize); max + 1];
        for (i, slot) in out.iter_mut().enumerate() {
            slot.0 = i;
        }
        for e in &self.entries {
            out[e.text.chars().count()].1 += 1;
            out[e.phonemes.len()].2 += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lexequal::MatchConfig;
    use std::sync::OnceLock;

    fn corpus() -> &'static Corpus {
        static C: OnceLock<Corpus> = OnceLock::new();
        C.get_or_init(|| Corpus::build(&MatchConfig::default()))
    }

    #[test]
    fn small_generation_has_exact_size() {
        // per-language p = 1000/3 = 333 -> n = 19 -> 19*18 = 342 per lang.
        let d = SyntheticDataset::generate(corpus(), 1000);
        assert_eq!(d.len(), 3 * 19 * 18);
    }

    #[test]
    fn entries_are_concatenations() {
        let d = SyntheticDataset::generate(corpus(), 100);
        for e in d.entries.iter().take(20) {
            assert!(e.text.chars().count() >= 4);
            assert!(e.phonemes.len() >= 4);
        }
    }

    #[test]
    fn paper_scale_generation_hits_200k_and_length_ballpark() {
        let d = SyntheticDataset::generate(corpus(), 200_000);
        assert!(
            (190_000..=215_000).contains(&d.len()),
            "got {} entries",
            d.len()
        );
        // Paper: avg lex 14.71, phon 14.31. Same ballpark expected.
        let lex = d.avg_lex_len();
        let phon = d.avg_phon_len();
        assert!((11.0..=19.0).contains(&lex), "avg lex {lex}");
        assert!((11.0..=19.0).contains(&phon), "avg phon {phon}");
    }

    #[test]
    fn balanced_across_languages() {
        let d = SyntheticDataset::generate(corpus(), 3000);
        for lang in [Language::English, Language::Hindi, Language::Tamil] {
            let n = d.entries.iter().filter(|e| e.language == lang).count();
            assert_eq!(n, d.len() / 3, "{lang}");
        }
    }
}
