//! The tagged multiscript evaluation corpus (paper §4.1).
//!
//! Every English base name is rendered into Devanagari and Tamil via the
//! phoneme-level transliterators (replacing the paper's hand conversion),
//! and all three renderings share a **tag number**: "any match of two
//! multilingual strings is considered to be correct if their tag-numbers
//! are the same, and considered to be a false-positive otherwise."

use crate::data::{all_names, NameDomain};
use lexequal::{LexEqual, MatchConfig};
use lexequal_g2p::translit::{to_devanagari, to_tamil};
use lexequal_g2p::Language;
use lexequal_phoneme::PhonemeString;

/// One corpus entry: a name in one script, with its phonemic rendering
/// and ground-truth tag.
#[derive(Debug, Clone)]
pub struct LexiconEntry {
    /// The lexicographic string.
    pub text: String,
    /// Language tag of the rendering.
    pub language: Language,
    /// Phonemic representation (as each language's G2P reads the text —
    /// *not* necessarily identical across renderings of one name).
    pub phonemes: PhonemeString,
    /// Ground-truth equivalence-group id.
    pub tag: u32,
    /// Which name domain the base name came from.
    pub domain: NameDomain,
}

/// The tagged corpus: ~800 groups × 3 scripts ≈ 2400 entries.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// All entries, grouped entries adjacent, tags ascending.
    pub entries: Vec<LexiconEntry>,
    /// Number of tag groups.
    pub groups: u32,
}

impl Corpus {
    /// Build the full corpus with the given operator configuration.
    ///
    /// Each base name yields its English entry plus Devanagari and Tamil
    /// renderings (derived from the *English* phonemes, then re-read with
    /// the respective language's G2P — reproducing the phoneme-set
    /// mismatches of the paper's hand-converted data).
    pub fn build(config: &MatchConfig) -> Self {
        let operator = LexEqual::new(config.clone());
        let mut entries = Vec::new();
        let mut next_tag = 0u32;
        // The paper tagged "all phonetically equivalent names … with a
        // common tag-number": base names whose English phoneme strings are
        // identical (Kelly/Kelley, Smith/Smyth) share one group.
        let mut tag_by_phonemes: std::collections::HashMap<String, u32> =
            std::collections::HashMap::new();
        for (name, domain) in all_names() {
            let Ok(en) = operator.transform(name, Language::English) else {
                continue; // defensive: every base name converts in practice
            };
            if en.is_empty() {
                continue;
            }
            let deva = to_devanagari(&en);
            let tamil = to_tamil(&en);
            let (Ok(hi), Ok(ta)) = (
                operator.transform(&deva, Language::Hindi),
                operator.transform(&tamil, Language::Tamil),
            ) else {
                continue;
            };
            let tag = *tag_by_phonemes.entry(en.to_string()).or_insert_with(|| {
                let t = next_tag;
                next_tag += 1;
                t
            });
            entries.push(LexiconEntry {
                text: name.to_owned(),
                language: Language::English,
                phonemes: en,
                tag,
                domain,
            });
            entries.push(LexiconEntry {
                text: deva,
                language: Language::Hindi,
                phonemes: hi,
                tag,
                domain,
            });
            entries.push(LexiconEntry {
                text: tamil,
                language: Language::Tamil,
                phonemes: ta,
                tag,
                domain,
            });
        }
        Corpus {
            entries,
            groups: next_tag,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Average lexicographic length in characters (paper: 7.35).
    pub fn avg_lex_len(&self) -> f64 {
        let total: usize = self.entries.iter().map(|e| e.text.chars().count()).sum();
        total as f64 / self.len() as f64
    }

    /// Average phonemic length in segments (paper: 7.16).
    pub fn avg_phon_len(&self) -> f64 {
        let total: usize = self.entries.iter().map(|e| e.phonemes.len()).sum();
        total as f64 / self.len() as f64
    }

    /// Length histogram: `(length, lex_count, phon_count)` for Figure 10.
    pub fn length_distribution(&self) -> Vec<(usize, usize, usize)> {
        let max = self
            .entries
            .iter()
            .map(|e| e.text.chars().count().max(e.phonemes.len()))
            .max()
            .unwrap_or(0);
        let mut out = vec![(0usize, 0usize, 0usize); max + 1];
        for (i, slot) in out.iter_mut().enumerate() {
            slot.0 = i;
        }
        for e in &self.entries {
            out[e.text.chars().count()].1 += 1;
            out[e.phonemes.len()].2 += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        Corpus::build(&MatchConfig::default())
    }

    #[test]
    fn corpus_has_three_renderings_per_group() {
        let c = corpus();
        // Every base name contributes one entry per script; homophone
        // base names (Kelly/Kelley) merge into one group, so groups may
        // be slightly fewer than len/3.
        assert_eq!(c.len() % 3, 0);
        assert!(c.groups as usize <= c.len() / 3);
        assert!(c.groups >= 700, "expected ~800 groups, got {}", c.groups);
        // Each consecutive triple shares a tag and spans 3 languages.
        for chunk in c.entries.chunks(3) {
            assert_eq!(chunk[0].tag, chunk[1].tag);
            assert_eq!(chunk[0].tag, chunk[2].tag);
            assert_eq!(chunk[0].language, Language::English);
            assert_eq!(chunk[1].language, Language::Hindi);
            assert_eq!(chunk[2].language, Language::Tamil);
        }
    }

    #[test]
    fn average_lengths_match_papers_ballpark() {
        let c = corpus();
        let lex = c.avg_lex_len();
        let phon = c.avg_phon_len();
        // Paper: 7.35 lexicographic / 7.16 phonemic. Our renderings and
        // scripts differ slightly; requiring the same ballpark.
        assert!((5.0..=9.5).contains(&lex), "avg lex len {lex}");
        assert!((5.0..=9.5).contains(&phon), "avg phon len {phon}");
    }

    #[test]
    fn renderings_are_in_their_scripts() {
        let c = corpus();
        for e in &c.entries {
            match e.language {
                Language::English => {
                    assert!(e.text.chars().all(|ch| ch.is_ascii_alphabetic()))
                }
                Language::Hindi => assert!(e
                    .text
                    .chars()
                    .all(|ch| ('\u{0900}'..='\u{097F}').contains(&ch))),
                Language::Tamil => assert!(e
                    .text
                    .chars()
                    .all(|ch| ('\u{0B80}'..='\u{0BFF}').contains(&ch))),
                other => panic!("unexpected language {other}"),
            }
        }
    }

    #[test]
    fn tag_groups_are_phonetically_close_but_not_identical() {
        // The corpus must carry genuine cross-script noise: within-group
        // phoneme strings should often differ, else the experiments are
        // trivial.
        let c = corpus();
        let mut identical_groups = 0usize;
        for chunk in c.entries.chunks(3) {
            if chunk[0].phonemes == chunk[1].phonemes && chunk[1].phonemes == chunk[2].phonemes {
                identical_groups += 1;
            }
        }
        let frac = identical_groups as f64 / c.groups as f64;
        assert!(
            frac < 0.5,
            "too many groups with identical phonemes ({frac:.2}) — no fuzziness left"
        );
    }

    #[test]
    fn length_distribution_sums_to_corpus_size() {
        let c = corpus();
        let dist = c.length_distribution();
        let lex_total: usize = dist.iter().map(|d| d.1).sum();
        let phon_total: usize = dist.iter().map(|d| d.2).sum();
        assert_eq!(lex_total, c.len());
        assert_eq!(phon_total, c.len());
    }
}
