//! The recall/precision evaluation harness (paper §4.2).
//!
//! "We matched each phonemic string in the data set with every other
//! phonemic string, counting the number of matches (m₁) that were
//! correctly reported …, along with the total number of matches reported
//! (m₂). … Recall = m₁ / Σ C(nᵢ, 2) and Precision = m₁ / m₂."
//!
//! The sweep evaluates a grid of (intra-cluster cost, threshold) pairs.
//! The expensive part — the clustered edit distance per pair — depends
//! only on the cost, so each distance is computed once per cost and the
//! threshold dimension is swept for free.

use crate::corpus::Corpus;
use lexequal::{ClusteredPhonemeCost, MatchConfig};
use lexequal_matcher::{edit_distance, CostModel};
use lexequal_phoneme::Phoneme;

/// One point of the quality surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityPoint {
    /// Intra-cluster substitution cost.
    pub cost: f64,
    /// Match threshold.
    pub threshold: f64,
    /// Correct matches reported (m₁).
    pub correct: u64,
    /// Total matches reported (m₂).
    pub reported: u64,
    /// Ideal number of matches (Σ C(nᵢ, 2)).
    pub ideal: u64,
}

impl QualityPoint {
    /// Recall = m₁ / ideal.
    pub fn recall(&self) -> f64 {
        if self.ideal == 0 {
            return 1.0;
        }
        self.correct as f64 / self.ideal as f64
    }

    /// Precision = m₁ / m₂ (1.0 when nothing is reported).
    pub fn precision(&self) -> f64 {
        if self.reported == 0 {
            return 1.0;
        }
        self.correct as f64 / self.reported as f64
    }

    /// Euclidean distance to the perfect (1,1) corner of PR space —
    /// the paper's "closest points … to the top-right corner" criterion
    /// for picking ideal parameters (Figure 12).
    pub fn distance_to_ideal(&self) -> f64 {
        let dr = 1.0 - self.recall();
        let dp = 1.0 - self.precision();
        (dr * dr + dp * dp).sqrt()
    }
}

/// Sweep the quality surface of a corpus over cost × threshold grids.
///
/// Complexity: O(pairs × costs) edit distances where
/// pairs = C(|corpus|, 2); thresholds are amortized.
pub fn sweep(corpus: &Corpus, costs: &[f64], thresholds: &[f64]) -> Vec<QualityPoint> {
    let config = MatchConfig::default();
    let n = corpus.entries.len();

    // ideal = sum over groups of C(group_size, 2)
    let mut group_sizes = std::collections::HashMap::new();
    for e in &corpus.entries {
        *group_sizes.entry(e.tag).or_insert(0u64) += 1;
    }
    let ideal: u64 = group_sizes.values().map(|&s| s * (s - 1) / 2).sum();

    let mut points: Vec<QualityPoint> = Vec::with_capacity(costs.len() * thresholds.len());
    for &cost in costs {
        let model = ClusteredPhonemeCost::new(config.clusters.clone(), cost);
        // counters per threshold
        let mut correct = vec![0u64; thresholds.len()];
        let mut reported = vec![0u64; thresholds.len()];
        for i in 0..n {
            let a = &corpus.entries[i];
            for b in &corpus.entries[i + 1..] {
                let d = edit_distance(a.phonemes.as_slice(), b.phonemes.as_slice(), &model);
                let smaller = a.phonemes.len().min(b.phonemes.len()) as f64;
                let same_tag = a.tag == b.tag;
                for (t, &e) in thresholds.iter().enumerate() {
                    // Strict comparison, matching LexEqual::matches_phonemes
                    // (identical strings always match).
                    if d <= 1e-12 || d < e * smaller - 1e-9 {
                        reported[t] += 1;
                        if same_tag {
                            correct[t] += 1;
                        }
                    }
                }
            }
        }
        for (t, &threshold) in thresholds.iter().enumerate() {
            points.push(QualityPoint {
                cost,
                threshold,
                correct: correct[t],
                reported: reported[t],
                ideal,
            });
        }
    }
    points
}

/// Threshold sweep under an arbitrary substitution model — the cost-model
/// ablation entry point. Returns one [`QualityPoint`] per threshold; the
/// `cost` field is set to the sentinel -1.0 ("custom model") since the
/// model is not parameterized by a single scalar.
pub fn sweep_with_model<M: CostModel<Phoneme>>(
    corpus: &Corpus,
    model: &M,
    thresholds: &[f64],
) -> Vec<QualityPoint> {
    let n = corpus.entries.len();
    let mut group_sizes = std::collections::HashMap::new();
    for e in &corpus.entries {
        *group_sizes.entry(e.tag).or_insert(0u64) += 1;
    }
    let ideal: u64 = group_sizes.values().map(|&s| s * (s - 1) / 2).sum();
    let mut correct = vec![0u64; thresholds.len()];
    let mut reported = vec![0u64; thresholds.len()];
    for i in 0..n {
        let a = &corpus.entries[i];
        for b in &corpus.entries[i + 1..] {
            let d = edit_distance(a.phonemes.as_slice(), b.phonemes.as_slice(), model);
            let smaller = a.phonemes.len().min(b.phonemes.len()) as f64;
            let same_tag = a.tag == b.tag;
            for (t, &e) in thresholds.iter().enumerate() {
                if d <= 1e-12 || d < e * smaller - 1e-9 {
                    reported[t] += 1;
                    if same_tag {
                        correct[t] += 1;
                    }
                }
            }
        }
    }
    thresholds
        .iter()
        .enumerate()
        .map(|(t, &threshold)| QualityPoint {
            cost: -1.0,
            threshold,
            correct: correct[t],
            reported: reported[t],
            ideal,
        })
        .collect()
}

/// Like [`sweep`], but over a down-sampled corpus (every `stride`-th
/// group) — keeps unit tests and quick runs fast while preserving the
/// curve shapes.
pub fn sweep_sampled(
    corpus: &Corpus,
    costs: &[f64],
    thresholds: &[f64],
    stride: u32,
) -> Vec<QualityPoint> {
    let sampled = Corpus {
        entries: corpus
            .entries
            .iter()
            .filter(|e| e.tag % stride == 0)
            .cloned()
            .collect(),
        groups: corpus.groups / stride,
    };
    sweep(&sampled, costs, thresholds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn corpus() -> &'static Corpus {
        static C: OnceLock<Corpus> = OnceLock::new();
        C.get_or_init(|| Corpus::build(&MatchConfig::default()))
    }

    fn points() -> &'static [QualityPoint] {
        static P: OnceLock<Vec<QualityPoint>> = OnceLock::new();
        P.get_or_init(|| {
            sweep_sampled(
                corpus(),
                &[0.0, 0.5, 1.0],
                &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.75, 1.0],
                8,
            )
        })
    }

    fn at(cost: f64, threshold: f64) -> QualityPoint {
        *points()
            .iter()
            .find(|p| p.cost == cost && p.threshold == threshold)
            .expect("grid point")
    }

    #[test]
    fn recall_is_monotone_in_threshold() {
        for cost in [0.0, 0.5, 1.0] {
            let mut last = -1.0;
            for th in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.75, 1.0] {
                let r = at(cost, th).recall();
                assert!(
                    r >= last - 1e-12,
                    "recall dropped at cost {cost} threshold {th}"
                );
                last = r;
            }
        }
    }

    #[test]
    fn recall_improves_with_lower_intra_cluster_cost() {
        // Paper Figure 11: "recall gets better with reducing intracluster
        // substitution costs".
        for th in [0.2, 0.3, 0.4] {
            assert!(
                at(0.0, th).recall() >= at(1.0, th).recall() - 1e-12,
                "threshold {th}"
            );
        }
    }

    #[test]
    fn precision_drops_with_threshold_eventually() {
        for cost in [0.5, 1.0] {
            let tight = at(cost, 0.1).precision();
            let loose = at(cost, 1.0).precision();
            assert!(
                loose <= tight + 1e-12,
                "precision must fall as threshold grows (cost {cost})"
            );
        }
    }

    #[test]
    fn asymptotic_recall_is_high() {
        // Figure 11: recall asymptotically approaches 1 past threshold 0.5.
        let r = at(0.0, 1.0).recall();
        assert!(r > 0.95, "recall at cost 0, threshold 1.0 was {r}");
    }

    #[test]
    fn knee_region_achieves_good_recall_and_precision() {
        // Paper: cost 0.25–0.5, threshold 0.25–0.35 → recall ≈95%,
        // precision ≈85%. Our pipeline differs; demand both ≥ 0.7 at the
        // best grid point near the knee and report the actual values in
        // EXPERIMENTS.md.
        let p = at(0.5, 0.4);
        assert!(
            p.recall() > 0.7 && p.precision() > 0.7,
            "knee point recall {:.3} precision {:.3}",
            p.recall(),
            p.precision()
        );
    }

    #[test]
    fn counters_are_consistent() {
        for p in points() {
            assert!(p.correct <= p.reported);
            assert!(p.correct <= p.ideal);
            assert!(p.recall() <= 1.0 && p.precision() <= 1.0);
        }
    }

    #[test]
    fn distance_to_ideal_prefers_better_points() {
        let perfect = QualityPoint {
            cost: 0.0,
            threshold: 0.0,
            correct: 10,
            reported: 10,
            ideal: 10,
        };
        assert_eq!(perfect.distance_to_ideal(), 0.0);
        let worse = QualityPoint {
            correct: 5,
            ..perfect
        };
        assert!(worse.distance_to_ideal() > 0.0);
    }
}
