//! The zero-copy memory-mapped snapshot format.
//!
//! The JSON snapshot (§5d, [`crate::snapshot`]) is a *parse job*: every
//! load re-tokenizes text, re-parses IPA, and re-allocates one heap
//! buffer per entry — which is why it loads slower than a cold G2P
//! rebuild. This module replaces it as the default persistence format
//! with an offset-based binary image where **the file is the runtime
//! representation**: all entry data (texts, languages, phoneme strings,
//! cluster-id vectors) lives in aligned, length-prefixed arenas
//! addressed by relative offsets. Loading is `mmap` + one validation
//! pass + striping `Arc`-counted views onto the shards; no parse, no
//! per-entry heap allocation, no copy. Replica seeding ships these same
//! bytes verbatim and the replica serves straight out of the transfer
//! buffer.
//!
//! # Layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//!      0     8  magic  "LEXEQMM1"
//!      8     4  format version (1 or 2; v2 adds the embedding arena)
//!     12     4  endianness tag (= 0x01020304; a big-endian writer
//!               would produce 0x04030201, rejected on load)
//!     16     4  shard count N
//!     20     4  entry count E
//!     24     8  covered LSN
//!     32     4  section count (5 in v1, 6 in v2)
//!     36     4  reserved (0)
//!     40  S×24  section table: S × { offset u64, len u64, checksum u64 }
//!               (checksum: FNV-1a folded over LE u64 words, zero-padded
//!               tail — 8 bytes per round so whole-file validation fits
//!               the cold-start budget)
//!   40+S×24     sections, each 8-byte aligned, zero-padded between:
//!               [0] build specs   8 bytes each { tag, q, mode, pad[5] }
//!               [1] entry table  16 bytes each (see below)
//!               [2] text arena    UTF-8 bytes
//!               [3] phoneme arena raw inventory ids
//!               [4] cluster arena cluster ids, parallel to [3]
//!               [5] embed arena   E × EMBED_DIM bytes, entry g's
//!                   phonetic embedding at g·EMBED_DIM (v2 only)
//! ```
//!
//! Version 1 images (section count 5, no embedding arena) still load:
//! entries come up with empty embedding views, the store reports them
//! via `pending_embeddings`, and the serving layer backfills with
//! `build_embeddings` off the critical path — exactly the deferred
//! treatment access-path rebuilds get. The embedding screen simply
//! bypasses rows until then, so answers are identical throughout.
//!
//! One entry-table record (16 bytes):
//!
//! ```text
//! { text_off u32, phon_off u32, text_len u16, phon_len u16,
//!   language u8 (index into Language::ALL), pad[3] }
//! ```
//!
//! Offsets are relative to their arena's start. The cluster arena is
//! parallel to the phoneme arena byte-for-byte (one cluster id per
//! phoneme id), so entry records address both with the same
//! `(phon_off, phon_len)` window.
//!
//! Entries are stored in **global-id order**. Shard striping is the
//! pure function `g % N` / `g / N` (see [`crate::shard`]), so the
//! loader reconstructs each shard's rows without any per-shard
//! sections, and the writer serializes `export_shards()` back to
//! global order via `g = local * N + shard`.
//!
//! # Hostile-file discipline
//!
//! Nothing in the image is trusted: header fields, section windows
//! (bounds, 8-byte alignment, FNV-1a checksums) and every per-entry
//! offset are validated against the mapping before the first
//! dereference, and all reads go through `from_le_bytes` on bounds-
//! checked subslices — no pointer-cast struct reads, no alignment UB,
//! no panics. A corrupt file comes back as a named [`DbError`], never
//! a crash (`tests/mmap_corruption.rs` is the battery).

use crate::shard::{BuildSpec, ShardedStore};
use lexequal::store::SharedEntry;
use lexequal::{Language, MatchConfig, Phoneme, QgramMode, EMBED_DIM};
use lexequal_mdb::DbError;
use lexequal_phoneme::{ByteOwner, SharedBytes};
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

/// First eight bytes of every binary snapshot.
pub const MAGIC: [u8; 8] = *b"LEXEQMM1";
/// Current format version (written; versions 1..=2 are read).
pub const FORMAT_VERSION: u32 = 2;
/// Endianness canary: reads back as written only on a same-endian host.
const ENDIAN_TAG: u32 = 0x0102_0304;
/// Sections shared by every version (specs, entries, texts, phonemes,
/// clusters).
const BASE_SECTIONS: usize = 5;
/// Sections in a version-2 image (base + embedding arena).
const V2_SECTIONS: usize = 6;
/// Bytes before the first section in a version-1 image; the smallest
/// plausible header, so also the up-front length gate.
const V1_HEADER_LEN: usize = 40 + BASE_SECTIONS * 24;
/// Bytes before the first section in a version-2 image.
const HEADER_LEN: usize = 40 + V2_SECTIONS * 24;
/// Bytes per entry-table record.
const ENTRY_RECORD: usize = 16;
/// Bytes per build-spec record.
const SPEC_RECORD: usize = 8;
/// Upper bound on the header's shard count. Each shard is a live worker
/// thread, so an unchecked hostile header could demand billions of
/// threads from four bytes; no real deployment shards wider than this.
const MAX_SHARDS: usize = 1024;

fn err(what: impl std::fmt::Display) -> DbError {
    DbError::Parse(format!("mmap snapshot: {what}"))
}

/// Raw `mmap`/`munmap`/`flock` shims. `std` links libc, so these
/// symbols are always available; declaring them here keeps the
/// workspace dependency-free (same pattern as the epoll shims in
/// [`crate::event_loop`]).
mod sys {
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 0x1;
    pub const MAP_SHARED: c_int = 0x01;
    pub const LOCK_SH: c_int = 1;
    pub const LOCK_NB: c_int = 4;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
        pub fn flock(fd: c_int, operation: c_int) -> c_int;
    }
}

/// A read-only shared mapping of a snapshot file.
///
/// `MAP_SHARED` + `PROT_READ` means every process serving the same
/// snapshot shares one copy of the page cache, and pages fault in
/// lazily — load time is O(validation), not O(corpus).
///
/// # Truncation hazard
///
/// The header/offset/checksum validation defends against hostile file
/// *contents*, but no userspace check can defend against the file
/// **shrinking while mapped**: reads beyond the new EOF raise `SIGBUS`
/// and kill the process. The daemon's own save path never does this —
/// [`write_image_atomic`] writes a temp file and `rename`s it over the
/// target, so the mapped inode lives on unchanged — but an operator
/// truncating or rewriting the snapshot *in place* (`truncate`, `>`
/// redirection, `cp` onto it) would. As a tripwire for cooperating
/// tools, the mapping holds a shared advisory `flock` on the file for
/// its whole lifetime (best-effort; some filesystems don't support it):
/// `flock -x -n <snapshot>` fails while a daemon serves from it.
/// Replace a live snapshot only via rename (as `SAVE` does).
pub struct Mmap {
    ptr: *mut std::ffi::c_void,
    len: usize,
    /// Keeps the mapped file's descriptor (and with it the advisory
    /// shared lock taken at map time) alive as long as the mapping.
    _file: File,
}

// SAFETY: the mapping is immutable (PROT_READ) and lives until Drop;
// the raw pointer is only ever read through `as_ref`.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map an open file read-only in its entirety, taking (best-effort)
    /// a shared advisory lock on it for the mapping's lifetime — see
    /// the truncation hazard in the type docs.
    pub fn map(file: File) -> std::io::Result<Mmap> {
        use std::os::fd::AsRawFd;
        let len = file.metadata()?.len();
        if len == 0 {
            // mmap(2) rejects zero-length mappings; an empty file can
            // never be a valid snapshot anyway.
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "cannot map an empty file",
            ));
        }
        let len = usize::try_from(len)
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::Unsupported, "file too large"))?;
        // Advisory only (cannot *stop* a truncate, which would SIGBUS
        // us) and best-effort (some filesystems reject flock): a shared
        // lock never blocks other readers, and the non-blocking probe
        // means an unsupported filesystem degrades to today's behavior
        // instead of failing the load.
        // SAFETY: fd is a valid open file; the result is only observed.
        unsafe {
            sys::flock(file.as_raw_fd(), sys::LOCK_SH | sys::LOCK_NB);
        }
        // SAFETY: fd is a valid open file, len is its nonzero size;
        // failures return MAP_FAILED which we check.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr,
            len,
            _file: file,
        })
    }

    /// Mapping size in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true for a live mapping).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        // SAFETY: ptr/len come from a successful mmap that lives until
        // Drop; the mapping is read-only.
        unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        // SAFETY: ptr/len are the exact values mmap returned.
        unsafe {
            sys::munmap(self.ptr, self.len);
        }
    }
}

/// Whether a byte buffer starts with the binary-snapshot magic.
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// Whether the file at `path` starts with the binary-snapshot magic
/// (false on any I/O error — the caller's format dispatch then falls
/// through to JSON, whose parser produces the real error).
pub fn sniff_file(path: impl AsRef<Path>) -> bool {
    let mut head = [0u8; 8];
    match File::open(path) {
        Ok(mut f) => f.read_exact(&mut head).is_ok() && head == MAGIC,
        Err(_) => false,
    }
}

/// Minimal peek at an already-transferred image: `(covered LSN, entry
/// count)`. Validates only the fixed header prefix; `None` if the
/// buffer is not a plausible binary snapshot.
pub fn peek(bytes: &[u8]) -> Option<(u64, u32)> {
    if !is_binary(bytes) || bytes.len() < V1_HEADER_LEN {
        return None;
    }
    let entries = u32::from_le_bytes(bytes[20..24].try_into().ok()?);
    let lsn = u64::from_le_bytes(bytes[24..32].try_into().ok()?);
    Some((lsn, entries))
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn spec_to_record(spec: &BuildSpec) -> Result<[u8; SPEC_RECORD], DbError> {
    let mut rec = [0u8; SPEC_RECORD];
    match spec {
        BuildSpec::Qgram { q, mode } => {
            rec[0] = 0;
            rec[1] = u8::try_from(*q).map_err(|_| err("q-gram length exceeds format limit"))?;
            rec[2] = match mode {
                QgramMode::Strict => 0,
                QgramMode::PaperFaithful => 1,
            };
        }
        BuildSpec::PhoneticIndex => rec[0] = 1,
        BuildSpec::BkTree => rec[0] = 2,
    }
    Ok(rec)
}

fn spec_from_record(rec: &[u8]) -> Result<BuildSpec, DbError> {
    match rec[0] {
        0 => Ok(BuildSpec::Qgram {
            q: rec[1] as usize,
            mode: match rec[2] {
                0 => QgramMode::Strict,
                1 => QgramMode::PaperFaithful,
                m => return Err(err(format!("unknown q-gram mode {m}"))),
            },
        }),
        1 => Ok(BuildSpec::PhoneticIndex),
        2 => Ok(BuildSpec::BkTree),
        t => Err(err(format!("unknown build-spec tag {t}"))),
    }
}

fn pad_to_align(buf: &mut Vec<u8>) {
    while buf.len() % 8 != 0 {
        buf.push(0);
    }
}

/// Section checksum: FNV-1a folded over little-endian u64 words, the
/// zero-padded tail as one final word. One multiply per 8 bytes instead
/// of per byte — every load checksums the whole file, so this pass has
/// to fit inside the cold-start budget. Padding is unambiguous because
/// the section length is stored (and verified) separately.
fn section_checksum(bytes: &[u8]) -> u64 {
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = BASIS;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = (h ^ w).wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(tail)).wrapping_mul(PRIME);
    }
    h
}

/// Serialize the store into a binary snapshot image covering `lsn`.
///
/// Captures under the grow lock (via `export_shards`), so the image is
/// a consistent point-in-time cut; cluster ids are recomputed from the
/// configured cost model, making the image self-consistent by
/// construction.
pub fn encode(store: &ShardedStore, lsn: u64) -> Result<Vec<u8>, DbError> {
    let sections = store.export_shards();
    let builds = store.built_specs();
    let shards = sections.len();
    let total: usize = sections.iter().map(Vec::len).sum();
    let entry_count = u32::try_from(total).map_err(|_| err("entry count exceeds format limit"))?;
    let operator = lexequal::LexEqual::new(store.config().clone());

    // Arenas and the entry table, in global-id order. Embeddings are
    // recomputed from the phonemes (like cluster ids), so the image is
    // self-consistent by construction.
    let mut entry_table = Vec::with_capacity(total * ENTRY_RECORD);
    let mut texts = Vec::new();
    let mut phonemes = Vec::new();
    let mut clusters = Vec::new();
    let mut embeds = Vec::with_capacity(total * EMBED_DIM);
    for g in 0..total {
        let entry = &sections[g % shards][g / shards];
        let text = entry.text.as_bytes();
        let phon = entry.phonemes.id_bytes();
        let text_off = u32::try_from(texts.len()).map_err(|_| err("text arena exceeds 4 GiB"))?;
        let phon_off =
            u32::try_from(phonemes.len()).map_err(|_| err("phoneme arena exceeds 4 GiB"))?;
        let text_len =
            u16::try_from(text.len()).map_err(|_| err("entry text exceeds format limit"))?;
        let phon_len = u16::try_from(phon.len())
            .map_err(|_| err("entry phoneme string exceeds format limit"))?;
        let lang = Language::ALL
            .iter()
            .position(|l| *l == entry.language)
            .expect("every language is in Language::ALL") as u8;
        texts.extend_from_slice(text);
        phonemes.extend_from_slice(phon);
        clusters.extend_from_slice(&operator.cluster_ids(&entry.phonemes));
        embeds.extend_from_slice(&operator.embed_for(&entry.phonemes));
        entry_table.extend_from_slice(&text_off.to_le_bytes());
        entry_table.extend_from_slice(&phon_off.to_le_bytes());
        entry_table.extend_from_slice(&text_len.to_le_bytes());
        entry_table.extend_from_slice(&phon_len.to_le_bytes());
        entry_table.push(lang);
        entry_table.extend_from_slice(&[0u8; 3]);
    }
    let mut specs = Vec::with_capacity(builds.len() * SPEC_RECORD);
    for spec in &builds {
        specs.extend_from_slice(&spec_to_record(spec)?);
    }

    // Header + section table, then the six sections, 8-byte aligned.
    let mut image = Vec::with_capacity(
        HEADER_LEN
            + specs.len()
            + entry_table.len()
            + texts.len()
            + phonemes.len()
            + clusters.len()
            + embeds.len()
            + 6 * 8,
    );
    image.extend_from_slice(&MAGIC);
    image.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    image.extend_from_slice(&ENDIAN_TAG.to_le_bytes());
    image.extend_from_slice(
        &u32::try_from(shards)
            .map_err(|_| err("shard count exceeds format limit"))?
            .to_le_bytes(),
    );
    image.extend_from_slice(&entry_count.to_le_bytes());
    image.extend_from_slice(&lsn.to_le_bytes());
    image.extend_from_slice(&(V2_SECTIONS as u32).to_le_bytes());
    image.extend_from_slice(&0u32.to_le_bytes());
    // Section-table placeholder, patched below.
    image.resize(HEADER_LEN, 0);

    let payloads: [&[u8]; V2_SECTIONS] =
        [&specs, &entry_table, &texts, &phonemes, &clusters, &embeds];
    let mut table = [[0u64; 3]; V2_SECTIONS];
    for (i, payload) in payloads.iter().enumerate() {
        pad_to_align(&mut image);
        table[i] = [
            image.len() as u64,
            payload.len() as u64,
            section_checksum(payload),
        ];
        image.extend_from_slice(payload);
    }
    for (i, [off, len, sum]) in table.iter().enumerate() {
        let at = 40 + i * 24;
        image[at..at + 8].copy_from_slice(&off.to_le_bytes());
        image[at + 8..at + 16].copy_from_slice(&len.to_le_bytes());
        image[at + 16..at + 24].copy_from_slice(&sum.to_le_bytes());
    }
    Ok(image)
}

/// [`encode`] and write atomically: temp file in the target directory,
/// fsync, rename over the destination (same discipline as the JSON
/// snapshot's `write_to_file_atomic`).
pub fn write_file_atomic(
    store: &ShardedStore,
    lsn: u64,
    path: impl AsRef<Path>,
) -> Result<u64, DbError> {
    let image = encode(store, lsn)?;
    write_image_atomic(&image, path)?;
    Ok(image.len() as u64)
}

/// Write an already-encoded image atomically (the replica seeding path
/// persists the transferred bytes verbatim).
pub fn write_image_atomic(image: &[u8], path: impl AsRef<Path>) -> Result<(), DbError> {
    let path = path.as_ref();
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let io_err = |e: std::io::Error| err(format!("write {}: {e}", path.display()));
    let result = (|| {
        let mut f = File::create(&tmp).map_err(io_err)?;
        f.write_all(image).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
        drop(f);
        std::fs::rename(&tmp, path).map_err(io_err)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

// ---------------------------------------------------------------------
// Loader
// ---------------------------------------------------------------------

/// A store loaded zero-copy from a binary snapshot image.
pub struct LoadedImage {
    /// The populated store: every entry's columns are views into the
    /// image (the mapping or the transfer buffer).
    pub store: ShardedStore,
    /// Access paths the image records as built. The loader does *not*
    /// rebuild them — scans serve immediately (that's the O(1) cold
    /// start); callers decide whether to rebuild synchronously
    /// (tests, replicas) or in the background (`lexequald`).
    pub builds: Vec<BuildSpec>,
    /// The WAL LSN the image covers.
    pub lsn: u64,
    /// Image size in bytes (what was mapped or transferred).
    pub bytes: u64,
    /// Whether entries came up without persisted embeddings (a v1
    /// image): the caller should schedule `build_embeddings` the same
    /// way it schedules deferred access-path rebuilds. Until then the
    /// embedding screen bypasses every row — answers are unaffected.
    pub pending_embeds: bool,
}

/// Little-endian reads over the image, every access bounds-checked so
/// hostile headers can never index out of the buffer.
struct Reader<'a>(&'a [u8]);

impl<'a> Reader<'a> {
    fn bytes(&self, off: usize, len: usize) -> Result<&'a [u8], DbError> {
        off.checked_add(len)
            .and_then(|end| self.0.get(off..end))
            .ok_or_else(|| err(format!("read of {len} bytes at {off} is out of bounds")))
    }
    fn u32(&self, off: usize) -> Result<u32, DbError> {
        Ok(u32::from_le_bytes(self.bytes(off, 4)?.try_into().unwrap()))
    }
    fn u64(&self, off: usize) -> Result<u64, DbError> {
        Ok(u64::from_le_bytes(self.bytes(off, 8)?.try_into().unwrap()))
    }
}

/// One validated section window (absolute offsets into the image).
#[derive(Clone, Copy)]
struct Section {
    off: usize,
    len: usize,
}

/// Validate the header, section table and section checksums; returns
/// `(shards, entry_count, lsn, base sections, embed section)` — the
/// embed section is `None` for a version-1 image.
#[allow(clippy::type_complexity)]
fn validate_frame(
    image: &[u8],
) -> Result<(usize, usize, u64, [Section; BASE_SECTIONS], Option<Section>), DbError> {
    let r = Reader(image);
    if image.len() < V1_HEADER_LEN {
        return Err(err(format!(
            "file too small ({} bytes) to hold a snapshot header",
            image.len()
        )));
    }
    if image[..8] != MAGIC {
        return Err(err("bad magic (not a binary snapshot)"));
    }
    let version = r.u32(8)?;
    if version == 0 || version > FORMAT_VERSION {
        return Err(err(format!(
            "unsupported format version {version} (this build reads 1..={FORMAT_VERSION})"
        )));
    }
    let endian = r.u32(12)?;
    if endian != ENDIAN_TAG {
        return Err(err(format!(
            "endianness tag 0x{endian:08x} does not match 0x{ENDIAN_TAG:08x}: \
             written on an incompatible host"
        )));
    }
    let shards = r.u32(16)? as usize;
    if shards == 0 {
        return Err(err("zero shard count"));
    }
    if shards > MAX_SHARDS {
        return Err(err(format!(
            "implausible shard count {shards} (this build caps snapshots at {MAX_SHARDS} shards)"
        )));
    }
    let entry_count = r.u32(20)? as usize;
    let lsn = r.u64(24)?;
    let expect_sections = if version == 1 {
        BASE_SECTIONS
    } else {
        V2_SECTIONS
    };
    let header_len = 40 + expect_sections * 24;
    if image.len() < header_len {
        return Err(err(format!(
            "file too small ({} bytes) for a version-{version} header",
            image.len()
        )));
    }
    let section_count = r.u32(32)? as usize;
    if section_count != expect_sections {
        return Err(err(format!(
            "section count {section_count} (version {version} holds {expect_sections})"
        )));
    }
    let read_section = |i: usize| -> Result<Section, DbError> {
        let at = 40 + i * 24;
        let off = r.u64(at)?;
        let len = r.u64(at + 8)?;
        let sum = r.u64(at + 16)?;
        let off = usize::try_from(off).map_err(|_| err(format!("section {i} offset overflow")))?;
        let len = usize::try_from(len).map_err(|_| err(format!("section {i} length overflow")))?;
        if off < header_len {
            return Err(err(format!("section {i} overlaps the header")));
        }
        if off % 8 != 0 {
            return Err(err(format!("section {i} is misaligned (offset {off})")));
        }
        let payload = r
            .bytes(off, len)
            .map_err(|_| err(format!("section {i} is out of bounds")))?;
        let computed = section_checksum(payload);
        if computed != sum {
            return Err(err(format!(
                "section {i} checksum mismatch (stored {sum:#018x}, computed {computed:#018x})"
            )));
        }
        Ok(Section { off, len })
    };
    let mut sections = [Section { off: 0, len: 0 }; BASE_SECTIONS];
    for (i, s) in sections.iter_mut().enumerate() {
        *s = read_section(i)?;
    }
    let embed = if expect_sections == V2_SECTIONS {
        Some(read_section(BASE_SECTIONS)?)
    } else {
        None
    };
    Ok((shards, entry_count, lsn, sections, embed))
}

/// Load a binary snapshot from an owned image buffer (the replica path:
/// the transfer buffer becomes the store's backing allocation).
pub fn load_bytes(
    config: MatchConfig,
    shards: Option<usize>,
    bytes: Vec<u8>,
) -> Result<LoadedImage, DbError> {
    load_owner(config, shards, Arc::new(bytes))
}

/// Load a binary snapshot by mapping the file at `path` (the daemon
/// path: the mapping becomes the store's backing allocation and pages
/// are shared with every other process serving the same file).
pub fn load_file(
    config: MatchConfig,
    shards: Option<usize>,
    path: impl AsRef<Path>,
) -> Result<LoadedImage, DbError> {
    let path = path.as_ref();
    let io_err = |e: std::io::Error| err(format!("open {}: {e}", path.display()));
    let file = File::open(path).map_err(io_err)?;
    let map = Mmap::map(file).map_err(io_err)?;
    load_owner(config, shards, Arc::new(map))
}

/// The loader core: validate everything once, then stripe zero-copy
/// views onto the shards.
fn load_owner(
    config: MatchConfig,
    shards: Option<usize>,
    owner: Arc<ByteOwner>,
) -> Result<LoadedImage, DbError> {
    let image: &[u8] = (*owner).as_ref();
    let bytes = image.len() as u64;
    let (snap_shards, entry_count, lsn, sections, embed_sec) = validate_frame(image)?;
    if let Some(requested) = shards {
        if requested != snap_shards {
            // Same contract (and near-identical wording) as the JSON
            // path: shard rebalancing at load is not supported in
            // either snapshot format.
            return Err(DbError::Unsupported(format!(
                "snapshot holds {snap_shards} shard(s) but {requested} were requested; \
                 re-striping at load is not supported in the binary or JSON snapshot \
                 formats (ROADMAP: shard rebalancing) — load with {snap_shards} \
                 shard(s) or rebuild from the corpus"
            )));
        }
    }
    let [specs, entries, texts, phonemes, clusters] = sections;

    // Build specs.
    if specs.len % SPEC_RECORD != 0 {
        return Err(err("build-spec section length is not a record multiple"));
    }
    let specs_bytes = &image[specs.off..specs.off + specs.len];
    let builds = specs_bytes
        .chunks_exact(SPEC_RECORD)
        .map(spec_from_record)
        .collect::<Result<Vec<_>, _>>()?;

    // Entry table shape.
    let expect = entry_count
        .checked_mul(ENTRY_RECORD)
        .ok_or_else(|| err("entry count overflow"))?;
    if entries.len != expect {
        return Err(err(format!(
            "entry table holds {} bytes but {entry_count} entries need {expect}",
            entries.len
        )));
    }

    // Arena-wide invariants. The cluster arena must be the phoneme
    // arena's parallel twin, every phoneme byte a valid inventory id,
    // and every cluster byte exactly what the *configured* cost model
    // assigns — a snapshot written under a different MatchConfig is
    // rejected here, same as the JSON path.
    if clusters.len != phonemes.len {
        return Err(err(format!(
            "cluster arena ({} bytes) is not parallel to the phoneme arena ({} bytes)",
            clusters.len, phonemes.len
        )));
    }
    let phon_arena = &image[phonemes.off..phonemes.off + phonemes.len];
    let clus_arena = &image[clusters.off..clusters.off + clusters.len];
    let operator = lexequal::LexEqual::new(config.clone());
    let table = operator.cost_model().clusters();
    let mut lut = [0u8; 256];
    let mut valid = [false; 256];
    for id in 0..=u8::MAX {
        if Phoneme::is_valid_id(id) {
            valid[id as usize] = true;
            lut[id as usize] = table.cluster_of(Phoneme::from_id(id).expect("validated")).0;
        }
    }
    for (i, (&p, &c)) in phon_arena.iter().zip(clus_arena).enumerate() {
        if !valid[p as usize] {
            return Err(err(format!(
                "phoneme arena byte {i} (id {p}) is outside the inventory"
            )));
        }
        if lut[p as usize] != c {
            return Err(err(
                "stored cluster ids disagree with the configured cost model \
                 (snapshot written under a different MatchConfig?)",
            ));
        }
    }

    // The text arena validates as UTF-8 once, whole; a window into it
    // is then valid iff both endpoints land on char boundaries — two
    // O(1) byte tests per entry instead of 20K `from_utf8` calls.
    let text_arena = std::str::from_utf8(&image[texts.off..texts.off + texts.len])
        .map_err(|_| err("text arena is not valid UTF-8"))?;

    // The embedding arena (v2) is fixed-stride: exactly EMBED_DIM bytes
    // per entry, in global-id order. Its shape is pinned here; the bytes
    // are verified per entry below once each phoneme window is known,
    // so a stale or doctored arena is rejected rather than silently
    // mis-screening candidates.
    if let Some(sec) = embed_sec {
        let expect = entry_count
            .checked_mul(EMBED_DIM)
            .ok_or_else(|| err("embedding arena size overflow"))?;
        if sec.len != expect {
            return Err(err(format!(
                "embedding arena holds {} bytes but {entry_count} entries need {expect}",
                sec.len
            )));
        }
    }

    // Per-entry windows, then stripe zero-copy views shard-by-shard.
    let store = ShardedStore::new(config, snap_shards);
    let mut striped: Vec<Vec<SharedEntry>> = (0..snap_shards)
        .map(|s| {
            Vec::with_capacity(
                entry_count / snap_shards + usize::from(s < entry_count % snap_shards),
            )
        })
        .collect();
    // The entry-table section bounds were validated with its checksum,
    // so records parse from a fixed slice — `chunks_exact` gives the
    // optimizer fixed-size windows with no per-field bounds checks.
    // Whole-arena views made once; per-entry views derive via `slice`
    // (pointer arithmetic + an `Arc` bump, no dyn dispatch).
    let text_view = SharedBytes::new(Arc::clone(&owner), texts.off, texts.len)
        .expect("section bounds validated");
    let phon_view = SharedBytes::new(Arc::clone(&owner), phonemes.off, phonemes.len)
        .expect("section bounds validated");
    let clus_view = SharedBytes::new(Arc::clone(&owner), clusters.off, clusters.len)
        .expect("section bounds validated");
    // v1 images have no embedding arena: every entry gets an empty view
    // (the store treats that as "build later").
    let embed_view = embed_sec.map(|sec| {
        SharedBytes::new(Arc::clone(&owner), sec.off, sec.len).expect("section bounds validated")
    });
    let empty_embed =
        SharedBytes::new(Arc::clone(&owner), 0, 0).expect("zero-length view is always in bounds");
    let entry_table = &image[entries.off..entries.off + entries.len];
    for (g, rec) in entry_table.chunks_exact(ENTRY_RECORD).enumerate() {
        let text_off = u32::from_le_bytes(rec[0..4].try_into().expect("record")) as usize;
        let phon_off = u32::from_le_bytes(rec[4..8].try_into().expect("record")) as usize;
        let text_len = u16::from_le_bytes(rec[8..10].try_into().expect("record")) as usize;
        let phon_len = u16::from_le_bytes(rec[10..12].try_into().expect("record")) as usize;
        let lang = rec[12];
        let oob = |what: &str| err(format!("entry {g}: {what} window is out of bounds"));
        let text_end = text_off
            .checked_add(text_len)
            .filter(|&e| e <= texts.len)
            .ok_or_else(|| oob("text"))?;
        if !text_arena.is_char_boundary(text_off) || !text_arena.is_char_boundary(text_end) {
            return Err(err(format!(
                "entry {g}: text window splits a UTF-8 sequence"
            )));
        }
        let phonemes_ok = phon_off
            .checked_add(phon_len)
            .filter(|&e| e <= phonemes.len)
            .ok_or_else(|| oob("phoneme"))?;
        let _ = phonemes_ok;
        let language = *Language::ALL
            .get(lang as usize)
            .ok_or_else(|| err(format!("entry {g}: unknown language tag {lang}")))?;
        let embed = match &embed_view {
            Some(view) => {
                // Verify the stored embedding against a recompute from
                // the (already-validated) phoneme window — same
                // discipline as the cluster arena: a mismatch means the
                // image was written under a different cluster table or
                // doctored, and a wrong embedding could silently drop
                // true matches.
                let stored = &image[embed_sec.expect("view implies section").off + g * EMBED_DIM..]
                    [..EMBED_DIM];
                let expect = operator
                    .embedder()
                    .embed_ids(&phon_arena[phon_off..phon_off + phon_len]);
                if stored != expect {
                    return Err(err(format!(
                        "entry {g}: stored embedding disagrees with the configured embedder \
                         (snapshot written under a different MatchConfig?)"
                    )));
                }
                view.slice(g * EMBED_DIM, EMBED_DIM)
                    .expect("bounds checked")
            }
            None => empty_embed.clone(),
        };
        striped[g % snap_shards].push(SharedEntry {
            text: text_view.slice(text_off, text_len).expect("bounds checked"),
            language,
            phonemes: phon_view.slice(phon_off, phon_len).expect("bounds checked"),
            clusters: clus_view.slice(phon_off, phon_len).expect("bounds checked"),
            embed,
        });
    }
    store.import_shared(striped);
    Ok(LoadedImage {
        store,
        builds,
        lsn,
        bytes,
        pending_embeds: embed_sec.is_none() && entry_count > 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lexequal::Language;

    fn populated(shards: usize) -> ShardedStore {
        let store = ShardedStore::new(MatchConfig::default(), shards);
        store
            .extend(
                [
                    ("Nehru", Language::English),
                    ("नेहरु", Language::Hindi),
                    ("நேரு", Language::Tamil),
                    ("Gandhi", Language::English),
                    ("Krishnan", Language::English),
                ]
                .map(|(t, l)| (t.to_owned(), l)),
            )
            .unwrap();
        store.build(BuildSpec::Qgram {
            q: 3,
            mode: QgramMode::Strict,
        });
        store.build(BuildSpec::PhoneticIndex);
        store
    }

    #[test]
    fn encode_load_round_trips_entries_builds_and_lsn() {
        let store = populated(2);
        let image = encode(&store, 42).unwrap();
        assert!(is_binary(&image));
        assert_eq!(peek(&image), Some((42, 5)));
        let loaded = load_bytes(MatchConfig::default(), None, image).unwrap();
        assert_eq!(loaded.lsn, 42);
        assert_eq!(loaded.store.len(), 5);
        assert_eq!(loaded.store.shards(), 2);
        assert_eq!(loaded.builds, store.built_specs());
        for id in 0..5u32 {
            let a = store.get(id).unwrap();
            let b = loaded.store.get(id).unwrap();
            assert_eq!(a.text, b.text, "id {id}");
            assert_eq!(a.language, b.language, "id {id}");
            assert_eq!(a.phonemes, b.phonemes, "id {id}");
        }
    }

    #[test]
    fn shard_pin_mismatch_names_both_formats() {
        let store = populated(2);
        let image = encode(&store, 0).unwrap();
        let msg = match load_bytes(MatchConfig::default(), Some(3), image) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("3-shard load of a 2-shard image must fail"),
        };
        assert!(msg.contains("2 shard"), "{msg}");
        assert!(msg.contains("3 were requested"), "{msg}");
        assert!(msg.contains("JSON"), "{msg}");
        assert!(msg.contains("rebalancing"), "{msg}");
    }

    #[test]
    fn sections_are_aligned_and_checksummed() {
        let store = populated(1);
        let image = encode(&store, 0).unwrap();
        let (_, _, _, sections, embed) = validate_frame(&image).unwrap();
        for s in sections {
            assert_eq!(s.off % 8, 0);
        }
        let embed = embed.expect("v2 images carry an embedding arena");
        assert_eq!(embed.off % 8, 0);
        assert_eq!(embed.len, store.len() * EMBED_DIM);
    }

    #[test]
    fn loaded_entries_carry_validated_embeddings() {
        let store = populated(2);
        let image = encode(&store, 0).unwrap();
        let loaded = load_bytes(MatchConfig::default(), None, image).unwrap();
        assert!(!loaded.pending_embeds);
        assert_eq!(loaded.store.pending_embeddings(), 0);
    }

    #[test]
    fn empty_store_round_trips() {
        let store = ShardedStore::new(MatchConfig::default(), 3);
        let image = encode(&store, 7).unwrap();
        let loaded = load_bytes(MatchConfig::default(), None, image).unwrap();
        assert_eq!(loaded.store.len(), 0);
        assert_eq!(loaded.store.shards(), 3);
        assert_eq!(loaded.lsn, 7);
    }
}
