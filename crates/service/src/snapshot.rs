//! Snapshot persistence for the sharded serving store.
//!
//! The paper's systems claim is that LexEQUAL matching runs over
//! *persistent on-disk* database structures, not throwaway in-memory
//! ones (§2.3, contrasting Zobel & Dart's in-memory evaluation). This
//! module is that persistence boundary for the serving layer: a
//! [`StoreSnapshot`] captures a [`ShardedStore`]'s full state — shard
//! count, the access paths built, and every shard's entries (text,
//! language tag, phonemic rendering, cluster-id vector) in local-id
//! order — as one versioned, self-describing JSON document written and
//! read by the in-tree [`lexequal_mdb::Json`] codec. On load the
//! entries go back to their original shards verbatim (so every global
//! id survives) and the recorded access paths are rebuilt by parallel
//! per-shard bulk load, the same recovery strategy [`lexequal_mdb`]'s
//! own snapshots use for secondary indexes: a `lexequald --snapshot`
//! cold start is a file read plus an index rebuild instead of a full
//! synthetic-corpus G2P pass.
//!
//! ## Integrity
//!
//! Three checks make a load trustworthy rather than hopeful:
//!
//! * a **corpus fingerprint** (FNV-1a over every entry in global-id
//!   order) stored in the header and recomputed on load, so a truncated
//!   or edited document that still parses is rejected;
//! * **cluster-id validation** — every stored cluster-id vector is
//!   recompared against the loading configuration's cost model, so a
//!   snapshot written under a different clustering cannot silently
//!   change match semantics;
//! * a **shard-count check** — restoring an `N`-shard snapshot into an
//!   `M ≠ N` shard store is a clean error pointing at the still-open
//!   re-sharding work, never a scrambled stripe.
//!
//! The invariant all this buys (pinned by
//! `tests/snapshot_roundtrip.rs`): search results over a reloaded store
//! are bit-identical to the store that wrote the snapshot, on all four
//! access paths.

use crate::shard::{BuildSpec, ShardedStore};
use lexequal::store::NameEntry;
use lexequal::{Language, LexEqual, MatchConfig, QgramMode};
use lexequal_mdb::{DbError, Json};
use std::io::{Read, Write};

/// Current store-snapshot format version.
pub const STORE_SNAPSHOT_VERSION: u32 = 1;

/// The format tag every store snapshot leads with, so a stray
/// `mdb::snapshot` document (same codec, different schema) is rejected
/// with a clear message instead of a field-by-field decode failure.
pub const STORE_SNAPSHOT_FORMAT: &str = "lexequal-store-snapshot";

fn decode_err(what: impl std::fmt::Display) -> DbError {
    DbError::Parse(format!("store snapshot decode: {what}"))
}

/// One persisted entry: what [`NameEntry`] carries plus its cluster-id
/// vector (recomputed and cross-checked on load).
#[derive(Debug, Clone)]
struct SnapEntry {
    text: String,
    language: Language,
    /// IPA rendering of the phoneme string (`Display`/`FromStr` round-trip
    /// exactly, including merge-ambiguous junctions — see
    /// `lexequal_phoneme::string`).
    phonemes: String,
    cluster_ids: Vec<u8>,
}

/// A serializable image of a [`ShardedStore`]: header (version, shard
/// count, build specs, corpus fingerprint) plus per-shard entry
/// sections in local-id order.
#[derive(Debug)]
pub struct StoreSnapshot {
    /// Format version for forward compatibility.
    pub version: u32,
    shards: usize,
    builds: Vec<BuildSpec>,
    fingerprint: u64,
    /// WAL LSN this snapshot covers (0 = no WAL): recovery replays the
    /// log strictly past this point, and a replica restored from the
    /// snapshot resumes the stream here. Older documents without the
    /// field read back as 0.
    lsn: u64,
    sections: Vec<Vec<SnapEntry>>,
}

/// FNV-1a 64-bit, the in-tree fingerprint primitive (no dependencies).
/// The binary snapshot format's section checksums use a word-folded
/// variant of the same construction (see `mmapstore::section_checksum`).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Fingerprint the corpus in *global-id* order, so the hash pins both
/// entry contents and the round-robin striping across shards.
fn fingerprint(sections: &[Vec<SnapEntry>]) -> u64 {
    let n = sections.len().max(1);
    let total: usize = sections.iter().map(Vec::len).sum();
    let mut h = Fnv::new();
    for g in 0..total {
        let e = &sections[g % n][g / n];
        h.write(e.text.as_bytes());
        h.write(&[0xff]);
        h.write(e.language.to_string().as_bytes());
        h.write(&[0xff]);
        h.write(e.phonemes.as_bytes());
        h.write(&[0xfe]);
    }
    h.0
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if s.len() % 2 != 0 {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(s.get(i..i + 2)?, 16).ok())
        .collect()
}

fn build_to_json(b: &BuildSpec) -> Json {
    match b {
        BuildSpec::Qgram { q, mode } => Json::Obj(vec![
            ("path".to_owned(), Json::Str("qgram".to_owned())),
            ("q".to_owned(), Json::Int(*q as i64)),
            (
                "mode".to_owned(),
                Json::Str(
                    match mode {
                        QgramMode::Strict => "strict",
                        QgramMode::PaperFaithful => "paper_faithful",
                    }
                    .to_owned(),
                ),
            ),
        ]),
        BuildSpec::PhoneticIndex => {
            Json::Obj(vec![("path".to_owned(), Json::Str("phonidx".to_owned()))])
        }
        BuildSpec::BkTree => Json::Obj(vec![("path".to_owned(), Json::Str("bktree".to_owned()))]),
    }
}

fn build_from_json(j: &Json) -> Result<BuildSpec, DbError> {
    let path = j
        .get("path")
        .and_then(Json::as_str)
        .ok_or_else(|| decode_err("build spec missing path"))?;
    match path {
        "qgram" => {
            let q = j
                .get("q")
                .and_then(Json::as_i64)
                .filter(|&q| q > 0)
                .ok_or_else(|| decode_err("qgram build spec missing q"))?;
            let mode = match j.get("mode").and_then(Json::as_str) {
                Some("strict") => QgramMode::Strict,
                Some("paper_faithful") => QgramMode::PaperFaithful,
                _ => return Err(decode_err("qgram build spec has an unknown mode")),
            };
            Ok(BuildSpec::Qgram {
                q: q as usize,
                mode,
            })
        }
        "phonidx" => Ok(BuildSpec::PhoneticIndex),
        "bktree" => Ok(BuildSpec::BkTree),
        other => Err(decode_err(format!("unknown build path {other:?}"))),
    }
}

fn entry_to_json(e: &SnapEntry) -> Json {
    Json::Arr(vec![
        Json::Str(e.text.clone()),
        Json::Str(e.language.to_string()),
        Json::Str(e.phonemes.clone()),
        Json::Str(hex_encode(&e.cluster_ids)),
    ])
}

fn entry_from_json(j: &Json) -> Result<SnapEntry, DbError> {
    let fields = j.as_arr().ok_or_else(|| decode_err("malformed entry"))?;
    let [text, language, phonemes, clusters] = fields else {
        return Err(decode_err("entry does not have 4 fields"));
    };
    let text = text
        .as_str()
        .ok_or_else(|| decode_err("entry text not a string"))?
        .to_owned();
    let language: Language = language
        .as_str()
        .ok_or_else(|| decode_err("entry language not a string"))?
        .parse()
        .map_err(decode_err)?;
    let phonemes = phonemes
        .as_str()
        .ok_or_else(|| decode_err("entry phonemes not a string"))?
        .to_owned();
    let cluster_ids = clusters
        .as_str()
        .and_then(hex_decode)
        .ok_or_else(|| decode_err("entry cluster ids not a hex string"))?;
    Ok(SnapEntry {
        text,
        language,
        phonemes,
        cluster_ids,
    })
}

impl StoreSnapshot {
    /// Capture a store's entries (per shard, in local-id order), built
    /// access paths and corpus fingerprint. The snapshot carries no WAL
    /// anchor (lsn 0) — see [`capture_with_lsn`](Self::capture_with_lsn).
    pub fn capture(store: &ShardedStore) -> StoreSnapshot {
        Self::capture_with_lsn(store, 0)
    }

    /// [`capture`](Self::capture), recording the WAL LSN the store state
    /// corresponds to. The caller must hold writes off (the daemon
    /// captures under its commit lock) so the anchor is exact.
    pub fn capture_with_lsn(store: &ShardedStore, lsn: u64) -> StoreSnapshot {
        let operator = LexEqual::new(store.config().clone());
        let sections: Vec<Vec<SnapEntry>> = store
            .export_shards()
            .into_iter()
            .map(|entries| {
                entries
                    .into_iter()
                    .map(|e| SnapEntry {
                        cluster_ids: operator.cluster_ids(&e.phonemes),
                        phonemes: e.phonemes.to_string(),
                        text: e.text,
                        language: e.language,
                    })
                    .collect()
            })
            .collect();
        StoreSnapshot {
            version: STORE_SNAPSHOT_VERSION,
            shards: store.shards(),
            builds: store.built_specs(),
            fingerprint: fingerprint(&sections),
            lsn,
            sections,
        }
    }

    /// Shard count the snapshot was written with (and restores to).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// WAL LSN this snapshot covers (0 = no WAL).
    pub fn lsn(&self) -> u64 {
        self.lsn
    }

    /// Total names across all shard sections.
    pub fn len(&self) -> usize {
        self.sections.iter().map(Vec::len).sum()
    }

    /// Whether the snapshot holds no names.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The access paths the snapshot will rebuild on restore.
    pub fn builds(&self) -> &[BuildSpec] {
        &self.builds
    }

    /// Restore into a fresh store with the snapshot's own shard count.
    ///
    /// Entries go back to their original shards verbatim (every global
    /// id is preserved), stored cluster-id vectors are validated against
    /// `config`'s cost model, and the recorded access paths are rebuilt
    /// by parallel per-shard bulk load.
    pub fn restore(&self, config: MatchConfig) -> Result<ShardedStore, DbError> {
        self.restore_with_shards(config, self.shards)
    }

    /// [`restore`](Self::restore), but demanding a specific shard count:
    /// a snapshot can only be loaded at the shard count it was written
    /// with — anything else needs re-sharding (ROADMAP "Shard
    /// rebalancing", still open) and errors cleanly here.
    pub fn restore_with_shards(
        &self,
        config: MatchConfig,
        shards: usize,
    ) -> Result<ShardedStore, DbError> {
        if self.version != STORE_SNAPSHOT_VERSION {
            return Err(DbError::Unsupported(format!(
                "store snapshot version {} (expected {STORE_SNAPSHOT_VERSION})",
                self.version
            )));
        }
        if shards != self.shards {
            return Err(DbError::Unsupported(format!(
                "snapshot holds {} shard(s) but {shards} were requested; \
                 re-striping at load is not supported in the binary or JSON \
                 snapshot formats (ROADMAP: shard rebalancing) — load with \
                 {} shard(s) or rebuild from the corpus",
                self.shards, self.shards
            )));
        }
        if self.shards == 0 || self.sections.len() != self.shards {
            return Err(decode_err("shard sections do not match the header count"));
        }
        let total = self.len();
        for (s, section) in self.sections.iter().enumerate() {
            // Round-robin striping: shard s holds the global ids ≡ s (mod N).
            let expected = (total + self.shards - 1 - s) / self.shards;
            if section.len() != expected {
                return Err(decode_err(format!(
                    "shard {s} holds {} entries where the round-robin stripe \
                     requires {expected}",
                    section.len()
                )));
            }
        }
        if fingerprint(&self.sections) != self.fingerprint {
            return Err(decode_err(
                "corpus fingerprint mismatch — the snapshot is corrupt or was modified",
            ));
        }

        // Parse phonemes and validate cluster ids, one scoped thread per
        // shard section (restore's CPU-heavy part runs in parallel).
        let operator = LexEqual::new(config.clone());
        let decoded: Vec<Result<Vec<NameEntry>, DbError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .sections
                .iter()
                .enumerate()
                .map(|(s, section)| {
                    let operator = &operator;
                    scope.spawn(move || {
                        section
                            .iter()
                            .enumerate()
                            .map(|(l, e)| {
                                let phonemes = e.phonemes.parse().map_err(|err| {
                                    decode_err(format!(
                                        "shard {s} entry {l}: bad phoneme string: {err}"
                                    ))
                                })?;
                                if operator.cluster_ids(&phonemes) != e.cluster_ids {
                                    return Err(DbError::Unsupported(format!(
                                        "shard {s} entry {l} ({:?}): stored cluster ids \
                                         disagree with the configured cost model — the \
                                         snapshot was written under a different MatchConfig",
                                        e.text
                                    )));
                                }
                                Ok(NameEntry {
                                    text: e.text.clone(),
                                    language: e.language,
                                    phonemes,
                                })
                            })
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic in section decode"))
                .collect()
        });
        let sections = decoded.into_iter().collect::<Result<Vec<_>, _>>()?;

        let store = ShardedStore::new(config, self.shards);
        store.import_shards(sections);
        for &spec in &self.builds {
            store.build(spec);
        }
        Ok(store)
    }

    /// The JSON document form of this snapshot.
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "format".to_owned(),
                Json::Str(STORE_SNAPSHOT_FORMAT.to_owned()),
            ),
            ("version".to_owned(), Json::Int(self.version as i64)),
            ("shards".to_owned(), Json::Int(self.shards as i64)),
            ("names".to_owned(), Json::Int(self.len() as i64)),
            ("lsn".to_owned(), Json::Int(self.lsn as i64)),
            (
                "fingerprint".to_owned(),
                Json::Str(format!("{:016x}", self.fingerprint)),
            ),
            (
                "builds".to_owned(),
                Json::Arr(self.builds.iter().map(build_to_json).collect()),
            ),
            (
                "sections".to_owned(),
                Json::Arr(
                    self.sections
                        .iter()
                        .map(|section| Json::Arr(section.iter().map(entry_to_json).collect()))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(doc: &Json) -> Result<StoreSnapshot, DbError> {
        match doc.get("format").and_then(Json::as_str) {
            Some(STORE_SNAPSHOT_FORMAT) => {}
            Some(other) => {
                return Err(decode_err(format!(
                    "document is a {other:?}, not a {STORE_SNAPSHOT_FORMAT:?}"
                )))
            }
            None => return Err(decode_err("missing format tag")),
        }
        let version = doc
            .get("version")
            .and_then(Json::as_i64)
            .filter(|&v| v >= 0)
            .ok_or_else(|| decode_err("missing version"))? as u32;
        let shards = doc
            .get("shards")
            .and_then(Json::as_i64)
            .filter(|&s| s > 0)
            .ok_or_else(|| decode_err("missing or non-positive shard count"))?
            as usize;
        let fingerprint = doc
            .get("fingerprint")
            .and_then(Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| decode_err("missing fingerprint"))?;
        let builds = doc
            .get("builds")
            .and_then(Json::as_arr)
            .ok_or_else(|| decode_err("missing builds"))?
            .iter()
            .map(build_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let sections = doc
            .get("sections")
            .and_then(Json::as_arr)
            .ok_or_else(|| decode_err("missing sections"))?
            .iter()
            .map(|section| {
                section
                    .as_arr()
                    .ok_or_else(|| decode_err("malformed section"))?
                    .iter()
                    .map(entry_from_json)
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        let names = doc
            .get("names")
            .and_then(Json::as_i64)
            .ok_or_else(|| decode_err("missing names count"))?;
        let total: usize = sections.iter().map(Vec::len).sum();
        if names != total as i64 {
            return Err(decode_err(format!(
                "header says {names} names but the sections hold {total}"
            )));
        }
        // Pre-replication documents carry no lsn; they anchor at 0.
        let lsn = doc
            .get("lsn")
            .and_then(Json::as_i64)
            .filter(|&l| l >= 0)
            .unwrap_or(0) as u64;
        Ok(StoreSnapshot {
            version,
            shards,
            builds,
            fingerprint,
            lsn,
            sections,
        })
    }

    /// Serialize to a writer as JSON.
    pub fn write_to(&self, mut w: impl Write) -> Result<(), DbError> {
        w.write_all(self.to_json().render().as_bytes())
            .map_err(|e| DbError::Unsupported(format!("store snapshot encode: {e}")))
    }

    /// Deserialize from a reader.
    pub fn read_from(mut r: impl Read) -> Result<StoreSnapshot, DbError> {
        let mut text = String::new();
        r.read_to_string(&mut text)
            .map_err(|e| decode_err(format!("read: {e}")))?;
        let doc = Json::parse(&text).map_err(decode_err)?;
        StoreSnapshot::from_json(&doc)
    }

    /// Write to `path` atomically: the document lands in a same-directory
    /// temp file, is fsynced, then renamed over the target — a reader
    /// (or a crash) never sees a half-written snapshot.
    pub fn write_to_file_atomic(&self, path: impl AsRef<std::path::Path>) -> Result<(), DbError> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        let write = (|| {
            let f = std::fs::File::create(&tmp)
                .map_err(|e| DbError::Unsupported(format!("store snapshot create: {e}")))?;
            let mut w = std::io::BufWriter::new(f);
            self.write_to(&mut w)?;
            use std::io::Write as _;
            w.flush()
                .and_then(|()| w.get_ref().sync_all())
                .map_err(|e| DbError::Unsupported(format!("store snapshot sync: {e}")))?;
            std::fs::rename(&tmp, path)
                .map_err(|e| DbError::Unsupported(format!("store snapshot rename: {e}")))
        })();
        if write.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        write
    }
}

impl ShardedStore {
    /// Persist this store (entries, striping, built access paths) to a
    /// writer as one versioned JSON document.
    pub fn save_to(&self, w: impl Write) -> Result<(), DbError> {
        StoreSnapshot::capture(self).write_to(w)
    }

    /// Persist this store to a file (see [`StoreSnapshot`]).
    pub fn save_to_file(&self, path: impl AsRef<std::path::Path>) -> Result<(), DbError> {
        let f = std::fs::File::create(path)
            .map_err(|e| DbError::Unsupported(format!("store snapshot create: {e}")))?;
        self.save_to(std::io::BufWriter::new(f))
    }

    /// Load a store previously saved with [`save_to`](Self::save_to).
    ///
    /// `shards` pins the shard count: `None` accepts whatever the
    /// snapshot was written with, `Some(m)` errors cleanly unless the
    /// snapshot holds exactly `m` shards (re-sharding on load is not
    /// supported — ROADMAP "Shard rebalancing").
    pub fn load_from(
        config: MatchConfig,
        shards: Option<usize>,
        r: impl Read,
    ) -> Result<ShardedStore, DbError> {
        let snap = StoreSnapshot::read_from(r)?;
        match shards {
            Some(m) => snap.restore_with_shards(config, m),
            None => snap.restore(config),
        }
    }

    /// Load a store from a file written by
    /// [`save_to_file`](Self::save_to_file).
    pub fn load_from_file(
        config: MatchConfig,
        shards: Option<usize>,
        path: impl AsRef<std::path::Path>,
    ) -> Result<ShardedStore, DbError> {
        let f = std::fs::File::open(path)
            .map_err(|e| DbError::Unsupported(format!("store snapshot open: {e}")))?;
        ShardedStore::load_from(config, shards, std::io::BufReader::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lexequal::SearchMethod;

    fn demo_store(shards: usize) -> ShardedStore {
        let store = ShardedStore::new(MatchConfig::default(), shards);
        store
            .extend(
                [
                    ("Nehru", Language::English),
                    ("नेहरु", Language::Hindi),
                    ("நேரு", Language::Tamil),
                    ("Nero", Language::English),
                    ("Gandhi", Language::English),
                    ("गांधी", Language::Hindi),
                    ("Krishnan", Language::English),
                ]
                .map(|(t, l)| (t.to_owned(), l)),
            )
            .unwrap();
        store.build(BuildSpec::Qgram {
            q: 3,
            mode: QgramMode::Strict,
        });
        store.build(BuildSpec::PhoneticIndex);
        store.build(BuildSpec::BkTree);
        store
    }

    #[test]
    fn memory_round_trip_preserves_entries_ids_and_builds() {
        let store = demo_store(3);
        let mut buf = Vec::new();
        store.save_to(&mut buf).unwrap();
        let loaded = ShardedStore::load_from(MatchConfig::default(), None, buf.as_slice()).unwrap();
        assert_eq!(loaded.shards(), 3);
        assert_eq!(loaded.len(), store.len());
        for id in 0..store.len() as u32 {
            let (a, b) = (store.get(id).unwrap(), loaded.get(id).unwrap());
            assert_eq!(a.text, b.text, "id {id}");
            assert_eq!(a.language, b.language, "id {id}");
            assert_eq!(a.phonemes, b.phonemes, "id {id}");
        }
        assert_eq!(loaded.built_specs(), store.built_specs());
        assert_eq!(loaded.built_specs().len(), 3);
    }

    #[test]
    fn loaded_store_searches_bit_identically() {
        let store = demo_store(2);
        let mut buf = Vec::new();
        store.save_to(&mut buf).unwrap();
        let loaded = ShardedStore::load_from(MatchConfig::default(), None, buf.as_slice()).unwrap();
        for method in [
            SearchMethod::Scan,
            SearchMethod::Qgram,
            SearchMethod::PhoneticIndex,
            SearchMethod::BkTree,
        ] {
            for (q, l) in [("Nehru", Language::English), ("गांधी", Language::Hindi)] {
                for e in [0.0, 0.35, 0.45] {
                    let a = store.search(q, l, e, method).unwrap();
                    let b = loaded.search(q, l, e, method).unwrap();
                    assert_eq!(a, b, "{q} e={e} {method:?}");
                }
            }
        }
    }

    #[test]
    fn shard_count_mismatch_is_a_clean_error() {
        let store = demo_store(2);
        let mut buf = Vec::new();
        store.save_to(&mut buf).unwrap();
        let Err(err) = ShardedStore::load_from(MatchConfig::default(), Some(3), buf.as_slice())
        else {
            panic!("2-shard snapshot into 3 shards must fail");
        };
        let msg = err.to_string();
        assert!(msg.contains("2 shard"), "{msg}");
        assert!(msg.contains("3 were requested"), "{msg}");
        assert!(msg.contains("rebalancing"), "{msg}");
        // Pinning the matching count loads fine.
        assert!(ShardedStore::load_from(MatchConfig::default(), Some(2), buf.as_slice()).is_ok());
    }

    #[test]
    fn empty_store_round_trips() {
        let store = ShardedStore::new(MatchConfig::default(), 2);
        let mut buf = Vec::new();
        store.save_to(&mut buf).unwrap();
        let loaded = ShardedStore::load_from(MatchConfig::default(), None, buf.as_slice()).unwrap();
        assert!(loaded.is_empty());
        assert_eq!(loaded.shards(), 2);
        assert!(loaded.built_specs().is_empty());
    }

    #[test]
    fn appends_clear_recorded_builds() {
        let store = demo_store(2);
        assert_eq!(store.built_specs().len(), 3);
        store.insert("Bose", Language::English).unwrap();
        assert!(
            store.built_specs().is_empty(),
            "an append invalidates every access path, so the snapshot must not record them"
        );
    }

    #[test]
    fn tampered_document_is_rejected_by_the_fingerprint() {
        let store = demo_store(2);
        let mut buf = Vec::new();
        store.save_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Swap one stored name for another of the same length: still
        // valid JSON, still a valid stripe — only the fingerprint knows.
        let tampered = text.replace("Nero", "Nerf");
        assert_ne!(text, tampered);
        let Err(err) = ShardedStore::load_from(MatchConfig::default(), None, tampered.as_bytes())
        else {
            panic!("tampered snapshot must not load");
        };
        assert!(err.to_string().contains("fingerprint"), "{err}");
    }

    #[test]
    fn different_cost_model_is_rejected_via_cluster_ids() {
        let store = demo_store(2);
        let mut buf = Vec::new();
        store.save_to(&mut buf).unwrap();
        // A one-cluster-per-phoneme table clusters nothing: every stored
        // cluster-id vector disagrees with it.
        let other = MatchConfig::default().with_clusters(lexequal::ClusterTable::identity());
        let Err(err) = ShardedStore::load_from(other, None, buf.as_slice()) else {
            panic!("snapshot under a different clustering must not load");
        };
        assert!(err.to_string().contains("cost model"), "{err}");
    }

    #[test]
    fn corrupt_and_truncated_documents_error_not_panic() {
        let store = demo_store(2);
        let mut buf = Vec::new();
        store.save_to(&mut buf).unwrap();
        let full = String::from_utf8(buf).unwrap();
        let mut cases = vec![
            String::new(),
            "{}".to_owned(),
            "not json".to_owned(),
            r#"{"format":"lexequal-store-snapshot"}"#.to_owned(),
            r#"{"format":"mdb-snapshot","version":1}"#.to_owned(),
        ];
        // Truncations at several byte offsets (cut inside the document).
        for frac in [4, 2] {
            cases.push(full[..full.len() / frac].to_owned());
        }
        for src in cases {
            let r = ShardedStore::load_from(MatchConfig::default(), None, src.as_bytes());
            assert!(
                r.is_err(),
                "{:?}... should be rejected",
                &src[..src.len().min(40)]
            );
        }
    }

    #[test]
    fn hex_round_trips() {
        for v in [vec![], vec![0u8], vec![0x0a, 0xff, 0x00, 0x7f]] {
            assert_eq!(hex_decode(&hex_encode(&v)).unwrap(), v);
        }
        assert!(hex_decode("abc").is_none());
        assert!(hex_decode("zz").is_none());
    }
}
