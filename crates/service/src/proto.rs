//! The `lexequald` wire protocol: line-oriented, UTF-8, human-typeable.
//!
//! Every request is one line; every request gets one response line
//! (except `BATCH`, which gets exactly one line per batched query, in
//! order). Grammar (`-` means "use the server default"):
//!
//! ```text
//! ADD <lang|-> <text...>
//! BUILD QGRAM <q> STRICT|PAPER
//! BUILD PHONIDX
//! BUILD BKTREE
//! BUILD ALL
//! MATCH <lang|-> <method|-> <threshold|-> <text...>
//! BATCH <lang> <method|-> <threshold|-> <text>|<text>|...
//! STATS
//! SAVE [JSON] [path]
//! COMPACT
//! REPL HELLO <lsn> [MMAP]
//! QUIT
//! ```
//!
//! where `<lang>` is a language name or ISO code (`english`, `hi`, …)
//! and `<method>` is `scan`, `qgram`, `phonidx` or `bktree`. `-` in the
//! language slot means **untagged**: the server profiles the text's
//! Unicode script and routes it itself — one converter when the script
//! is unambiguous, a fan-out across every language sharing the script
//! (Latin → English/French/Spanish, results unioned) otherwise; scripts
//! without a converter (Hangul, Thai) answer `NORESOURCE`. An untagged
//! `ADD` commits (and WAL-logs) the *resolved* language. `BATCH` stays
//! tagged. Responses:
//!
//! ```text
//! OK <id>                                      (ADD)
//! OK built=<what>                              (BUILD)
//! OK n=<k> verified=<v> method=<m> ids=<a,b,…> (MATCH / each BATCH item)
//! OK <key>=<value> ...                         (STATS, single line)
//! OK saved=<path> names=<n> lsn=<l>            (SAVE)
//! OK compacted checkpoint_lsn=<c> horizon=<h> dropped=<n> wal_bytes_live=<b>  (COMPACT)
//! NORESOURCE <lang>
//! NOTBUILT <method>
//! ERR <message>
//! BYE                                          (QUIT)
//! ```
//!
//! `SAVE` snapshots the running store to disk (atomically, temp file +
//! rename) in the binary mmap format; `SAVE JSON` writes the
//! human-readable document instead (debug/export). Without a path it
//! uses the daemon's configured snapshot path. `COMPACT` (primaries
//! with `--wal` only) runs one checkpoint-and-truncate cycle by hand:
//! a durable checkpoint at the WAL head, then the log prefix every
//! in-grace replica has acknowledged is dropped — the same cycle the
//! `--wal-max-bytes` trigger runs automatically (see
//! [`crate::repl::Replicator::compact`]). `REPL HELLO <lsn> [MMAP]`
//! is not a request/response pair: on a primary started with `--wal` it
//! converts the connection into a replication stream (see
//! [`crate::repl`] for the stream grammar and the snapshot-format
//! negotiation the optional `MMAP` capability token drives); anywhere
//! else it draws an `ERR`.

use crate::metrics::{method_index, method_name, ALL_METHODS};
use crate::service::{AutoMatchRequest, MatchOutcome, MatchRequest, StatsSnapshot};
use lexequal::{Language, QgramMode, SearchMethod};
use lexequal_g2p::Script;

/// Why incremental framing gave up on a connection's byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// A line ran past the configured maximum without a newline (the
    /// payload is the limit in bytes).
    Oversized(usize),
    /// A completed line was not valid UTF-8.
    Utf8,
}

/// Incremental line framing over a nonblocking byte stream.
///
/// Bytes arrive in whatever chunks the socket delivers —
/// [`push`](Self::push) buffers them, [`next_line`](Self::next_line)
/// yields each completed line exactly once (trailing `\r` stripped, so
/// both `\n` and `\r\n` clients work). A line is *complete* only when
/// its newline has arrived; a partial tail survives across any number
/// of reads. Lines longer than `max_line` bytes are rejected rather
/// than buffered without bound.
#[derive(Debug)]
pub struct LineFramer {
    buf: Vec<u8>,
    /// Start of the current (unconsumed) line within `buf`.
    start: usize,
    /// Scan resume point — bytes before this are known newline-free.
    scan: usize,
    max_line: usize,
}

impl LineFramer {
    /// A framer rejecting lines longer than `max_line` bytes.
    pub fn new(max_line: usize) -> Self {
        LineFramer {
            buf: Vec::new(),
            start: 0,
            scan: 0,
            max_line,
        }
    }

    /// Buffer freshly read bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as lines.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// The next completed line, if one has fully arrived.
    pub fn next_line(&mut self) -> Result<Option<String>, FrameError> {
        while self.scan < self.buf.len() {
            if self.buf[self.scan] == b'\n' {
                let mut end = self.scan;
                if end > self.start && self.buf[end - 1] == b'\r' {
                    end -= 1;
                }
                if end - self.start > self.max_line {
                    return Err(FrameError::Oversized(self.max_line));
                }
                let line = std::str::from_utf8(&self.buf[self.start..end])
                    .map_err(|_| FrameError::Utf8)?
                    .to_owned();
                self.scan += 1;
                self.start = self.scan;
                if self.start == self.buf.len() {
                    self.buf.clear();
                    self.start = 0;
                    self.scan = 0;
                }
                return Ok(Some(line));
            }
            self.scan += 1;
        }
        if self.buffered() > self.max_line {
            return Err(FrameError::Oversized(self.max_line));
        }
        // Nothing complete: drop consumed bytes so the buffer only ever
        // holds the partial tail.
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.scan -= self.start;
            self.start = 0;
        }
        Ok(None)
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `ADD <lang> <text...>`
    Add {
        /// Language of the name.
        language: Language,
        /// The name as written.
        text: String,
    },
    /// `ADD - <text...>` — untagged: the server resolves the language by
    /// script profiling and commits under the resolved tag.
    AddAuto {
        /// The name as written.
        text: String,
    },
    /// `BUILD QGRAM <q> STRICT|PAPER`
    BuildQgram {
        /// q-gram length.
        q: usize,
        /// Filtering mode.
        mode: QgramMode,
    },
    /// `BUILD PHONIDX`
    BuildPhonidx,
    /// `BUILD BKTREE`
    BuildBktree,
    /// `BUILD ALL` (q-gram defaults to `q=3 STRICT`).
    BuildAll,
    /// `MATCH <lang> <method|-> <threshold|-> <text...>`
    Match(MatchRequest),
    /// `MATCH - <method|-> <threshold|-> <text...>` — untagged: script
    /// profiling routes to one converter or a fan-out set.
    MatchAuto(AutoMatchRequest),
    /// `BATCH <lang> <method|-> <threshold|-> <t1>|<t2>|...`
    Batch(Vec<MatchRequest>),
    /// `STATS`
    Stats,
    /// `SAVE [JSON] [path]` — snapshot the running store on demand.
    Save {
        /// Target path; `None` uses the daemon's configured default.
        path: Option<String>,
        /// `true` for `SAVE JSON …`: write the human-readable debug/
        /// export document instead of the default binary mmap image.
        json: bool,
    },
    /// `REPL HELLO <lsn> [MMAP]` — a replica opening the stream,
    /// carrying the last LSN it applied (0 = fresh) and optionally
    /// advertising that it understands the binary mmap snapshot format.
    /// A bare `REPL HELLO <lsn>` (a replica from before the binary
    /// format existed) is served the JSON document instead, so rolling
    /// upgrades (new primary, old replicas) keep seeding. Unknown
    /// trailing capability tokens are ignored for the same reason in
    /// the other direction.
    ReplHello {
        /// The replica's last applied LSN.
        lsn: u64,
        /// Whether the replica advertised binary-snapshot support.
        mmap: bool,
    },
    /// `COMPACT` — checkpoint the store and truncate the WAL prefix
    /// every in-grace replica has acknowledged (primaries only; the
    /// same cycle the `--wal-max-bytes` trigger runs automatically).
    Compact,
    /// `QUIT`
    Quit,
}

/// Parse a method token (`-` is "no override").
fn parse_method(tok: &str) -> Result<Option<SearchMethod>, String> {
    if tok == "-" {
        return Ok(None);
    }
    ALL_METHODS
        .into_iter()
        .find(|&m| method_name(m) == tok.to_ascii_lowercase())
        .map(Some)
        .ok_or_else(|| format!("unknown method {tok:?}"))
}

/// Parse a threshold token (`-` is "no override").
fn parse_threshold(tok: &str) -> Result<Option<f64>, String> {
    if tok == "-" {
        return Ok(None);
    }
    let e: f64 = tok.parse().map_err(|_| format!("bad threshold {tok:?}"))?;
    if !(0.0..=1.0).contains(&e) {
        return Err(format!("threshold {e} outside [0,1]"));
    }
    Ok(Some(e))
}

fn parse_lookup_head(
    language: &str,
    method: &str,
    threshold: &str,
) -> Result<(Language, Option<SearchMethod>, Option<f64>), String> {
    Ok((
        language.parse::<Language>()?,
        parse_method(method)?,
        parse_threshold(threshold)?,
    ))
}

/// Parse one request line. Empty/whitespace-only lines yield `None`.
pub fn parse_request(line: &str) -> Result<Option<Request>, String> {
    let line = line.trim();
    if line.is_empty() {
        return Ok(None);
    }
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    let req = match verb.to_ascii_uppercase().as_str() {
        "ADD" => {
            let (lang, text) = rest
                .split_once(char::is_whitespace)
                .ok_or("usage: ADD <lang|-> <text...>")?;
            let text = text.trim();
            if text.is_empty() {
                return Err("ADD: empty name".into());
            }
            if lang == "-" {
                Request::AddAuto {
                    text: text.to_owned(),
                }
            } else {
                Request::Add {
                    language: lang.parse::<Language>()?,
                    text: text.to_owned(),
                }
            }
        }
        "BUILD" => {
            let mut toks = rest.split_whitespace();
            match toks
                .next()
                .ok_or("usage: BUILD QGRAM|PHONIDX|BKTREE|ALL")?
                .to_ascii_uppercase()
                .as_str()
            {
                "QGRAM" => {
                    let q: usize = toks
                        .next()
                        .ok_or("usage: BUILD QGRAM <q> STRICT|PAPER")?
                        .parse()
                        .map_err(|_| "BUILD QGRAM: q must be a positive integer")?;
                    if q == 0 {
                        return Err("BUILD QGRAM: q must be positive".into());
                    }
                    let mode = match toks
                        .next()
                        .ok_or("usage: BUILD QGRAM <q> STRICT|PAPER")?
                        .to_ascii_uppercase()
                        .as_str()
                    {
                        "STRICT" => QgramMode::Strict,
                        "PAPER" => QgramMode::PaperFaithful,
                        other => return Err(format!("unknown q-gram mode {other:?}")),
                    };
                    Request::BuildQgram { q, mode }
                }
                "PHONIDX" => Request::BuildPhonidx,
                "BKTREE" => Request::BuildBktree,
                "ALL" => Request::BuildAll,
                other => return Err(format!("unknown build target {other:?}")),
            }
        }
        "MATCH" => {
            let mut toks = rest.splitn(4, char::is_whitespace);
            let usage = "usage: MATCH <lang|-> <method|-> <threshold|-> <text...>";
            let lang = toks.next().ok_or(usage)?;
            let method = toks.next().ok_or(usage)?;
            let threshold = toks.next().ok_or(usage)?;
            let text = toks.next().map(str::trim).unwrap_or("");
            if text.is_empty() {
                return Err("MATCH: empty query".into());
            }
            if lang == "-" {
                Request::MatchAuto(AutoMatchRequest {
                    text: text.to_owned(),
                    threshold: parse_threshold(threshold)?,
                    method: parse_method(method)?,
                })
            } else {
                let (language, method, threshold) = parse_lookup_head(lang, method, threshold)?;
                Request::Match(MatchRequest {
                    text: text.to_owned(),
                    language,
                    threshold,
                    method,
                })
            }
        }
        "BATCH" => {
            let mut toks = rest.splitn(4, char::is_whitespace);
            let usage = "usage: BATCH <lang> <method|-> <threshold|-> <t1>|<t2>|...";
            let lang = toks.next().ok_or(usage)?;
            let method = toks.next().ok_or(usage)?;
            let threshold = toks.next().ok_or(usage)?;
            let texts = toks.next().map(str::trim).unwrap_or("");
            if texts.is_empty() {
                return Err("BATCH: empty query list".into());
            }
            let (language, method, threshold) = parse_lookup_head(lang, method, threshold)?;
            let reqs: Vec<MatchRequest> = texts
                .split('|')
                .map(str::trim)
                .filter(|t| !t.is_empty())
                .map(|t| MatchRequest {
                    text: t.to_owned(),
                    language,
                    threshold,
                    method,
                })
                .collect();
            if reqs.is_empty() {
                return Err("BATCH: empty query list".into());
            }
            Request::Batch(reqs)
        }
        "STATS" => Request::Stats,
        "SAVE" => {
            let (json, rest) = match rest.split_whitespace().next() {
                Some(tok) if tok.eq_ignore_ascii_case("json") => {
                    (true, rest.trim_start()[tok.len()..].trim_start())
                }
                _ => (false, rest),
            };
            Request::Save {
                path: if rest.is_empty() {
                    None
                } else {
                    Some(rest.to_owned())
                },
                json,
            }
        }
        "REPL" => {
            let usage = "usage: REPL HELLO <lsn> [MMAP]";
            let mut toks = rest.split_whitespace();
            match toks.next().map(str::to_ascii_uppercase).as_deref() {
                Some("HELLO") => {
                    let lsn = toks
                        .next()
                        .ok_or(usage)?
                        .parse::<u64>()
                        .map_err(|_| "REPL HELLO: lsn must be a non-negative integer")?;
                    // Trailing tokens are capability advertisements;
                    // unknown ones are ignored so an older primary
                    // still accepts a newer replica's HELLO.
                    let mmap = toks.any(|t| t.eq_ignore_ascii_case("MMAP"));
                    Request::ReplHello { lsn, mmap }
                }
                _ => return Err(usage.into()),
            }
        }
        "COMPACT" => Request::Compact,
        "QUIT" => Request::Quit,
        other => return Err(format!("unknown command {other:?}")),
    };
    Ok(Some(req))
}

/// Render one lookup outcome as a response line (no trailing newline).
pub fn format_outcome(out: &MatchOutcome) -> String {
    match out {
        MatchOutcome::Matches {
            method,
            threshold,
            ids,
            verifications,
        } => {
            let ids = ids
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "OK n={} verified={} method={} e={} ids={}",
                ids.split(',').filter(|s| !s.is_empty()).count(),
                verifications,
                method_name(*method),
                threshold,
                ids,
            )
        }
        MatchOutcome::NoResource(lang) => format!("NORESOURCE {lang}"),
        MatchOutcome::NotBuilt(method) => format!("NOTBUILT {}", method_name(*method)),
        MatchOutcome::BadInput(msg) => format!("ERR bad input: {}", msg.replace('\n', " ")),
    }
}

/// Render a stats snapshot as the single-line `STATS` response.
pub fn format_stats(s: &StatsSnapshot) -> String {
    let mut line = format!(
        "OK names={} shards={} requests={} matches={} noresource={} notbuilt={} badinput={} cache_hits={} cache_misses={} screen_accept={} screen_reject={} screen_dp={} screen_bypass={} embed_screen_accept={} embed_screen_reject={} embed_screen_bypass={} batch_calls={} batch_lanes_sum={} batch_lanes_max={} batch_accept={} batch_reject={} batch_dp={} simd={}",
        s.names,
        s.shards,
        s.requests,
        s.matches_returned,
        s.no_resource,
        s.not_built,
        s.bad_input,
        s.cache_hits,
        s.cache_misses,
        s.screen_fast_accept,
        s.screen_fast_reject,
        s.screen_full_dp,
        s.screen_bypass,
        s.embed_screen_accept,
        s.embed_screen_reject,
        s.embed_screen_bypass,
        s.batch_calls,
        s.batch_lanes_sum,
        s.batch_lanes_max,
        s.batch_lane_accept,
        s.batch_lane_reject,
        s.batch_lane_dp,
        s.simd_level,
    );
    line.push_str(&format!(
        " snapshot_format={} mmap_bytes={} load_ms={}",
        s.load.format, s.load.mapped_bytes, s.load.load_ms,
    ));
    for m in ALL_METHODS {
        let pm = &s.per_method[method_index(m)];
        let name = method_name(m);
        line.push_str(&format!(" {name}_searches={}", pm.searches));
        if let Some(p50) = pm.p50_upper_ns {
            line.push_str(&format!(" {name}_p50_ns={p50}"));
        }
        if let Some(p99) = pm.p99_upper_ns {
            line.push_str(&format!(" {name}_p99_ns={p99}"));
        }
    }
    if let Some(conn) = &s.conn {
        line.push_str(&format!(
            " conns_current={} conns_peak={} queue_depth={} queue_peak={} pipeline_max={} dispatches={}",
            conn.conns_current,
            conn.conns_peak,
            conn.queue_depth,
            conn.queue_peak,
            conn.pipeline_max,
            conn.dispatches,
        ));
        if let Some(p99) = conn.pipeline_p99 {
            line.push_str(&format!(" pipeline_p99={p99}"));
        }
    }
    if s.untagged.requests > 0 {
        let u = &s.untagged;
        line.push_str(&format!(
            " untagged_requests={} untagged_noresource={} untagged_fanout_sum={} untagged_fanout_max={} untagged_dedup={}",
            u.requests, u.no_resource, u.fanout_width_sum, u.fanout_width_max, u.dedup_hits,
        ));
        for script in Script::ALL {
            let n = u.per_script[script.index()];
            if n > 0 {
                line.push_str(&format!(" untagged_script_{script}={n}"));
            }
        }
    }
    if let Some(repl) = &s.repl {
        match repl.role {
            crate::metrics::ReplRole::Primary => {
                line.push_str(&format!(
                    " repl_role=primary wal_lsn={} repl_replicas={}",
                    repl.head_lsn, repl.replicas,
                ));
                if let Some(wal) = &repl.wal {
                    line.push_str(&format!(
                        " wal_appends={} wal_fsyncs={} wal_bytes={}",
                        wal.appends, wal.fsyncs, wal.bytes,
                    ));
                }
                line.push_str(&format!(
                    " wal_bytes_live={} compactions={} checkpoint_lsn={} reseeds={} \
                     divergences={}",
                    repl.wal_bytes_live,
                    repl.compactions,
                    repl.checkpoint_lsn,
                    repl.reseeds,
                    repl.divergences,
                ));
            }
            crate::metrics::ReplRole::Replica => {
                line.push_str(&format!(
                    " repl_role=replica repl_lsn={} repl_head={} repl_lag={} repl_connected={}",
                    repl.applied_lsn,
                    repl.head_lsn,
                    repl.lag,
                    u64::from(repl.connected),
                ));
                if let Some(primary) = &repl.primary_addr {
                    line.push_str(&format!(" repl_primary={primary}"));
                }
                line.push_str(&format!(
                    " repl_reseeds={} repl_divergences={}",
                    repl.reseeds, repl.divergences,
                ));
            }
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framer_reassembles_lines_split_across_pushes() {
        let mut f = LineFramer::new(1024);
        f.push(b"MAT");
        assert_eq!(f.next_line().unwrap(), None);
        f.push(b"CH en scan - Neh");
        assert_eq!(f.next_line().unwrap(), None);
        f.push(b"ru\nSTA");
        assert_eq!(
            f.next_line().unwrap().as_deref(),
            Some("MATCH en scan - Nehru")
        );
        assert_eq!(f.next_line().unwrap(), None);
        f.push(b"TS\n");
        assert_eq!(f.next_line().unwrap().as_deref(), Some("STATS"));
        assert_eq!(f.buffered(), 0);
    }

    #[test]
    fn framer_yields_every_line_from_one_push() {
        let mut f = LineFramer::new(1024);
        f.push(b"A\nB\r\n\nC\n");
        assert_eq!(f.next_line().unwrap().as_deref(), Some("A"));
        assert_eq!(f.next_line().unwrap().as_deref(), Some("B"));
        assert_eq!(f.next_line().unwrap().as_deref(), Some(""));
        assert_eq!(f.next_line().unwrap().as_deref(), Some("C"));
        assert_eq!(f.next_line().unwrap(), None);
    }

    #[test]
    fn framer_rejects_oversized_lines_with_and_without_newline() {
        // No newline yet: the partial tail alone trips the limit.
        let mut f = LineFramer::new(8);
        f.push(b"ABCDEFGHIJ");
        assert_eq!(f.next_line(), Err(FrameError::Oversized(8)));
        // Newline present but the line is still too long.
        let mut f = LineFramer::new(8);
        f.push(b"ABCDEFGHIJ\n");
        assert_eq!(f.next_line(), Err(FrameError::Oversized(8)));
        // At the limit exactly: fine.
        let mut f = LineFramer::new(8);
        f.push(b"ABCDEFGH\n");
        assert_eq!(f.next_line().unwrap().as_deref(), Some("ABCDEFGH"));
    }

    #[test]
    fn framer_rejects_invalid_utf8() {
        let mut f = LineFramer::new(64);
        f.push(&[0x4D, 0xFF, 0xFE, b'\n']);
        assert_eq!(f.next_line(), Err(FrameError::Utf8));
    }

    #[test]
    fn framer_handles_multibyte_utf8_split_mid_character() {
        let mut f = LineFramer::new(1024);
        let bytes = "ADD hi नेहरु\n".as_bytes();
        // Split in the middle of a Devanagari code point.
        f.push(&bytes[..7]);
        assert_eq!(f.next_line().unwrap(), None);
        f.push(&bytes[7..]);
        assert_eq!(f.next_line().unwrap().as_deref(), Some("ADD hi नेहरु"));
    }

    #[test]
    fn parses_repl_hello_with_and_without_mmap_capability() {
        // A replica from before the binary snapshot format: bare HELLO.
        assert_eq!(
            parse_request("REPL HELLO 42").unwrap().unwrap(),
            Request::ReplHello {
                lsn: 42,
                mmap: false
            }
        );
        // A current replica advertises MMAP (case-insensitive).
        assert_eq!(
            parse_request("REPL HELLO 0 mmap").unwrap().unwrap(),
            Request::ReplHello { lsn: 0, mmap: true }
        );
        // Unknown trailing capability tokens are ignored, so a *future*
        // replica can keep talking to this primary (the same contract
        // that lets today's replica send MMAP to an old primary).
        assert_eq!(
            parse_request("REPL HELLO 7 MMAP SOME-FUTURE-CAP")
                .unwrap()
                .unwrap(),
            Request::ReplHello { lsn: 7, mmap: true }
        );
        assert!(parse_request("REPL HELLO nope").is_err());
    }

    #[test]
    fn parses_add() {
        let r = parse_request("ADD hindi नेहरु जी").unwrap().unwrap();
        assert_eq!(
            r,
            Request::Add {
                language: Language::Hindi,
                text: "नेहरु जी".to_owned(),
            }
        );
    }

    #[test]
    fn parses_match_with_overrides_and_spaces_in_text() {
        let r = parse_request("MATCH en qgram 0.45 Jawaharlal Nehru")
            .unwrap()
            .unwrap();
        assert_eq!(
            r,
            Request::Match(MatchRequest {
                text: "Jawaharlal Nehru".to_owned(),
                language: Language::English,
                threshold: Some(0.45),
                method: Some(SearchMethod::Qgram),
            })
        );
    }

    #[test]
    fn dashes_mean_defaults() {
        let Request::Match(r) = parse_request("MATCH ta - - நேரு").unwrap().unwrap() else {
            panic!()
        };
        assert_eq!(r.language, Language::Tamil);
        assert_eq!(r.threshold, None);
        assert_eq!(r.method, None);
    }

    #[test]
    fn parses_batch_pipe_separated() {
        let Request::Batch(rs) = parse_request("BATCH en - 0.45 Nehru| Nero |Gandhi")
            .unwrap()
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(
            rs.iter().map(|r| r.text.as_str()).collect::<Vec<_>>(),
            ["Nehru", "Nero", "Gandhi"]
        );
        assert!(rs.iter().all(|r| r.threshold == Some(0.45)));
    }

    #[test]
    fn parses_builds() {
        assert_eq!(
            parse_request("BUILD QGRAM 3 STRICT").unwrap().unwrap(),
            Request::BuildQgram {
                q: 3,
                mode: QgramMode::Strict
            }
        );
        assert_eq!(
            parse_request("build qgram 2 paper").unwrap().unwrap(),
            Request::BuildQgram {
                q: 2,
                mode: QgramMode::PaperFaithful
            }
        );
        assert_eq!(
            parse_request("BUILD PHONIDX").unwrap().unwrap(),
            Request::BuildPhonidx
        );
        assert_eq!(
            parse_request("BUILD ALL").unwrap().unwrap(),
            Request::BuildAll
        );
    }

    #[test]
    fn blank_lines_are_skipped_and_garbage_rejected() {
        assert_eq!(parse_request("   ").unwrap(), None);
        assert!(parse_request("FROB x").is_err());
        assert!(parse_request("MATCH en scan 1.5 Nehru").is_err());
        assert!(parse_request("MATCH xx - - Nehru").is_err());
        assert!(parse_request("BUILD QGRAM 0 STRICT").is_err());
        assert!(parse_request("ADD en").is_err());
    }

    #[test]
    fn parses_untagged_add() {
        assert_eq!(
            parse_request("ADD - Неру").unwrap().unwrap(),
            Request::AddAuto {
                text: "Неру".to_owned(),
            }
        );
        // Spaces in the name survive, exactly like tagged ADD.
        assert_eq!(
            parse_request("ADD - Jawaharlal Nehru").unwrap().unwrap(),
            Request::AddAuto {
                text: "Jawaharlal Nehru".to_owned(),
            }
        );
    }

    #[test]
    fn parses_untagged_match_with_overrides() {
        assert_eq!(
            parse_request("MATCH - qgram 0.45 Nehru").unwrap().unwrap(),
            Request::MatchAuto(AutoMatchRequest {
                text: "Nehru".to_owned(),
                threshold: Some(0.45),
                method: Some(SearchMethod::Qgram),
            })
        );
        assert_eq!(
            parse_request("MATCH - - - नेहरु").unwrap().unwrap(),
            Request::MatchAuto(AutoMatchRequest {
                text: "नेहरु".to_owned(),
                threshold: None,
                method: None,
            })
        );
    }

    #[test]
    fn untagged_forms_reject_bad_input_like_tagged_ones() {
        // The language slot is the only difference: every other token
        // still validates.
        assert!(parse_request("ADD -").is_err()); // no text
        assert!(parse_request("ADD - ").is_err());
        assert!(parse_request("MATCH - scan 1.5 Nehru").is_err()); // bad e
        assert!(parse_request("MATCH - frob - Nehru").is_err()); // bad method
        assert!(parse_request("MATCH - - -").is_err()); // no text
                                                        // A literal "-" name is a parse of AddAuto with text "-": allowed
                                                        // here, rejected later by profiling (no letters).
        assert!(parse_request("ADD - -").is_ok());
        // BATCH stays tagged: "-" is not a language there.
        assert!(parse_request("BATCH - - - Nehru|Nero").is_err());
    }

    #[test]
    fn stats_line_includes_untagged_block_only_when_used() {
        let mut s = StatsSnapshot {
            names: 0,
            shards: 1,
            requests: 0,
            matches_returned: 0,
            no_resource: 0,
            not_built: 0,
            bad_input: 0,
            cache_hits: 0,
            cache_misses: 0,
            screen_fast_accept: 0,
            screen_fast_reject: 0,
            screen_full_dp: 0,
            screen_bypass: 0,
            embed_screen_accept: 0,
            embed_screen_reject: 0,
            embed_screen_bypass: 0,
            batch_calls: 0,
            batch_lanes_sum: 0,
            batch_lanes_max: 0,
            batch_lane_accept: 0,
            batch_lane_reject: 0,
            batch_lane_dp: 0,
            simd_level: "scalar",
            per_method: ALL_METHODS.map(|m| crate::service::MethodStats {
                method: m,
                searches: 0,
                p50_upper_ns: None,
                p99_upper_ns: None,
            }),
            conn: None,
            repl: None,
            untagged: crate::metrics::UntaggedStats {
                requests: 0,
                per_script: [0; Script::COUNT],
                fanout_width_sum: 0,
                fanout_width_max: 0,
                no_resource: 0,
                dedup_hits: 0,
            },
            load: crate::service::LoadInfo::default(),
        };
        assert!(!format_stats(&s).contains("untagged_"));
        assert!(format_stats(&s).contains("snapshot_format=rebuild mmap_bytes=0 load_ms=0"));
        s.untagged.requests = 2;
        s.untagged.no_resource = 1;
        s.untagged.fanout_width_sum = 3;
        s.untagged.fanout_width_max = 3;
        s.untagged.per_script[Script::Latin.index()] = 1;
        s.untagged.per_script[Script::Hangul.index()] = 1;
        let line = format_stats(&s);
        assert!(
            line.contains(
                "untagged_requests=2 untagged_noresource=1 untagged_fanout_sum=3 \
                 untagged_fanout_max=3 untagged_dedup=0"
            ),
            "{line}"
        );
        assert!(line.contains("untagged_script_latin=1"), "{line}");
        assert!(line.contains("untagged_script_hangul=1"), "{line}");
        assert!(!line.contains("untagged_script_thai"), "{line}");
    }

    #[test]
    fn formats_outcomes() {
        let line = format_outcome(&MatchOutcome::Matches {
            method: SearchMethod::Qgram,
            threshold: 0.35,
            ids: vec![1, 5, 9],
            verifications: 12,
        });
        assert_eq!(line, "OK n=3 verified=12 method=qgram e=0.35 ids=1,5,9");
        let empty = format_outcome(&MatchOutcome::Matches {
            method: SearchMethod::Scan,
            threshold: 0.35,
            ids: vec![],
            verifications: 4,
        });
        assert!(empty.starts_with("OK n=0 "), "{empty}");
        assert_eq!(
            format_outcome(&MatchOutcome::NoResource(Language::Japanese)),
            "NORESOURCE Japanese"
        );
        assert_eq!(
            format_outcome(&MatchOutcome::NotBuilt(SearchMethod::BkTree)),
            "NOTBUILT bktree"
        );
    }
}
