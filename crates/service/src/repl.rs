//! Primary/replica replication: snapshot shipping plus WAL streaming.
//!
//! A primary started with `--wal` owns a [`Replicator`]: the single
//! commit path that appends every mutation to the log (fsynced) and
//! only then applies it to the store, under one lock — so LSN order is
//! store-apply order, on the primary and on every copy. A replica
//! (`--replica-of HOST:PORT`) opens the primary's line protocol with
//! `REPL HELLO <lsn> MMAP` and applies what comes back through the same
//! deterministic [`MatchService::apply_op`] path WAL replay uses.
//!
//! The trailing `MMAP` token negotiates the snapshot transfer format: a
//! replica that advertises it is shipped the binary mmap image verbatim
//! (loaded zero-copy from the transfer buffer), while a bare
//! `REPL HELLO <lsn>` — a replica from before the binary format
//! existed — is served the JSON document it understands. Either side
//! may be upgraded first: an old primary ignores the unknown token, and
//! a new replica sniffs the transfer's magic bytes to pick its loader.
//!
//! # Stream grammar (primary → replica, after the HELLO)
//!
//! ```text
//! SNAP lsn=<l> bytes=<n>\n<n snapshot bytes>   full transfer, then streaming
//! OK lsn=<head>\n                              incremental catch-up possible
//! OP <lsn> <op payload>\n                      one committed mutation
//! PING lsn=<head>\n                            heartbeat (~500ms when idle)
//! DIVERGED lsn=<head>\n                        replica is AHEAD of this primary
//! ```
//!
//! The replica talks back on the same socket: `ACK <lsn>\n` after
//! applying (throttled, and on every heartbeat), which the primary
//! records per replica as that stream's acknowledged horizon — the
//! input to WAL compaction (see [`Replicator::compact`]).
//!
//! The primary answers `SNAP` when the replica's LSN is 0 or has fallen
//! behind the log horizon (the WAL no longer holds `lsn+1`), `OK`
//! otherwise. A mid-life `SNAP` is how a replica that outlived the
//! compacted log re-seeds: when the snapshot's history is a strict
//! extension of the replica's own (same entries, same order — which
//! non-divergent WAL history guarantees), the replica appends the
//! missing tail entries from the transfer and rebuilds the snapshot's
//! access paths, all without restarting. Only a genuine divergence —
//! the snapshot contradicting entries the replica already holds, or a
//! `DIVERGED` reply (this replica's LSN is ahead of the primary's whole
//! history, e.g. a primary restored from an old snapshot) — is the
//! fatal [`ReplError::NeedsResync`], because continuing would silently
//! roll back acknowledged state.
//!
//! [`MatchService::apply_op`]: crate::MatchService::apply_op

use crate::event_loop::ShutdownSignal;
use crate::metrics::{ReplRole, ReplStats, WalMetrics, WalStats};
use crate::service::MatchService;
use crate::snapshot::StoreSnapshot;
use crate::wal::{self, Op, Wal, WalCursor, WalError, WalRecord};
use lexequal::MatchConfig;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Idle-stream heartbeat interval (each carries the head LSN).
pub const HEARTBEAT: Duration = Duration::from_millis(500);
/// A replica declares the link dead after this long without a line
/// (several heartbeats worth).
const REPLICA_READ_TIMEOUT: Duration = Duration::from_secs(3);
/// Reconnect backoff start / cap.
const BACKOFF_START: Duration = Duration::from_millis(100);
const BACKOFF_CAP: Duration = Duration::from_secs(3);
/// How long a primary waits on a stuck replica socket before dropping it.
const SENDER_WRITE_TIMEOUT: Duration = Duration::from_secs(10);
/// Handshake patience (covers a large snapshot transfer).
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(30);
/// Minimum spacing between a replica's progress `ACK`s (heartbeats
/// always get one regardless, so an idle link still refreshes its
/// straggler-grace clock).
const ACK_INTERVAL: Duration = Duration::from_millis(100);
/// How often the background compactor re-checks the log size.
const COMPACTOR_POLL: Duration = Duration::from_millis(200);
/// Default straggler grace: a replica silent this long stops pinning
/// the compaction horizon (it re-seeds from a snapshot on reconnect).
pub const DEFAULT_ACK_GRACE: Duration = Duration::from_secs(10);

/// Why a commit was refused.
#[derive(Debug)]
pub enum CommitError {
    /// The input failed G2P transform — nothing was logged or applied.
    BadInput(lexequal::G2pError),
    /// The WAL append failed — nothing was applied.
    Wal(WalError),
}

impl std::fmt::Display for CommitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommitError::BadInput(e) => write!(f, "{e:?}"),
            CommitError::Wal(e) => write!(f, "wal append failed: {e}"),
        }
    }
}

/// How and when the WAL gets compacted. Installed by the daemon via
/// [`Replicator::set_compaction_policy`]; without a checkpoint path,
/// [`Replicator::compact`] refuses to run (truncating without a durable
/// checkpoint would simply lose the prefix).
#[derive(Debug, Clone)]
pub struct CompactionPolicy {
    /// Where the pre-truncation checkpoint lands (the daemon uses
    /// `<wal>.checkpoint`).
    pub checkpoint: Option<PathBuf>,
    /// Size threshold the background compactor acts on (`None` = only
    /// explicit `COMPACT`).
    pub max_bytes: Option<u64>,
    /// Straggler grace: replicas silent longer than this stop pinning
    /// the horizon.
    pub grace: Duration,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            checkpoint: None,
            max_bytes: None,
            grace: DEFAULT_ACK_GRACE,
        }
    }
}

/// One attached replica's acknowledged position, as fed back on the
/// stream socket via `ACK` lines.
#[derive(Debug, Clone, Copy)]
struct AckEntry {
    /// Highest LSN the replica acknowledged (floored at the position
    /// the stream started from, which the replica provably holds).
    acked: u64,
    /// When we last heard from it — the straggler-grace clock.
    heard: Instant,
}

/// What one [`Replicator::compact`] cycle did.
#[derive(Debug, Clone, Copy)]
pub struct CompactReport {
    /// LSN the freshly written checkpoint covers.
    pub checkpoint_lsn: u64,
    /// Horizon actually truncated to (≤ `checkpoint_lsn`).
    pub horizon: u64,
    /// Records dropped from the log.
    pub dropped_records: u64,
    /// Bytes the log shrank by.
    pub dropped_bytes: u64,
    /// Log size after the rewrite.
    pub wal_bytes_live: u64,
}

/// Primary-side replication state: the WAL behind its commit lock, the
/// published head LSN, and the sender threads feeding replicas.
pub struct Replicator {
    /// THE commit lock: append+fsync and store-apply happen under it,
    /// so apply order always equals LSN order.
    wal: Mutex<Wal>,
    head: AtomicU64,
    /// Last committed LSN, guarded separately so stream senders can
    /// block on the condvar without touching the commit lock.
    tail: Mutex<u64>,
    tail_cv: Condvar,
    replicas: AtomicU64,
    stop: AtomicBool,
    threads: Mutex<Vec<JoinHandle<()>>>,
    metrics: Arc<WalMetrics>,
    /// Per-attached-replica acknowledged LSNs, keyed by a registration
    /// id handed out per stream.
    acks: Mutex<HashMap<u64, AckEntry>>,
    next_replica_id: AtomicU64,
    /// Serializes compaction cycles (an explicit `COMPACT` racing the
    /// background compactor simply reports "busy").
    compaction: Mutex<()>,
    policy: Mutex<CompactionPolicy>,
    compactions: AtomicU64,
    checkpoint_lsn: AtomicU64,
    reseeds: AtomicU64,
    divergences: AtomicU64,
}

impl std::fmt::Debug for Replicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replicator")
            .field("head", &self.head())
            .field("replicas", &self.replicas())
            .finish_non_exhaustive()
    }
}

impl Replicator {
    /// Wrap an opened (already replayed) WAL.
    pub fn new(wal: Wal, metrics: Arc<WalMetrics>) -> Arc<Replicator> {
        let head = wal.head_lsn();
        Arc::new(Replicator {
            wal: Mutex::new(wal),
            head: AtomicU64::new(head),
            tail: Mutex::new(head),
            tail_cv: Condvar::new(),
            replicas: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            threads: Mutex::new(Vec::new()),
            metrics: Arc::clone(&metrics),
            acks: Mutex::new(HashMap::new()),
            next_replica_id: AtomicU64::new(1),
            compaction: Mutex::new(()),
            policy: Mutex::new(CompactionPolicy::default()),
            compactions: AtomicU64::new(0),
            checkpoint_lsn: AtomicU64::new(0),
            reseeds: AtomicU64::new(0),
            divergences: AtomicU64::new(0),
        })
    }

    /// Install the compaction policy (checkpoint path, size trigger,
    /// straggler grace). The daemon calls this right after startup.
    pub fn set_compaction_policy(&self, policy: CompactionPolicy) {
        *self.policy.lock().expect("policy lock") = policy;
    }

    /// Current on-disk WAL size in bytes.
    pub fn live_bytes(&self) -> u64 {
        self.wal.lock().expect("wal lock").live_bytes()
    }

    /// First LSN still present in the WAL (`None` = empty log).
    pub fn wal_first_lsn(&self) -> Option<u64> {
        self.wal.lock().expect("wal lock").first_lsn()
    }

    /// Completed checkpoint-and-truncate cycles.
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// LSN covered by the newest durable checkpoint (0 = none yet).
    pub fn checkpoint_lsn(&self) -> u64 {
        self.checkpoint_lsn.load(Ordering::Relaxed)
    }

    /// Snapshot-transfer catch-ups served to non-fresh replicas.
    pub fn reseeds(&self) -> u64 {
        self.reseeds.load(Ordering::Relaxed)
    }

    /// Replicas that arrived *ahead* of this primary's history.
    pub fn divergences(&self) -> u64 {
        self.divergences.load(Ordering::Relaxed)
    }

    /// Last committed LSN.
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Replica streams attached right now.
    pub fn replicas(&self) -> u64 {
        self.replicas.load(Ordering::Relaxed)
    }

    /// WAL counter snapshot.
    pub fn wal_stats(&self) -> WalStats {
        self.metrics.stats()
    }

    /// Commit one `ADD`: validate (transform) first, append+fsync, then
    /// apply — the client's `OK` only ever follows a durable record.
    /// Returns `(lsn, global id)`.
    pub fn commit_add(
        &self,
        service: &MatchService,
        text: &str,
        language: lexequal::Language,
    ) -> Result<(u64, u32), CommitError> {
        let entry = service
            .prepare_entry(text, language)
            .map_err(CommitError::BadInput)?;
        let op = Op::Add {
            language,
            text: text.to_owned(),
        };
        let mut wal = self.wal.lock().expect("wal lock");
        let lsn = wal.append(&op).map_err(CommitError::Wal)?;
        let id = service.apply_entry(entry);
        self.publish(lsn);
        Ok((lsn, id))
    }

    /// Commit one `BUILD`. Returns its LSN.
    pub fn commit_build(
        &self,
        service: &MatchService,
        spec: crate::shard::BuildSpec,
    ) -> Result<u64, CommitError> {
        let mut wal = self.wal.lock().expect("wal lock");
        let lsn = wal.append(&Op::Build(spec)).map_err(CommitError::Wal)?;
        service.build(spec);
        self.publish(lsn);
        Ok(lsn)
    }

    /// Publish a committed LSN (called with the commit lock held, so
    /// `fetch_max` is belt-and-braces).
    fn publish(&self, lsn: u64) {
        self.head.fetch_max(lsn, Ordering::Release);
        let mut tail = self.tail.lock().expect("tail lock");
        *tail = (*tail).max(lsn);
        drop(tail);
        self.tail_cv.notify_all();
    }

    /// Capture a store snapshot consistent with the WAL head (holds the
    /// commit lock for the duration). Returns `(image bytes, lsn)`.
    /// With [`SnapshotFormat::Mmap`] the bytes are the binary image —
    /// exactly what a snapshot file holds, so a replica that advertised
    /// the capability loads the transfer buffer directly (or persists
    /// it verbatim) with no re-encode. [`SnapshotFormat::Json`] is the
    /// pre-binary wire document, kept for replicas that predate the
    /// mmap format (rolling upgrades: new primary, old replicas).
    ///
    /// [`SnapshotFormat::Mmap`]: crate::service::SnapshotFormat::Mmap
    /// [`SnapshotFormat::Json`]: crate::service::SnapshotFormat::Json
    pub fn snapshot_document(
        &self,
        service: &MatchService,
        format: crate::service::SnapshotFormat,
    ) -> Result<(Vec<u8>, u64), lexequal_mdb::DbError> {
        let wal = self.wal.lock().expect("wal lock");
        let lsn = wal.head_lsn();
        let bytes = match format {
            crate::service::SnapshotFormat::Mmap => crate::mmapstore::encode(service.store(), lsn)?,
            crate::service::SnapshotFormat::Json => {
                let mut bytes = Vec::new();
                StoreSnapshot::capture_with_lsn(service.store(), lsn).write_to(&mut bytes)?;
                bytes
            }
        };
        Ok((bytes, lsn))
    }

    /// Snapshot the store to `path` atomically, stamped with the WAL
    /// head (holds the commit lock). Returns the covered LSN.
    pub fn save_snapshot_atomic(
        &self,
        service: &MatchService,
        path: &Path,
    ) -> Result<u64, lexequal_mdb::DbError> {
        self.save_snapshot_atomic_format(service, path, crate::service::SnapshotFormat::Mmap)
    }

    /// [`save_snapshot_atomic`](Self::save_snapshot_atomic) in an
    /// explicit format (`SAVE JSON` on a primary).
    pub fn save_snapshot_atomic_format(
        &self,
        service: &MatchService,
        path: &Path,
        format: crate::service::SnapshotFormat,
    ) -> Result<u64, lexequal_mdb::DbError> {
        let wal = self.wal.lock().expect("wal lock");
        let lsn = wal.head_lsn();
        match format {
            crate::service::SnapshotFormat::Mmap => {
                crate::mmapstore::write_file_atomic(service.store(), lsn, path)?;
            }
            crate::service::SnapshotFormat::Json => {
                StoreSnapshot::capture_with_lsn(service.store(), lsn).write_to_file_atomic(path)?;
            }
        }
        Ok(lsn)
    }

    /// Whether an incremental catch-up from `from` loses nothing
    /// (0 always demands a snapshot — a fresh replica has no state).
    pub fn can_serve_incremental(&self, from: u64) -> bool {
        from != 0 && self.wal.lock().expect("wal lock").can_serve_from(from)
    }

    /// Records with `lsn > from`, in order.
    ///
    /// Holds the commit lock across a whole-file scan — kept only for
    /// small one-shot reads; stream senders use
    /// [`read_tail`](Self::read_tail), which does neither.
    pub fn read_from(&self, from: u64) -> Result<Vec<WalRecord>, WalError> {
        self.wal.lock().expect("wal lock").read_from(from)
    }

    /// Records at or past `cursor`, advancing it. The commit lock is
    /// held only to snapshot the log's path/generation/bounds — plain
    /// metadata — never across the file I/O, so a replica deep in
    /// catch-up cannot stall commits. The cursor makes the read itself
    /// a seek + tail scan instead of a whole-file rescan.
    ///
    /// Returns [`WalError::Gap`] when compaction has truncated past
    /// this reader (a straggler beyond its grace): the stream cannot
    /// continue and the replica must re-seed on reconnect.
    pub fn read_tail(&self, cursor: &mut WalCursor) -> Result<Vec<WalRecord>, WalError> {
        let (path, generation, first_lsn, head) = {
            let wal = self.wal.lock().expect("wal lock");
            (
                wal.path().to_owned(),
                wal.generation(),
                wal.first_lsn(),
                wal.head_lsn(),
            )
        };
        // An empty log's records are all compacted away: a reader not
        // exactly at the head has lost its suffix.
        let effective_first = first_lsn.unwrap_or(head + 1);
        if cursor.next_lsn() < effective_first {
            return Err(WalError::Gap {
                snapshot_lsn: cursor.next_lsn().saturating_sub(1),
                wal_first: effective_first,
            });
        }
        wal::read_tail(&path, generation, cursor)
    }

    /// Register one attached replica stream whose acknowledged position
    /// starts at `floor` (the LSN the stream is serving from — state
    /// the replica provably holds or is being shipped). Returns the id
    /// for [`note_ack`](Self::note_ack) / [`drop_replica`](Self::drop_replica).
    fn register_replica(&self, floor: u64) -> u64 {
        let id = self.next_replica_id.fetch_add(1, Ordering::Relaxed);
        self.acks.lock().expect("acks lock").insert(
            id,
            AckEntry {
                acked: floor,
                heard: Instant::now(),
            },
        );
        id
    }

    /// Record an `ACK <lsn>` (or any sign of life) from replica `id`.
    fn note_ack(&self, id: u64, lsn: u64) {
        if let Some(entry) = self.acks.lock().expect("acks lock").get_mut(&id) {
            entry.acked = entry.acked.max(lsn);
            entry.heard = Instant::now();
        }
    }

    /// Forget a departed replica stream.
    fn drop_replica(&self, id: u64) {
        self.acks.lock().expect("acks lock").remove(&id);
    }

    /// The lowest acknowledged LSN across attached replicas that are
    /// still inside `grace` — `None` when nothing pins the log (no
    /// replicas, or all stragglers past their grace).
    pub fn ack_floor(&self, grace: Duration) -> Option<u64> {
        self.acks
            .lock()
            .expect("acks lock")
            .values()
            .filter(|e| e.heard.elapsed() <= grace)
            .map(|e| e.acked)
            .min()
    }

    /// One checkpoint-and-truncate cycle:
    ///
    /// 1. write a durable mmap checkpoint of the store at the WAL head
    ///    (fsync + rename, via the commit lock so it is exact at its
    ///    LSN) to the policy's checkpoint path;
    /// 2. compute the horizon: the checkpoint's LSN, clamped down to
    ///    the lowest acknowledged LSN of any in-grace replica;
    /// 3. atomically rewrite the log, dropping records `<= horizon`.
    ///
    /// The ordering is the crash-safety invariant: the checkpoint is
    /// durable *before* any log byte is dropped, so recovery at every
    /// intermediate state composes a complete store from
    /// checkpoint + surviving tail. Concurrent cycles are refused
    /// ("busy"), commits keep flowing between steps 1 and 3, and a
    /// sender whose replica the horizon passed (straggler beyond grace)
    /// gets a `Gap` on its next read and hands the replica to the
    /// snapshot re-seed path.
    pub fn compact(&self, service: &MatchService) -> Result<CompactReport, String> {
        let Ok(_guard) = self.compaction.try_lock() else {
            return Err("a compaction is already in progress".into());
        };
        let policy = self.policy.lock().expect("policy lock").clone();
        let Some(checkpoint) = policy.checkpoint else {
            return Err("no checkpoint path configured (compaction needs a wal)".into());
        };

        let checkpoint_lsn = self
            .save_snapshot_atomic(service, &checkpoint)
            .map_err(|e| format!("checkpoint write failed: {e}"))?;
        self.checkpoint_lsn
            .fetch_max(checkpoint_lsn, Ordering::Relaxed);

        let mut horizon = checkpoint_lsn;
        if let Some(floor) = self.ack_floor(policy.grace) {
            horizon = horizon.min(floor);
        }

        let (stats, live) = {
            let mut wal = self.wal.lock().expect("wal lock");
            let stats = wal
                .compact_to(horizon)
                .map_err(|e| format!("wal rewrite failed: {e}"))?;
            (stats, wal.live_bytes())
        };
        if stats.dropped_records > 0 {
            self.compactions.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "lexequald: wal compacted to lsn {horizon} (checkpoint lsn {checkpoint_lsn}): \
                 dropped {} records / {} bytes, {live} bytes live",
                stats.dropped_records, stats.dropped_bytes
            );
        }
        Ok(CompactReport {
            checkpoint_lsn,
            horizon,
            dropped_records: stats.dropped_records,
            dropped_bytes: stats.dropped_bytes,
            wal_bytes_live: live,
        })
    }

    /// Block until the head passes `from`, `timeout` elapses, or the
    /// replicator stops. Returns the head seen.
    fn wait_beyond(&self, from: u64, timeout: Duration) -> u64 {
        let deadline = Instant::now() + timeout;
        let mut tail = self.tail.lock().expect("tail lock");
        while *tail <= from && !self.stopped() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = self
                .tail_cv
                .wait_timeout(tail, deadline - now)
                .expect("tail wait");
            tail = guard;
        }
        *tail
    }

    /// Whether [`stop`](Self::stop) was called.
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Ask every sender thread to wind down (they notice within one
    /// heartbeat).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        self.tail_cv.notify_all();
    }

    /// Track a sender/accept thread for [`stop_and_join`](Self::stop_and_join).
    pub fn adopt_thread(&self, handle: JoinHandle<()>) {
        self.threads.lock().expect("threads lock").push(handle);
    }

    /// Stop and join every tracked thread.
    pub fn stop_and_join(&self) {
        self.stop();
        let handles: Vec<_> = self
            .threads
            .lock()
            .expect("threads lock")
            .drain(..)
            .collect();
        for h in handles {
            h.join().ok();
        }
    }
}

fn io_other(e: impl std::fmt::Display) -> io::Error {
    io::Error::other(e.to_string())
}

/// Serve one replica's stream on the current thread until the link
/// drops or the replicator stops. `hello_lsn` is the replica's last
/// applied LSN (0 = fresh); `peer_mmap` is whether its HELLO advertised
/// the binary snapshot format (a bare `REPL HELLO <lsn>` from a
/// pre-binary replica gets the JSON document, so rolling upgrades keep
/// seeding).
pub fn serve_replica(
    stream: TcpStream,
    hello_lsn: u64,
    peer_mmap: bool,
    service: &MatchService,
    repl: &Replicator,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_write_timeout(Some(SENDER_WRITE_TIMEOUT))?;

    // A replica claiming an LSN past our whole history diverged from
    // this primary's lineage (e.g. we were restored from an older
    // snapshot). Serving it a snapshot would silently roll back state
    // it acknowledged to *its* clients — refuse loudly instead, on
    // both sides of the wire.
    let head = repl.head();
    if hello_lsn > head {
        repl.divergences.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "lexequald: DIVERGENCE: replica HELLO at lsn {hello_lsn} is ahead of this \
             primary's head {head}; its history is not a prefix of ours — refusing to \
             serve it a rollback (operator must re-seed it deliberately)"
        );
        let mut stream = stream;
        stream.write_all(format!("DIVERGED lsn={head}\n").as_bytes())?;
        return Ok(());
    }

    let reader_stream = stream.try_clone()?;
    let shutdown_handle = stream.try_clone()?;
    let mut w = BufWriter::new(stream);
    let id = repl.register_replica(hello_lsn);
    repl.replicas.fetch_add(1, Ordering::Relaxed);
    // The ack reader shares our scope (it only borrows `repl`); the
    // socket shutdown below unblocks it when the sender is done, so
    // the scope never hangs on join.
    let r = std::thread::scope(|s| {
        let reader = s.spawn(|| read_acks(reader_stream, repl, id));
        let r = stream_to_replica(&mut w, hello_lsn, peer_mmap, service, repl, id);
        shutdown_handle.shutdown(Shutdown::Both).ok();
        let _ = reader.join();
        r
    });
    repl.replicas.fetch_sub(1, Ordering::Relaxed);
    repl.drop_replica(id);
    r
}

/// Drain `ACK <lsn>` lines a replica sends back on its stream socket,
/// feeding the compaction horizon. Exits on EOF/error or when the
/// replicator stops (the read timeout bounds how long that takes).
fn read_acks(stream: TcpStream, repl: &Replicator, id: u64) {
    if stream.set_read_timeout(Some(HEARTBEAT)).is_err() {
        return;
    }
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                if let Some(rest) = line.trim_end().strip_prefix("ACK ") {
                    if let Ok(lsn) = rest.trim().parse::<u64>() {
                        repl.note_ack(id, lsn);
                    }
                }
                // Unknown chatter is ignored: future replicas may say more.
                line.clear();
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if repl.stopped() {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn stream_to_replica(
    w: &mut impl Write,
    hello_lsn: u64,
    peer_mmap: bool,
    service: &MatchService,
    repl: &Replicator,
    id: u64,
) -> io::Result<()> {
    let format = if peer_mmap {
        crate::service::SnapshotFormat::Mmap
    } else {
        crate::service::SnapshotFormat::Json
    };
    let mut from = hello_lsn;
    if repl.can_serve_incremental(hello_lsn) {
        writeln!(w, "OK lsn={}", repl.head())?;
    } else {
        if hello_lsn > 0 {
            // A non-fresh replica the log can no longer serve: the
            // compaction horizon passed it. The snapshot transfer
            // re-seeds it live (see `reconnect` on the other side).
            repl.reseeds.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "lexequald: replica at lsn {hello_lsn} predates the wal horizon \
                 (first retained lsn {:?}); re-seeding it via snapshot transfer",
                repl.wal_first_lsn()
            );
        }
        let (bytes, lsn) = repl.snapshot_document(service, format).map_err(io_other)?;
        writeln!(w, "SNAP lsn={lsn} bytes={}", bytes.len())?;
        w.write_all(&bytes)?;
        from = lsn;
    }
    // The stream now owes everything past `from`, and the transfer in
    // flight provably carries state up to it — that floor (not 0) is
    // what this replica pins the compaction horizon at.
    repl.note_ack(id, from);
    w.flush()?;
    let mut cursor = WalCursor::after(from);
    while !repl.stopped() {
        let records = repl.read_tail(&mut cursor).map_err(io_other)?;
        if records.is_empty() {
            let head = repl.wait_beyond(from, HEARTBEAT);
            if head <= from {
                writeln!(w, "PING lsn={}", repl.head())?;
                w.flush()?;
            }
            continue;
        }
        for rec in records {
            writeln!(w, "OP {} {}", rec.lsn, rec.op.encode())?;
            from = rec.lsn;
        }
        w.flush()?;
    }
    Ok(())
}

/// Spawn the background compactor: polls the log size and runs
/// [`Replicator::compact`] whenever it passes the policy's `max_bytes`
/// *and* the horizon can actually drop something (so a fleet of
/// stragglers cannot make it spin writing checkpoints for nothing).
/// Returns the handle; the thread winds down when `shutdown` fires or
/// the replicator stops.
pub fn spawn_compactor(
    repl: Arc<Replicator>,
    service: Arc<MatchService>,
    shutdown: ShutdownSignal,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("lexequald-compactor".to_owned())
        .spawn(move || {
            while !shutdown.is_triggered() && !repl.stopped() {
                std::thread::sleep(COMPACTOR_POLL);
                let policy = repl.policy.lock().expect("policy lock").clone();
                let Some(max_bytes) = policy.max_bytes else {
                    continue;
                };
                if repl.live_bytes() <= max_bytes {
                    continue;
                }
                // Cheap pre-check: would the horizon drop anything?
                let Some(first) = repl.wal_first_lsn() else {
                    continue;
                };
                let horizon = repl
                    .ack_floor(policy.grace)
                    .map_or(repl.head(), |floor| floor.min(repl.head()));
                if horizon < first {
                    continue;
                }
                if let Err(e) = repl.compact(&service) {
                    eprintln!("lexequald: background compaction failed: {e}");
                }
            }
        })
        .expect("spawn compactor thread")
}

/// Accept loop for a dedicated `--repl-listen` port: each connection
/// must open with `REPL HELLO <lsn>` and is then served the stream on
/// its own thread (tracked by the replicator).
pub fn serve_repl_listener(
    listener: TcpListener,
    service: Arc<MatchService>,
    repl: Arc<Replicator>,
    shutdown: ShutdownSignal,
) -> io::Result<()> {
    const ACCEPT_POLL: Duration = Duration::from_millis(100);
    listener.set_nonblocking(true)?;
    while !shutdown.is_triggered() && !repl.stopped() {
        match listener.accept() {
            Ok((stream, _)) => {
                let service = Arc::clone(&service);
                let repl2 = Arc::clone(&repl);
                let handle = std::thread::Builder::new()
                    .name("lexequald-repl".to_owned())
                    .spawn(move || {
                        let _ = handshake_and_serve(stream, &service, &repl2);
                    })
                    .expect("spawn replication sender");
                repl.adopt_thread(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Read the one `REPL HELLO` line a dedicated-port connection owes,
/// then stream.
fn handshake_and_serve(
    stream: TcpStream,
    service: &MatchService,
    repl: &Replicator,
) -> io::Result<()> {
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    match crate::proto::parse_request(&line) {
        Ok(Some(crate::proto::Request::ReplHello { lsn, mmap })) => {
            stream.set_read_timeout(None)?;
            serve_replica(stream, lsn, mmap, service, repl)
        }
        _ => {
            let mut stream = stream;
            stream.write_all(b"ERR expected REPL HELLO <lsn>\n").ok();
            Ok(())
        }
    }
}

/// Replica-side gauges: what `STATS` reports and the apply loop updates.
#[derive(Debug)]
pub struct ReplicaState {
    /// The primary's `HOST:PORT`.
    pub primary: String,
    applied: AtomicU64,
    head: AtomicU64,
    connected: AtomicBool,
    reseeds: AtomicU64,
    divergences: AtomicU64,
}

impl ReplicaState {
    /// Fresh state for a replica of `primary`.
    pub fn new(primary: String) -> ReplicaState {
        ReplicaState {
            primary,
            applied: AtomicU64::new(0),
            head: AtomicU64::new(0),
            connected: AtomicBool::new(false),
            reseeds: AtomicU64::new(0),
            divergences: AtomicU64::new(0),
        }
    }

    /// Live snapshot re-seeds this replica performed after the
    /// primary's log was compacted past it.
    pub fn reseeds(&self) -> u64 {
        self.reseeds.load(Ordering::Relaxed)
    }

    /// Divergences detected (the primary refused us as ahead of its
    /// history, or a shipped snapshot contradicted local state).
    pub fn divergences(&self) -> u64 {
        self.divergences.load(Ordering::Relaxed)
    }

    /// Last LSN applied to the local store.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Acquire)
    }

    /// Last head LSN heard from the primary.
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Whether the stream link is currently up.
    pub fn is_connected(&self) -> bool {
        self.connected.load(Ordering::Acquire)
    }

    /// `head - applied` (0 when caught up).
    pub fn lag(&self) -> u64 {
        self.head().saturating_sub(self.applied())
    }

    /// The `STATS` view of this state.
    pub fn stats(&self) -> ReplStats {
        let head = self.head().max(self.applied());
        ReplStats {
            role: ReplRole::Replica,
            head_lsn: head,
            applied_lsn: self.applied(),
            lag: head.saturating_sub(self.applied()),
            connected: self.is_connected(),
            replicas: 0,
            wal: None,
            primary_addr: Some(self.primary.clone()),
            wal_bytes_live: 0,
            compactions: 0,
            checkpoint_lsn: 0,
            reseeds: self.reseeds(),
            divergences: self.divergences(),
        }
    }
}

/// Why a replica's stream (or sync) failed.
#[derive(Debug)]
pub enum ReplError {
    /// Socket-level failure.
    Io(io::Error),
    /// The primary spoke something this replica doesn't understand —
    /// or went silent past the heartbeat budget.
    Protocol(String),
    /// The shipped snapshot failed to decode/restore.
    Snapshot(lexequal_mdb::DbError),
    /// The primary demanded a full snapshot transfer after this
    /// replica's store already held data: the lineages diverged (e.g.
    /// the primary lost its WAL) and live re-seeding is not supported —
    /// restart the replica to sync from scratch.
    NeedsResync(String),
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::Io(e) => write!(f, "replication io: {e}"),
            ReplError::Protocol(what) => write!(f, "replication protocol: {what}"),
            ReplError::Snapshot(e) => write!(f, "replication snapshot: {e}"),
            ReplError::NeedsResync(what) => write!(f, "replica needs resync: {what}"),
        }
    }
}

impl std::error::Error for ReplError {}

impl From<io::Error> for ReplError {
    fn from(e: io::Error) -> Self {
        ReplError::Io(e)
    }
}

/// `key=value` → value, from a stream header line.
fn kv_u64(tokens: &str, key: &str) -> Result<u64, ReplError> {
    tokens
        .split_whitespace()
        .find_map(|t| t.strip_prefix(key)?.strip_prefix('=')?.parse().ok())
        .ok_or_else(|| ReplError::Protocol(format!("missing {key}= in {tokens:?}")))
}

/// Sleep `*backoff` in shutdown-checking slices, then double it
/// (capped).
fn sleep_backoff(backoff: &mut Duration, shutdown: &ShutdownSignal) {
    const SLICE: Duration = Duration::from_millis(50);
    let mut left = *backoff;
    while !left.is_zero() && !shutdown.is_triggered() {
        let step = left.min(SLICE);
        std::thread::sleep(step);
        left = left.saturating_sub(step);
    }
    *backoff = (*backoff * 2).min(BACKOFF_CAP);
}

/// Connect to the primary and complete the *initial* sync: a fresh
/// `REPL HELLO 0`, the full snapshot transfer, and a restored
/// [`MatchService`] ready to serve. Retries with capped backoff until
/// the primary answers or `shutdown` fires.
pub fn initial_sync(
    primary: &str,
    config: &MatchConfig,
    shards: Option<usize>,
    cache_capacity: usize,
    state: &ReplicaState,
    shutdown: &ShutdownSignal,
) -> Result<(MatchService, TcpStream, BufReader<TcpStream>), ReplError> {
    let mut backoff = BACKOFF_START;
    loop {
        if shutdown.is_triggered() {
            return Err(ReplError::Protocol("shutdown during initial sync".into()));
        }
        match try_initial_sync(primary, config, shards, cache_capacity, state) {
            Ok(link) => return Ok(link),
            Err(e) => {
                eprintln!("lexequald: initial sync with {primary} failed ({e}), retrying");
                sleep_backoff(&mut backoff, shutdown);
            }
        }
    }
}

fn try_initial_sync(
    primary: &str,
    config: &MatchConfig,
    shards: Option<usize>,
    cache_capacity: usize,
    state: &ReplicaState,
) -> Result<(MatchService, TcpStream, BufReader<TcpStream>), ReplError> {
    let stream = TcpStream::connect(primary)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
    let mut w = stream.try_clone()?;
    // Advertise binary-snapshot support; an older primary ignores the
    // trailing token and ships JSON, which the magic sniff below still
    // handles.
    w.write_all(b"REPL HELLO 0 MMAP\n")?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(ReplError::Protocol(
            "primary closed the connection during the handshake".into(),
        ));
    }
    let header = line.trim_end();
    let Some(rest) = header.strip_prefix("SNAP ") else {
        return Err(ReplError::Protocol(format!(
            "expected SNAP for a fresh replica, got {header:?}"
        )));
    };
    let lsn = kv_u64(rest, "lsn")?;
    let nbytes = kv_u64(rest, "bytes")? as usize;
    let mut bytes = vec![0u8; nbytes];
    reader.read_exact(&mut bytes)?;
    let start = std::time::Instant::now();
    let service = if crate::mmapstore::is_binary(&bytes) {
        // The primary ships the binary image verbatim: load the
        // transfer buffer directly — no re-parse, no re-encode.
        let image = crate::mmapstore::load_bytes(config.clone(), shards, bytes)
            .map_err(ReplError::Snapshot)?;
        if image.lsn != lsn {
            return Err(ReplError::Protocol(format!(
                "snapshot says lsn {} but the header said {lsn}",
                image.lsn
            )));
        }
        let service = MatchService::from_store(image.store, cache_capacity);
        // A replica serves immediately after seeding, so its recorded
        // access paths are rebuilt before the handshake completes.
        for spec in image.builds {
            service.build(spec);
        }
        service.set_load_info(crate::service::LoadInfo {
            format: "mmap",
            mapped_bytes: image.bytes,
            load_ms: start.elapsed().as_millis() as u64,
        });
        service
    } else {
        let snap = StoreSnapshot::read_from(bytes.as_slice()).map_err(ReplError::Snapshot)?;
        if snap.lsn() != lsn {
            return Err(ReplError::Protocol(format!(
                "snapshot says lsn {} but the header said {lsn}",
                snap.lsn()
            )));
        }
        let store = match shards {
            Some(m) => snap.restore_with_shards(config.clone(), m),
            None => snap.restore(config.clone()),
        }
        .map_err(ReplError::Snapshot)?;
        let service = MatchService::from_store(store, cache_capacity);
        service.set_load_info(crate::service::LoadInfo {
            format: "json",
            mapped_bytes: nbytes as u64,
            load_ms: start.elapsed().as_millis() as u64,
        });
        service
    };
    state.applied.store(lsn, Ordering::Release);
    state.head.fetch_max(lsn, Ordering::AcqRel);
    state.connected.store(true, Ordering::Release);
    stream.set_read_timeout(Some(REPLICA_READ_TIMEOUT))?;
    Ok((service, stream, reader))
}

/// Apply the primary's stream to `service` until `shutdown` fires,
/// reconnecting with capped exponential backoff across primary
/// restarts. The only fatal return is [`ReplError::NeedsResync`].
pub fn run_replica(
    service: &MatchService,
    state: &ReplicaState,
    first_link: Option<(TcpStream, BufReader<TcpStream>)>,
    shutdown: &ShutdownSignal,
) -> Result<(), ReplError> {
    let mut link = first_link;
    let mut backoff = BACKOFF_START;
    loop {
        if shutdown.is_triggered() {
            return Ok(());
        }
        let (stream, reader) = match link.take() {
            Some(l) => l,
            None => match reconnect(service, state) {
                Ok(l) => l,
                Err(e @ ReplError::NeedsResync(_)) => return Err(e),
                Err(_) => {
                    sleep_backoff(&mut backoff, shutdown);
                    continue;
                }
            },
        };
        state.connected.store(true, Ordering::Release);
        backoff = BACKOFF_START;
        let outcome = apply_stream(service, state, &stream, reader, shutdown);
        state.connected.store(false, Ordering::Release);
        if let Err(e @ ReplError::NeedsResync(_)) = outcome {
            return Err(e);
        }
        // Anything else — disconnect, timeout, protocol hiccup — is
        // retryable: the primary may just be restarting.
        sleep_backoff(&mut backoff, shutdown);
    }
}

/// One reconnect attempt: `REPL HELLO <applied>` expecting an
/// incremental `OK`. A `SNAP` means the primary's log was compacted
/// past us: re-seed live from the transfer (see
/// [`apply_snapshot_delta`]). A `DIVERGED` reply — or a snapshot that
/// contradicts local state — is the fatal [`ReplError::NeedsResync`].
fn reconnect(
    service: &MatchService,
    state: &ReplicaState,
) -> Result<(TcpStream, BufReader<TcpStream>), ReplError> {
    let stream = TcpStream::connect(&state.primary)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
    let applied = state.applied();
    let mut w = stream.try_clone()?;
    w.write_all(format!("REPL HELLO {applied} MMAP\n").as_bytes())?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(ReplError::Protocol(
            "primary closed the connection during the handshake".into(),
        ));
    }
    let header = line.trim_end();
    if let Some(rest) = header.strip_prefix("OK ") {
        state.head.fetch_max(kv_u64(rest, "lsn")?, Ordering::AcqRel);
        stream.set_read_timeout(Some(REPLICA_READ_TIMEOUT))?;
        return Ok((stream, reader));
    }
    if let Some(rest) = header.strip_prefix("DIVERGED ") {
        let primary_head = kv_u64(rest, "lsn").unwrap_or(0);
        state.divergences.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "lexequald: DIVERGENCE: this replica applied lsn {applied} but primary {} \
             only reaches lsn {primary_head}; continuing would roll back acknowledged \
             state — refusing",
            state.primary
        );
        return Err(ReplError::NeedsResync(format!(
            "history diverged: replica at lsn {applied} is ahead of primary head \
             {primary_head}; wipe this replica deliberately to re-seed it"
        )));
    }
    if let Some(rest) = header.strip_prefix("SNAP ") {
        let lsn = kv_u64(rest, "lsn")?;
        let nbytes = kv_u64(rest, "bytes")? as usize;
        let mut bytes = vec![0u8; nbytes];
        reader.read_exact(&mut bytes)?;
        if lsn < applied {
            state.divergences.fetch_add(1, Ordering::Relaxed);
            return Err(ReplError::NeedsResync(format!(
                "primary's snapshot covers lsn {lsn}, behind this replica's applied \
                 {applied}: histories diverged"
            )));
        }
        let added = apply_snapshot_delta(service, bytes, lsn)?;
        if !(added == 0 && service.is_empty()) {
            // A genuine mid-life re-seed, not the both-sides-fresh case.
            state.reseeds.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "lexequald: primary's log was compacted past lsn {applied}; re-seeded \
                 live from its snapshot at lsn {lsn} ({added} entries appended)"
            );
        }
        state.applied.store(lsn, Ordering::Release);
        state.head.fetch_max(lsn, Ordering::AcqRel);
        stream.set_read_timeout(Some(REPLICA_READ_TIMEOUT))?;
        return Ok((stream, reader));
    }
    Err(ReplError::Protocol(format!(
        "unexpected handshake reply {header:?}"
    )))
}

/// Catch this replica up from a full snapshot transfer *without*
/// restarting: non-divergent WAL history means the local store is a
/// strict prefix of the snapshot (entries append in LSN order on every
/// copy), so it suffices to verify the prefix, append the missing tail
/// entries (already transformed — no G2P cost), and rebuild the
/// snapshot's recorded access paths. Returns how many entries were
/// appended; a snapshot that contradicts local state is
/// [`ReplError::NeedsResync`].
fn apply_snapshot_delta(
    service: &MatchService,
    bytes: Vec<u8>,
    lsn: u64,
) -> Result<usize, ReplError> {
    let config = service.store().config().clone();
    let shards = service.store().shards();
    // Decode into a detached store; either transfer format works.
    let (snap_store, builds) = if crate::mmapstore::is_binary(&bytes) {
        let image = crate::mmapstore::load_bytes(config, Some(shards), bytes)
            .map_err(ReplError::Snapshot)?;
        if image.lsn != lsn {
            return Err(ReplError::Protocol(format!(
                "snapshot says lsn {} but the header said {lsn}",
                image.lsn
            )));
        }
        (image.store, image.builds)
    } else {
        let snap = StoreSnapshot::read_from(bytes.as_slice()).map_err(ReplError::Snapshot)?;
        if snap.lsn() != lsn {
            return Err(ReplError::Protocol(format!(
                "snapshot says lsn {} but the header said {lsn}",
                snap.lsn()
            )));
        }
        let store = snap
            .restore_with_shards(config, shards)
            .map_err(ReplError::Snapshot)?;
        let builds = store.built_specs();
        (store, builds)
    };

    let have = service.len() as u32;
    let snap_len = snap_store.len() as u32;
    if snap_len < have {
        return Err(ReplError::NeedsResync(format!(
            "primary's snapshot holds {snap_len} entries but this replica already has \
             {have}: histories diverged"
        )));
    }
    // Spot-check the prefix property at both ends and the middle: ids
    // assign in append order, so any divergent history shows up as a
    // mismatched entry at the same id.
    let mut probes = vec![];
    if have > 0 {
        probes.extend([0, have / 2, have - 1]);
        probes.dedup();
    }
    for id in probes {
        let mine = service.store().get(id);
        let theirs = snap_store.get(id);
        let same = match (&mine, &theirs) {
            (Some(a), Some(b)) => a.text == b.text && a.language == b.language,
            _ => false,
        };
        if !same {
            return Err(ReplError::NeedsResync(format!(
                "entry id {id} differs between this replica and the primary's snapshot \
                 ({:?} vs {:?}): histories diverged",
                mine.map(|e| e.text),
                theirs.map(|e| e.text)
            )));
        }
    }

    let delta: Vec<_> = (have..snap_len)
        .map(|id| snap_store.get(id).expect("id below snapshot len"))
        .collect();
    let added = delta.len();
    if added > 0 {
        let range = service.extend_transformed(delta);
        debug_assert_eq!(range.start, have, "ids must continue the local sequence");
    }
    // Converge the access paths to the snapshot's recorded set (the
    // appends above invalidated any local ones).
    for spec in builds {
        service.build(spec);
    }
    Ok(added)
}

/// Apply `OP`/`PING` lines until the link breaks or `shutdown` fires.
/// After applying, progress is acknowledged back on the same socket
/// (`ACK <lsn>`, throttled to [`ACK_INTERVAL`], plus one per heartbeat
/// so an idle link keeps refreshing its straggler-grace clock) — the
/// primary folds these into its compaction horizon.
fn apply_stream(
    service: &MatchService,
    state: &ReplicaState,
    stream: &TcpStream,
    mut reader: BufReader<TcpStream>,
    shutdown: &ShutdownSignal,
) -> Result<(), ReplError> {
    let mut line = String::new();
    let mut last_ack_lsn = state.applied();
    let mut last_ack_at = Instant::now();
    // Establish our position immediately: a primary deciding a
    // compaction horizon should not have to wait a full interval.
    send_ack(stream, last_ack_lsn)?;
    loop {
        if shutdown.is_triggered() {
            return Ok(());
        }
        // NB: `read_line` may buffer a partial line across a timeout, so
        // `line` is only cleared after a full line is processed.
        match reader.read_line(&mut line) {
            Ok(0) => return Err(ReplError::Protocol("primary closed the stream".into())),
            Ok(_) => {
                let is_ping = line.starts_with("PING ");
                apply_stream_line(service, state, line.trim_end())?;
                line.clear();
                let applied = state.applied();
                if is_ping || (applied > last_ack_lsn && last_ack_at.elapsed() >= ACK_INTERVAL) {
                    send_ack(stream, applied)?;
                    last_ack_lsn = applied;
                    last_ack_at = Instant::now();
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.is_triggered() {
                    return Ok(());
                }
                // Heartbeats come every ~500ms; a multi-second silence
                // means the link (or the primary) is gone.
                return Err(ReplError::Protocol(format!(
                    "primary silent for {REPLICA_READ_TIMEOUT:?}"
                )));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ReplError::Io(e)),
        }
    }
}

/// Write one `ACK <lsn>` on the stream socket (the primary's ack
/// reader drains these on its side of the same connection).
fn send_ack(stream: &TcpStream, lsn: u64) -> Result<(), ReplError> {
    let mut w = stream;
    w.write_all(format!("ACK {lsn}\n").as_bytes())
        .map_err(ReplError::Io)
}

fn apply_stream_line(
    service: &MatchService,
    state: &ReplicaState,
    line: &str,
) -> Result<(), ReplError> {
    if let Some(rest) = line.strip_prefix("OP ") {
        let (lsn_tok, payload) = rest
            .split_once(' ')
            .ok_or_else(|| ReplError::Protocol(format!("malformed op line {line:?}")))?;
        let lsn: u64 = lsn_tok
            .parse()
            .map_err(|_| ReplError::Protocol(format!("bad op lsn {lsn_tok:?}")))?;
        let applied = state.applied();
        if lsn <= applied {
            // Replay overlap after a reconnect — already applied.
            return Ok(());
        }
        if lsn != applied + 1 {
            return Err(ReplError::Protocol(format!(
                "op lsn {lsn} arrived after {applied} (hole in the stream)"
            )));
        }
        let op = Op::decode(payload).map_err(ReplError::Protocol)?;
        service
            .apply_op(&op)
            .map_err(|e| ReplError::Protocol(format!("apply of lsn {lsn} failed: {e:?}")))?;
        state.applied.store(lsn, Ordering::Release);
        state.head.fetch_max(lsn, Ordering::AcqRel);
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix("PING ") {
        state.head.fetch_max(kv_u64(rest, "lsn")?, Ordering::AcqRel);
        return Ok(());
    }
    if line.is_empty() {
        return Ok(());
    }
    Err(ReplError::Protocol(format!(
        "unexpected stream line {line:?}"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use lexequal::{Language, SearchMethod};
    use std::path::PathBuf;

    fn temp_wal(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "lexequal_repl_unit_{}_{name}.wal",
            std::process::id()
        ))
    }

    /// Regression: replica seeding used to hard-code the binary image,
    /// which broke rolling upgrades (new primary, pre-mmap replicas).
    /// The transfer format now follows the peer's advertised
    /// capability, and the JSON branch must still be the exact
    /// pre-binary wire document an old replica can parse.
    #[test]
    fn snapshot_document_format_follows_peer_capability() {
        let primary = MatchService::new(ServiceConfig {
            match_config: MatchConfig::default(),
            shards: 2,
            cache_capacity: 16,
        });
        let wal_path = temp_wal("format");
        std::fs::remove_file(&wal_path).ok();
        let metrics = Arc::new(WalMetrics::default());
        let (wal, _replay) = Wal::open(&wal_path, 0, Arc::clone(&metrics)).expect("open wal");
        let repl = Replicator::new(wal, metrics);
        for text in ["Nehru", "Gandhi"] {
            repl.commit_add(&primary, text, Language::English)
                .expect("commit");
        }

        let (mmap_bytes, mmap_lsn) = repl
            .snapshot_document(&primary, crate::service::SnapshotFormat::Mmap)
            .expect("binary document");
        assert!(
            crate::mmapstore::is_binary(&mmap_bytes),
            "an MMAP-capable peer gets the binary image"
        );

        let (json_bytes, json_lsn) = repl
            .snapshot_document(&primary, crate::service::SnapshotFormat::Json)
            .expect("json document");
        assert!(
            !crate::mmapstore::is_binary(&json_bytes),
            "a bare-HELLO peer must never see binary bytes"
        );
        assert_eq!(mmap_lsn, json_lsn, "both formats stamp the WAL head");

        let snap = StoreSnapshot::read_from(&json_bytes[..]).expect("old-format parse");
        assert_eq!(snap.lsn(), json_lsn);

        std::fs::remove_file(&wal_path).ok();
    }

    /// In-process end to end: primary with a WAL and a stream listener,
    /// a replica syncing (snapshot transfer) then following commits
    /// (incremental tail), converging to identical lookups.
    #[test]
    fn replica_converges_in_process() {
        let config = MatchConfig::default();
        let primary = Arc::new(MatchService::new(ServiceConfig {
            match_config: config.clone(),
            shards: 2,
            cache_capacity: 64,
        }));
        let wal_path = temp_wal("converge");
        std::fs::remove_file(&wal_path).ok();
        let metrics = Arc::new(WalMetrics::default());
        let (wal, replay) = Wal::open(&wal_path, 0, Arc::clone(&metrics)).expect("open wal");
        assert!(replay.is_empty());
        let repl = Replicator::new(wal, metrics);

        // Pre-replica history: names + builds, all through the commit path.
        for text in ["Nehru", "Nero", "Gandhi"] {
            repl.commit_add(&primary, text, Language::English)
                .expect("commit");
        }
        repl.commit_build(&primary, crate::shard::BuildSpec::BkTree)
            .expect("commit build");

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let shutdown = ShutdownSignal::new().expect("shutdown signal");
        let accept = {
            let service = Arc::clone(&primary);
            let repl = Arc::clone(&repl);
            let shutdown = shutdown.clone();
            std::thread::spawn(move || serve_repl_listener(listener, service, repl, shutdown))
        };

        let state = Arc::new(ReplicaState::new(addr));
        let (replica, stream, reader) =
            initial_sync(&state.primary, &config, None, 64, &state, &shutdown).expect("sync");
        assert_eq!(replica.len(), 3, "snapshot transfer carried the corpus");
        assert_eq!(state.applied(), 4);
        let replica = Arc::new(replica);
        let apply = {
            let replica = Arc::clone(&replica);
            let state = Arc::clone(&state);
            let shutdown = shutdown.clone();
            std::thread::spawn(move || {
                run_replica(&replica, &state, Some((stream, reader)), &shutdown)
            })
        };

        // Incremental tail: more names + a build.
        for text in ["Krishnan", "Bose"] {
            repl.commit_add(&primary, text, Language::English)
                .expect("commit");
        }
        repl.commit_build(&primary, crate::shard::BuildSpec::PhoneticIndex)
            .expect("commit build");

        let deadline = Instant::now() + Duration::from_secs(20);
        while state.applied() < repl.head() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(state.applied(), repl.head(), "replica caught up");
        assert_eq!(state.lag(), 0);
        assert_eq!(replica.len(), primary.len());

        // Identical answers on both copies.
        for text in ["Nehru", "Bose", "Gandhi"] {
            let req = crate::service::MatchRequest {
                threshold: Some(0.4),
                method: Some(SearchMethod::Scan),
                ..crate::service::MatchRequest::new(text, Language::English)
            };
            assert_eq!(primary.lookup(&req), replica.lookup(&req), "{text}");
        }
        assert!(replica.is_built(SearchMethod::PhoneticIndex));

        shutdown.trigger();
        repl.stop_and_join();
        apply.join().expect("apply thread").expect("stream clean");
        accept.join().expect("accept thread").expect("accept clean");
        std::fs::remove_file(&wal_path).ok();
    }

    #[test]
    fn bad_input_never_reaches_the_log() {
        // English-only registry: a Hindi ADD fails at transform time,
        // before the commit lock ever writes a record.
        let config = crate::service::ServiceConfig {
            match_config: lexequal::MatchConfig::default()
                .with_registry(lexequal::G2pRegistry::with_languages(&[Language::English])),
            shards: 1,
            cache_capacity: 16,
        };
        let primary = MatchService::new(config);
        let wal_path = temp_wal("badinput");
        std::fs::remove_file(&wal_path).ok();
        let metrics = Arc::new(WalMetrics::default());
        let (wal, _) = Wal::open(&wal_path, 0, Arc::clone(&metrics)).expect("open wal");
        let repl = Replicator::new(wal, Arc::clone(&metrics));
        let err = repl.commit_add(&primary, "नेहरु", Language::Hindi);
        assert!(matches!(err, Err(CommitError::BadInput(_))), "{err:?}");
        assert_eq!(repl.head(), 0);
        assert_eq!(metrics.stats().appends, 0);
        assert_eq!(primary.len(), 0);
        std::fs::remove_file(&wal_path).ok();
    }
}
