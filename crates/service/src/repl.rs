//! Primary/replica replication: snapshot shipping plus WAL streaming.
//!
//! A primary started with `--wal` owns a [`Replicator`]: the single
//! commit path that appends every mutation to the log (fsynced) and
//! only then applies it to the store, under one lock — so LSN order is
//! store-apply order, on the primary and on every copy. A replica
//! (`--replica-of HOST:PORT`) opens the primary's line protocol with
//! `REPL HELLO <lsn> MMAP` and applies what comes back through the same
//! deterministic [`MatchService::apply_op`] path WAL replay uses.
//!
//! The trailing `MMAP` token negotiates the snapshot transfer format: a
//! replica that advertises it is shipped the binary mmap image verbatim
//! (loaded zero-copy from the transfer buffer), while a bare
//! `REPL HELLO <lsn>` — a replica from before the binary format
//! existed — is served the JSON document it understands. Either side
//! may be upgraded first: an old primary ignores the unknown token, and
//! a new replica sniffs the transfer's magic bytes to pick its loader.
//!
//! # Stream grammar (primary → replica, after the HELLO)
//!
//! ```text
//! SNAP lsn=<l> bytes=<n>\n<n snapshot bytes>   full transfer, then streaming
//! OK lsn=<head>\n                              incremental catch-up possible
//! OP <lsn> <op payload>\n                      one committed mutation
//! PING lsn=<head>\n                            heartbeat (~500ms when idle)
//! ```
//!
//! The primary answers `SNAP` when the replica's LSN is 0 or has fallen
//! behind the log horizon (the WAL no longer holds `lsn+1`), `OK`
//! otherwise. A replica only accepts a `SNAP` while its store is still
//! empty — a mid-life demand means the primary's lineage diverged and
//! comes back as the fatal [`ReplError::NeedsResync`] (restart the
//! replica to re-seed).
//!
//! [`MatchService::apply_op`]: crate::MatchService::apply_op

use crate::event_loop::ShutdownSignal;
use crate::metrics::{ReplRole, ReplStats, WalMetrics, WalStats};
use crate::service::MatchService;
use crate::snapshot::StoreSnapshot;
use crate::wal::{Op, Wal, WalError, WalRecord};
use lexequal::MatchConfig;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Idle-stream heartbeat interval (each carries the head LSN).
pub const HEARTBEAT: Duration = Duration::from_millis(500);
/// A replica declares the link dead after this long without a line
/// (several heartbeats worth).
const REPLICA_READ_TIMEOUT: Duration = Duration::from_secs(3);
/// Reconnect backoff start / cap.
const BACKOFF_START: Duration = Duration::from_millis(100);
const BACKOFF_CAP: Duration = Duration::from_secs(3);
/// How long a primary waits on a stuck replica socket before dropping it.
const SENDER_WRITE_TIMEOUT: Duration = Duration::from_secs(10);
/// Handshake patience (covers a large snapshot transfer).
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(30);

/// Why a commit was refused.
#[derive(Debug)]
pub enum CommitError {
    /// The input failed G2P transform — nothing was logged or applied.
    BadInput(lexequal::G2pError),
    /// The WAL append failed — nothing was applied.
    Wal(WalError),
}

impl std::fmt::Display for CommitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommitError::BadInput(e) => write!(f, "{e:?}"),
            CommitError::Wal(e) => write!(f, "wal append failed: {e}"),
        }
    }
}

/// Primary-side replication state: the WAL behind its commit lock, the
/// published head LSN, and the sender threads feeding replicas.
pub struct Replicator {
    /// THE commit lock: append+fsync and store-apply happen under it,
    /// so apply order always equals LSN order.
    wal: Mutex<Wal>,
    head: AtomicU64,
    /// Last committed LSN, guarded separately so stream senders can
    /// block on the condvar without touching the commit lock.
    tail: Mutex<u64>,
    tail_cv: Condvar,
    replicas: AtomicU64,
    stop: AtomicBool,
    threads: Mutex<Vec<JoinHandle<()>>>,
    metrics: Arc<WalMetrics>,
}

impl std::fmt::Debug for Replicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replicator")
            .field("head", &self.head())
            .field("replicas", &self.replicas())
            .finish_non_exhaustive()
    }
}

impl Replicator {
    /// Wrap an opened (already replayed) WAL.
    pub fn new(wal: Wal, metrics: Arc<WalMetrics>) -> Arc<Replicator> {
        let head = wal.head_lsn();
        Arc::new(Replicator {
            wal: Mutex::new(wal),
            head: AtomicU64::new(head),
            tail: Mutex::new(head),
            tail_cv: Condvar::new(),
            replicas: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            threads: Mutex::new(Vec::new()),
            metrics: Arc::clone(&metrics),
        })
    }

    /// Last committed LSN.
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Replica streams attached right now.
    pub fn replicas(&self) -> u64 {
        self.replicas.load(Ordering::Relaxed)
    }

    /// WAL counter snapshot.
    pub fn wal_stats(&self) -> WalStats {
        self.metrics.stats()
    }

    /// Commit one `ADD`: validate (transform) first, append+fsync, then
    /// apply — the client's `OK` only ever follows a durable record.
    /// Returns `(lsn, global id)`.
    pub fn commit_add(
        &self,
        service: &MatchService,
        text: &str,
        language: lexequal::Language,
    ) -> Result<(u64, u32), CommitError> {
        let entry = service
            .prepare_entry(text, language)
            .map_err(CommitError::BadInput)?;
        let op = Op::Add {
            language,
            text: text.to_owned(),
        };
        let mut wal = self.wal.lock().expect("wal lock");
        let lsn = wal.append(&op).map_err(CommitError::Wal)?;
        let id = service.apply_entry(entry);
        self.publish(lsn);
        Ok((lsn, id))
    }

    /// Commit one `BUILD`. Returns its LSN.
    pub fn commit_build(
        &self,
        service: &MatchService,
        spec: crate::shard::BuildSpec,
    ) -> Result<u64, CommitError> {
        let mut wal = self.wal.lock().expect("wal lock");
        let lsn = wal.append(&Op::Build(spec)).map_err(CommitError::Wal)?;
        service.build(spec);
        self.publish(lsn);
        Ok(lsn)
    }

    /// Publish a committed LSN (called with the commit lock held, so
    /// `fetch_max` is belt-and-braces).
    fn publish(&self, lsn: u64) {
        self.head.fetch_max(lsn, Ordering::Release);
        let mut tail = self.tail.lock().expect("tail lock");
        *tail = (*tail).max(lsn);
        drop(tail);
        self.tail_cv.notify_all();
    }

    /// Capture a store snapshot consistent with the WAL head (holds the
    /// commit lock for the duration). Returns `(image bytes, lsn)`.
    /// With [`SnapshotFormat::Mmap`] the bytes are the binary image —
    /// exactly what a snapshot file holds, so a replica that advertised
    /// the capability loads the transfer buffer directly (or persists
    /// it verbatim) with no re-encode. [`SnapshotFormat::Json`] is the
    /// pre-binary wire document, kept for replicas that predate the
    /// mmap format (rolling upgrades: new primary, old replicas).
    ///
    /// [`SnapshotFormat::Mmap`]: crate::service::SnapshotFormat::Mmap
    /// [`SnapshotFormat::Json`]: crate::service::SnapshotFormat::Json
    pub fn snapshot_document(
        &self,
        service: &MatchService,
        format: crate::service::SnapshotFormat,
    ) -> Result<(Vec<u8>, u64), lexequal_mdb::DbError> {
        let wal = self.wal.lock().expect("wal lock");
        let lsn = wal.head_lsn();
        let bytes = match format {
            crate::service::SnapshotFormat::Mmap => crate::mmapstore::encode(service.store(), lsn)?,
            crate::service::SnapshotFormat::Json => {
                let mut bytes = Vec::new();
                StoreSnapshot::capture_with_lsn(service.store(), lsn).write_to(&mut bytes)?;
                bytes
            }
        };
        Ok((bytes, lsn))
    }

    /// Snapshot the store to `path` atomically, stamped with the WAL
    /// head (holds the commit lock). Returns the covered LSN.
    pub fn save_snapshot_atomic(
        &self,
        service: &MatchService,
        path: &Path,
    ) -> Result<u64, lexequal_mdb::DbError> {
        self.save_snapshot_atomic_format(service, path, crate::service::SnapshotFormat::Mmap)
    }

    /// [`save_snapshot_atomic`](Self::save_snapshot_atomic) in an
    /// explicit format (`SAVE JSON` on a primary).
    pub fn save_snapshot_atomic_format(
        &self,
        service: &MatchService,
        path: &Path,
        format: crate::service::SnapshotFormat,
    ) -> Result<u64, lexequal_mdb::DbError> {
        let wal = self.wal.lock().expect("wal lock");
        let lsn = wal.head_lsn();
        match format {
            crate::service::SnapshotFormat::Mmap => {
                crate::mmapstore::write_file_atomic(service.store(), lsn, path)?;
            }
            crate::service::SnapshotFormat::Json => {
                StoreSnapshot::capture_with_lsn(service.store(), lsn).write_to_file_atomic(path)?;
            }
        }
        Ok(lsn)
    }

    /// Whether an incremental catch-up from `from` loses nothing
    /// (0 always demands a snapshot — a fresh replica has no state).
    pub fn can_serve_incremental(&self, from: u64) -> bool {
        from != 0 && self.wal.lock().expect("wal lock").can_serve_from(from)
    }

    /// Records with `lsn > from`, in order.
    pub fn read_from(&self, from: u64) -> Result<Vec<WalRecord>, WalError> {
        self.wal.lock().expect("wal lock").read_from(from)
    }

    /// Block until the head passes `from`, `timeout` elapses, or the
    /// replicator stops. Returns the head seen.
    fn wait_beyond(&self, from: u64, timeout: Duration) -> u64 {
        let deadline = Instant::now() + timeout;
        let mut tail = self.tail.lock().expect("tail lock");
        while *tail <= from && !self.stopped() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = self
                .tail_cv
                .wait_timeout(tail, deadline - now)
                .expect("tail wait");
            tail = guard;
        }
        *tail
    }

    /// Whether [`stop`](Self::stop) was called.
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Ask every sender thread to wind down (they notice within one
    /// heartbeat).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        self.tail_cv.notify_all();
    }

    /// Track a sender/accept thread for [`stop_and_join`](Self::stop_and_join).
    pub fn adopt_thread(&self, handle: JoinHandle<()>) {
        self.threads.lock().expect("threads lock").push(handle);
    }

    /// Stop and join every tracked thread.
    pub fn stop_and_join(&self) {
        self.stop();
        let handles: Vec<_> = self
            .threads
            .lock()
            .expect("threads lock")
            .drain(..)
            .collect();
        for h in handles {
            h.join().ok();
        }
    }
}

fn io_other(e: impl std::fmt::Display) -> io::Error {
    io::Error::other(e.to_string())
}

/// Serve one replica's stream on the current thread until the link
/// drops or the replicator stops. `hello_lsn` is the replica's last
/// applied LSN (0 = fresh); `peer_mmap` is whether its HELLO advertised
/// the binary snapshot format (a bare `REPL HELLO <lsn>` from a
/// pre-binary replica gets the JSON document, so rolling upgrades keep
/// seeding).
pub fn serve_replica(
    stream: TcpStream,
    hello_lsn: u64,
    peer_mmap: bool,
    service: &MatchService,
    repl: &Replicator,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_write_timeout(Some(SENDER_WRITE_TIMEOUT))?;
    let mut w = BufWriter::new(stream);
    repl.replicas.fetch_add(1, Ordering::Relaxed);
    let r = stream_to_replica(&mut w, hello_lsn, peer_mmap, service, repl);
    repl.replicas.fetch_sub(1, Ordering::Relaxed);
    r
}

fn stream_to_replica(
    w: &mut impl Write,
    hello_lsn: u64,
    peer_mmap: bool,
    service: &MatchService,
    repl: &Replicator,
) -> io::Result<()> {
    let format = if peer_mmap {
        crate::service::SnapshotFormat::Mmap
    } else {
        crate::service::SnapshotFormat::Json
    };
    let mut from = hello_lsn;
    if repl.can_serve_incremental(hello_lsn) {
        writeln!(w, "OK lsn={}", repl.head())?;
    } else {
        let (bytes, lsn) = repl.snapshot_document(service, format).map_err(io_other)?;
        writeln!(w, "SNAP lsn={lsn} bytes={}", bytes.len())?;
        w.write_all(&bytes)?;
        from = lsn;
    }
    w.flush()?;
    while !repl.stopped() {
        let records = repl.read_from(from).map_err(io_other)?;
        if records.is_empty() {
            let head = repl.wait_beyond(from, HEARTBEAT);
            if head <= from {
                writeln!(w, "PING lsn={}", repl.head())?;
                w.flush()?;
            }
            continue;
        }
        for rec in records {
            writeln!(w, "OP {} {}", rec.lsn, rec.op.encode())?;
            from = rec.lsn;
        }
        w.flush()?;
    }
    Ok(())
}

/// Accept loop for a dedicated `--repl-listen` port: each connection
/// must open with `REPL HELLO <lsn>` and is then served the stream on
/// its own thread (tracked by the replicator).
pub fn serve_repl_listener(
    listener: TcpListener,
    service: Arc<MatchService>,
    repl: Arc<Replicator>,
    shutdown: ShutdownSignal,
) -> io::Result<()> {
    const ACCEPT_POLL: Duration = Duration::from_millis(100);
    listener.set_nonblocking(true)?;
    while !shutdown.is_triggered() && !repl.stopped() {
        match listener.accept() {
            Ok((stream, _)) => {
                let service = Arc::clone(&service);
                let repl2 = Arc::clone(&repl);
                let handle = std::thread::Builder::new()
                    .name("lexequald-repl".to_owned())
                    .spawn(move || {
                        let _ = handshake_and_serve(stream, &service, &repl2);
                    })
                    .expect("spawn replication sender");
                repl.adopt_thread(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Read the one `REPL HELLO` line a dedicated-port connection owes,
/// then stream.
fn handshake_and_serve(
    stream: TcpStream,
    service: &MatchService,
    repl: &Replicator,
) -> io::Result<()> {
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    match crate::proto::parse_request(&line) {
        Ok(Some(crate::proto::Request::ReplHello { lsn, mmap })) => {
            stream.set_read_timeout(None)?;
            serve_replica(stream, lsn, mmap, service, repl)
        }
        _ => {
            let mut stream = stream;
            stream.write_all(b"ERR expected REPL HELLO <lsn>\n").ok();
            Ok(())
        }
    }
}

/// Replica-side gauges: what `STATS` reports and the apply loop updates.
#[derive(Debug)]
pub struct ReplicaState {
    /// The primary's `HOST:PORT`.
    pub primary: String,
    applied: AtomicU64,
    head: AtomicU64,
    connected: AtomicBool,
}

impl ReplicaState {
    /// Fresh state for a replica of `primary`.
    pub fn new(primary: String) -> ReplicaState {
        ReplicaState {
            primary,
            applied: AtomicU64::new(0),
            head: AtomicU64::new(0),
            connected: AtomicBool::new(false),
        }
    }

    /// Last LSN applied to the local store.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Acquire)
    }

    /// Last head LSN heard from the primary.
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Whether the stream link is currently up.
    pub fn is_connected(&self) -> bool {
        self.connected.load(Ordering::Acquire)
    }

    /// `head - applied` (0 when caught up).
    pub fn lag(&self) -> u64 {
        self.head().saturating_sub(self.applied())
    }

    /// The `STATS` view of this state.
    pub fn stats(&self) -> ReplStats {
        let head = self.head().max(self.applied());
        ReplStats {
            role: ReplRole::Replica,
            head_lsn: head,
            applied_lsn: self.applied(),
            lag: head.saturating_sub(self.applied()),
            connected: self.is_connected(),
            replicas: 0,
            wal: None,
            primary_addr: Some(self.primary.clone()),
        }
    }
}

/// Why a replica's stream (or sync) failed.
#[derive(Debug)]
pub enum ReplError {
    /// Socket-level failure.
    Io(io::Error),
    /// The primary spoke something this replica doesn't understand —
    /// or went silent past the heartbeat budget.
    Protocol(String),
    /// The shipped snapshot failed to decode/restore.
    Snapshot(lexequal_mdb::DbError),
    /// The primary demanded a full snapshot transfer after this
    /// replica's store already held data: the lineages diverged (e.g.
    /// the primary lost its WAL) and live re-seeding is not supported —
    /// restart the replica to sync from scratch.
    NeedsResync(String),
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::Io(e) => write!(f, "replication io: {e}"),
            ReplError::Protocol(what) => write!(f, "replication protocol: {what}"),
            ReplError::Snapshot(e) => write!(f, "replication snapshot: {e}"),
            ReplError::NeedsResync(what) => write!(f, "replica needs resync: {what}"),
        }
    }
}

impl std::error::Error for ReplError {}

impl From<io::Error> for ReplError {
    fn from(e: io::Error) -> Self {
        ReplError::Io(e)
    }
}

/// `key=value` → value, from a stream header line.
fn kv_u64(tokens: &str, key: &str) -> Result<u64, ReplError> {
    tokens
        .split_whitespace()
        .find_map(|t| t.strip_prefix(key)?.strip_prefix('=')?.parse().ok())
        .ok_or_else(|| ReplError::Protocol(format!("missing {key}= in {tokens:?}")))
}

/// Sleep `*backoff` in shutdown-checking slices, then double it
/// (capped).
fn sleep_backoff(backoff: &mut Duration, shutdown: &ShutdownSignal) {
    const SLICE: Duration = Duration::from_millis(50);
    let mut left = *backoff;
    while !left.is_zero() && !shutdown.is_triggered() {
        let step = left.min(SLICE);
        std::thread::sleep(step);
        left = left.saturating_sub(step);
    }
    *backoff = (*backoff * 2).min(BACKOFF_CAP);
}

/// Connect to the primary and complete the *initial* sync: a fresh
/// `REPL HELLO 0`, the full snapshot transfer, and a restored
/// [`MatchService`] ready to serve. Retries with capped backoff until
/// the primary answers or `shutdown` fires.
pub fn initial_sync(
    primary: &str,
    config: &MatchConfig,
    shards: Option<usize>,
    cache_capacity: usize,
    state: &ReplicaState,
    shutdown: &ShutdownSignal,
) -> Result<(MatchService, TcpStream, BufReader<TcpStream>), ReplError> {
    let mut backoff = BACKOFF_START;
    loop {
        if shutdown.is_triggered() {
            return Err(ReplError::Protocol("shutdown during initial sync".into()));
        }
        match try_initial_sync(primary, config, shards, cache_capacity, state) {
            Ok(link) => return Ok(link),
            Err(e) => {
                eprintln!("lexequald: initial sync with {primary} failed ({e}), retrying");
                sleep_backoff(&mut backoff, shutdown);
            }
        }
    }
}

fn try_initial_sync(
    primary: &str,
    config: &MatchConfig,
    shards: Option<usize>,
    cache_capacity: usize,
    state: &ReplicaState,
) -> Result<(MatchService, TcpStream, BufReader<TcpStream>), ReplError> {
    let stream = TcpStream::connect(primary)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
    let mut w = stream.try_clone()?;
    // Advertise binary-snapshot support; an older primary ignores the
    // trailing token and ships JSON, which the magic sniff below still
    // handles.
    w.write_all(b"REPL HELLO 0 MMAP\n")?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(ReplError::Protocol(
            "primary closed the connection during the handshake".into(),
        ));
    }
    let header = line.trim_end();
    let Some(rest) = header.strip_prefix("SNAP ") else {
        return Err(ReplError::Protocol(format!(
            "expected SNAP for a fresh replica, got {header:?}"
        )));
    };
    let lsn = kv_u64(rest, "lsn")?;
    let nbytes = kv_u64(rest, "bytes")? as usize;
    let mut bytes = vec![0u8; nbytes];
    reader.read_exact(&mut bytes)?;
    let start = std::time::Instant::now();
    let service = if crate::mmapstore::is_binary(&bytes) {
        // The primary ships the binary image verbatim: load the
        // transfer buffer directly — no re-parse, no re-encode.
        let image = crate::mmapstore::load_bytes(config.clone(), shards, bytes)
            .map_err(ReplError::Snapshot)?;
        if image.lsn != lsn {
            return Err(ReplError::Protocol(format!(
                "snapshot says lsn {} but the header said {lsn}",
                image.lsn
            )));
        }
        let service = MatchService::from_store(image.store, cache_capacity);
        // A replica serves immediately after seeding, so its recorded
        // access paths are rebuilt before the handshake completes.
        for spec in image.builds {
            service.build(spec);
        }
        service.set_load_info(crate::service::LoadInfo {
            format: "mmap",
            mapped_bytes: image.bytes,
            load_ms: start.elapsed().as_millis() as u64,
        });
        service
    } else {
        let snap = StoreSnapshot::read_from(bytes.as_slice()).map_err(ReplError::Snapshot)?;
        if snap.lsn() != lsn {
            return Err(ReplError::Protocol(format!(
                "snapshot says lsn {} but the header said {lsn}",
                snap.lsn()
            )));
        }
        let store = match shards {
            Some(m) => snap.restore_with_shards(config.clone(), m),
            None => snap.restore(config.clone()),
        }
        .map_err(ReplError::Snapshot)?;
        let service = MatchService::from_store(store, cache_capacity);
        service.set_load_info(crate::service::LoadInfo {
            format: "json",
            mapped_bytes: nbytes as u64,
            load_ms: start.elapsed().as_millis() as u64,
        });
        service
    };
    state.applied.store(lsn, Ordering::Release);
    state.head.fetch_max(lsn, Ordering::AcqRel);
    state.connected.store(true, Ordering::Release);
    stream.set_read_timeout(Some(REPLICA_READ_TIMEOUT))?;
    Ok((service, stream, reader))
}

/// Apply the primary's stream to `service` until `shutdown` fires,
/// reconnecting with capped exponential backoff across primary
/// restarts. The only fatal return is [`ReplError::NeedsResync`].
pub fn run_replica(
    service: &MatchService,
    state: &ReplicaState,
    first_link: Option<(TcpStream, BufReader<TcpStream>)>,
    shutdown: &ShutdownSignal,
) -> Result<(), ReplError> {
    let mut link = first_link;
    let mut backoff = BACKOFF_START;
    loop {
        if shutdown.is_triggered() {
            return Ok(());
        }
        let (stream, reader) = match link.take() {
            Some(l) => l,
            None => match reconnect(service, state) {
                Ok(l) => l,
                Err(e @ ReplError::NeedsResync(_)) => return Err(e),
                Err(_) => {
                    sleep_backoff(&mut backoff, shutdown);
                    continue;
                }
            },
        };
        state.connected.store(true, Ordering::Release);
        backoff = BACKOFF_START;
        let outcome = apply_stream(service, state, &stream, reader, shutdown);
        state.connected.store(false, Ordering::Release);
        if let Err(e @ ReplError::NeedsResync(_)) = outcome {
            return Err(e);
        }
        // Anything else — disconnect, timeout, protocol hiccup — is
        // retryable: the primary may just be restarting.
        sleep_backoff(&mut backoff, shutdown);
    }
}

/// One reconnect attempt: `REPL HELLO <applied>` expecting an
/// incremental `OK`. An empty-store `SNAP` is also fine (both sides are
/// at the beginning); a non-empty one is [`ReplError::NeedsResync`].
fn reconnect(
    service: &MatchService,
    state: &ReplicaState,
) -> Result<(TcpStream, BufReader<TcpStream>), ReplError> {
    let stream = TcpStream::connect(&state.primary)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
    let applied = state.applied();
    let mut w = stream.try_clone()?;
    w.write_all(format!("REPL HELLO {applied} MMAP\n").as_bytes())?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(ReplError::Protocol(
            "primary closed the connection during the handshake".into(),
        ));
    }
    let header = line.trim_end();
    if let Some(rest) = header.strip_prefix("OK ") {
        state.head.fetch_max(kv_u64(rest, "lsn")?, Ordering::AcqRel);
        stream.set_read_timeout(Some(REPLICA_READ_TIMEOUT))?;
        return Ok((stream, reader));
    }
    if let Some(rest) = header.strip_prefix("SNAP ") {
        let lsn = kv_u64(rest, "lsn")?;
        let nbytes = kv_u64(rest, "bytes")? as usize;
        let mut bytes = vec![0u8; nbytes];
        reader.read_exact(&mut bytes)?;
        // Only the entry count matters here — peek the binary header
        // rather than fully loading either format.
        let snap_names = match crate::mmapstore::peek(&bytes) {
            Some((_, entries)) => entries as usize,
            None => StoreSnapshot::read_from(bytes.as_slice())
                .map_err(ReplError::Snapshot)?
                .len(),
        };
        if snap_names == 0 && service.is_empty() {
            // Both sides are at the start of (possibly a new) history.
            state.applied.store(lsn, Ordering::Release);
            state.head.fetch_max(lsn, Ordering::AcqRel);
            stream.set_read_timeout(Some(REPLICA_READ_TIMEOUT))?;
            return Ok((stream, reader));
        }
        return Err(ReplError::NeedsResync(format!(
            "primary demanded a full snapshot transfer (lsn {lsn}, {snap_names} names) but this \
             replica already holds {} names at lsn {applied}; restart the replica to re-seed",
            service.len()
        )));
    }
    Err(ReplError::Protocol(format!(
        "unexpected handshake reply {header:?}"
    )))
}

/// Apply `OP`/`PING` lines until the link breaks or `shutdown` fires.
fn apply_stream(
    service: &MatchService,
    state: &ReplicaState,
    _stream: &TcpStream,
    mut reader: BufReader<TcpStream>,
    shutdown: &ShutdownSignal,
) -> Result<(), ReplError> {
    let mut line = String::new();
    loop {
        if shutdown.is_triggered() {
            return Ok(());
        }
        // NB: `read_line` may buffer a partial line across a timeout, so
        // `line` is only cleared after a full line is processed.
        match reader.read_line(&mut line) {
            Ok(0) => return Err(ReplError::Protocol("primary closed the stream".into())),
            Ok(_) => {
                apply_stream_line(service, state, line.trim_end())?;
                line.clear();
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.is_triggered() {
                    return Ok(());
                }
                // Heartbeats come every ~500ms; a multi-second silence
                // means the link (or the primary) is gone.
                return Err(ReplError::Protocol(format!(
                    "primary silent for {REPLICA_READ_TIMEOUT:?}"
                )));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ReplError::Io(e)),
        }
    }
}

fn apply_stream_line(
    service: &MatchService,
    state: &ReplicaState,
    line: &str,
) -> Result<(), ReplError> {
    if let Some(rest) = line.strip_prefix("OP ") {
        let (lsn_tok, payload) = rest
            .split_once(' ')
            .ok_or_else(|| ReplError::Protocol(format!("malformed op line {line:?}")))?;
        let lsn: u64 = lsn_tok
            .parse()
            .map_err(|_| ReplError::Protocol(format!("bad op lsn {lsn_tok:?}")))?;
        let applied = state.applied();
        if lsn <= applied {
            // Replay overlap after a reconnect — already applied.
            return Ok(());
        }
        if lsn != applied + 1 {
            return Err(ReplError::Protocol(format!(
                "op lsn {lsn} arrived after {applied} (hole in the stream)"
            )));
        }
        let op = Op::decode(payload).map_err(ReplError::Protocol)?;
        service
            .apply_op(&op)
            .map_err(|e| ReplError::Protocol(format!("apply of lsn {lsn} failed: {e:?}")))?;
        state.applied.store(lsn, Ordering::Release);
        state.head.fetch_max(lsn, Ordering::AcqRel);
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix("PING ") {
        state.head.fetch_max(kv_u64(rest, "lsn")?, Ordering::AcqRel);
        return Ok(());
    }
    if line.is_empty() {
        return Ok(());
    }
    Err(ReplError::Protocol(format!(
        "unexpected stream line {line:?}"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use lexequal::{Language, SearchMethod};
    use std::path::PathBuf;

    fn temp_wal(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "lexequal_repl_unit_{}_{name}.wal",
            std::process::id()
        ))
    }

    /// Regression: replica seeding used to hard-code the binary image,
    /// which broke rolling upgrades (new primary, pre-mmap replicas).
    /// The transfer format now follows the peer's advertised
    /// capability, and the JSON branch must still be the exact
    /// pre-binary wire document an old replica can parse.
    #[test]
    fn snapshot_document_format_follows_peer_capability() {
        let primary = MatchService::new(ServiceConfig {
            match_config: MatchConfig::default(),
            shards: 2,
            cache_capacity: 16,
        });
        let wal_path = temp_wal("format");
        std::fs::remove_file(&wal_path).ok();
        let metrics = Arc::new(WalMetrics::default());
        let (wal, _replay) = Wal::open(&wal_path, 0, Arc::clone(&metrics)).expect("open wal");
        let repl = Replicator::new(wal, metrics);
        for text in ["Nehru", "Gandhi"] {
            repl.commit_add(&primary, text, Language::English)
                .expect("commit");
        }

        let (mmap_bytes, mmap_lsn) = repl
            .snapshot_document(&primary, crate::service::SnapshotFormat::Mmap)
            .expect("binary document");
        assert!(
            crate::mmapstore::is_binary(&mmap_bytes),
            "an MMAP-capable peer gets the binary image"
        );

        let (json_bytes, json_lsn) = repl
            .snapshot_document(&primary, crate::service::SnapshotFormat::Json)
            .expect("json document");
        assert!(
            !crate::mmapstore::is_binary(&json_bytes),
            "a bare-HELLO peer must never see binary bytes"
        );
        assert_eq!(mmap_lsn, json_lsn, "both formats stamp the WAL head");

        let snap = StoreSnapshot::read_from(&json_bytes[..]).expect("old-format parse");
        assert_eq!(snap.lsn(), json_lsn);

        std::fs::remove_file(&wal_path).ok();
    }

    /// In-process end to end: primary with a WAL and a stream listener,
    /// a replica syncing (snapshot transfer) then following commits
    /// (incremental tail), converging to identical lookups.
    #[test]
    fn replica_converges_in_process() {
        let config = MatchConfig::default();
        let primary = Arc::new(MatchService::new(ServiceConfig {
            match_config: config.clone(),
            shards: 2,
            cache_capacity: 64,
        }));
        let wal_path = temp_wal("converge");
        std::fs::remove_file(&wal_path).ok();
        let metrics = Arc::new(WalMetrics::default());
        let (wal, replay) = Wal::open(&wal_path, 0, Arc::clone(&metrics)).expect("open wal");
        assert!(replay.is_empty());
        let repl = Replicator::new(wal, metrics);

        // Pre-replica history: names + builds, all through the commit path.
        for text in ["Nehru", "Nero", "Gandhi"] {
            repl.commit_add(&primary, text, Language::English)
                .expect("commit");
        }
        repl.commit_build(&primary, crate::shard::BuildSpec::BkTree)
            .expect("commit build");

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let shutdown = ShutdownSignal::new().expect("shutdown signal");
        let accept = {
            let service = Arc::clone(&primary);
            let repl = Arc::clone(&repl);
            let shutdown = shutdown.clone();
            std::thread::spawn(move || serve_repl_listener(listener, service, repl, shutdown))
        };

        let state = Arc::new(ReplicaState::new(addr));
        let (replica, stream, reader) =
            initial_sync(&state.primary, &config, None, 64, &state, &shutdown).expect("sync");
        assert_eq!(replica.len(), 3, "snapshot transfer carried the corpus");
        assert_eq!(state.applied(), 4);
        let replica = Arc::new(replica);
        let apply = {
            let replica = Arc::clone(&replica);
            let state = Arc::clone(&state);
            let shutdown = shutdown.clone();
            std::thread::spawn(move || {
                run_replica(&replica, &state, Some((stream, reader)), &shutdown)
            })
        };

        // Incremental tail: more names + a build.
        for text in ["Krishnan", "Bose"] {
            repl.commit_add(&primary, text, Language::English)
                .expect("commit");
        }
        repl.commit_build(&primary, crate::shard::BuildSpec::PhoneticIndex)
            .expect("commit build");

        let deadline = Instant::now() + Duration::from_secs(20);
        while state.applied() < repl.head() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(state.applied(), repl.head(), "replica caught up");
        assert_eq!(state.lag(), 0);
        assert_eq!(replica.len(), primary.len());

        // Identical answers on both copies.
        for text in ["Nehru", "Bose", "Gandhi"] {
            let req = crate::service::MatchRequest {
                threshold: Some(0.4),
                method: Some(SearchMethod::Scan),
                ..crate::service::MatchRequest::new(text, Language::English)
            };
            assert_eq!(primary.lookup(&req), replica.lookup(&req), "{text}");
        }
        assert!(replica.is_built(SearchMethod::PhoneticIndex));

        shutdown.trigger();
        repl.stop_and_join();
        apply.join().expect("apply thread").expect("stream clean");
        accept.join().expect("accept thread").expect("accept clean");
        std::fs::remove_file(&wal_path).ok();
    }

    #[test]
    fn bad_input_never_reaches_the_log() {
        // English-only registry: a Hindi ADD fails at transform time,
        // before the commit lock ever writes a record.
        let config = crate::service::ServiceConfig {
            match_config: lexequal::MatchConfig::default()
                .with_registry(lexequal::G2pRegistry::with_languages(&[Language::English])),
            shards: 1,
            cache_capacity: 16,
        };
        let primary = MatchService::new(config);
        let wal_path = temp_wal("badinput");
        std::fs::remove_file(&wal_path).ok();
        let metrics = Arc::new(WalMetrics::default());
        let (wal, _) = Wal::open(&wal_path, 0, Arc::clone(&metrics)).expect("open wal");
        let repl = Replicator::new(wal, Arc::clone(&metrics));
        let err = repl.commit_add(&primary, "नेहरु", Language::Hindi);
        assert!(matches!(err, Err(CommitError::BadInput(_))), "{err:?}");
        assert_eq!(repl.head(), 0);
        assert_eq!(metrics.stats().appends, 0);
        assert_eq!(primary.len(), 0);
        std::fs::remove_file(&wal_path).ok();
    }
}
