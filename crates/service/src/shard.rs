//! [`ShardedStore`]: a [`NameStore`] partitioned across worker threads.
//!
//! Names are striped across `N` shards round-robin by global id: global id
//! `g` lives on shard `g % N` at local id `g / N`. Each shard is a plain
//! single-threaded [`NameStore`] *owned* by a dedicated worker thread;
//! all access goes through that worker's command channel, so no shard
//! state is ever shared between threads. A search fans out to every shard
//! and merges the per-shard [`SearchResult`]s — local ids are remapped
//! back to global ids and verification counts are summed, so the merged
//! result is bit-identical to what an unsharded store over the same rows
//! would return (see `tests/shard_equivalence.rs`).
//!
//! Index builds (`build`) are dispatched to all workers at once, so the
//! q-gram / phonetic-index / BK-tree builds run in parallel across
//! shards. Bulk loads parallelize the expensive G2P transform across
//! scoped threads before striping the finished entries.

use crate::metrics::{BatchTotals, ScreenTotals};
use lexequal::store::{NameEntry, SearchResult};
use lexequal::{
    BatchCounters, BatchVerifier, G2pError, Language, MatchConfig, NameStore, PhonemeString,
    QgramMode, ScreenCounters, SearchMethod, SharedEntry,
};
use std::ops::Range;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Which access path to construct on every shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildSpec {
    /// Positional q-gram filter.
    Qgram {
        /// Gram length.
        q: usize,
        /// False-dismissal policy.
        mode: QgramMode,
    },
    /// Grouped-phoneme-identifier index.
    PhoneticIndex,
    /// BK-tree over the Levenshtein phoneme metric.
    BkTree,
}

/// One request to a shard worker. Replies travel over per-call mpsc
/// channels so any number of client threads can have requests in flight.
enum Cmd {
    /// Append pre-transformed entries (infallible: transforms already
    /// happened on the coordinator side, so a failed row can never leave
    /// the shards striped inconsistently).
    Extend {
        entries: Vec<NameEntry>,
        reply: Sender<usize>,
    },
    /// Append zero-copy entries whose columns are views into a shared
    /// allocation (the memory-mapped snapshot load path). Entries were
    /// validated by the loader; the store re-validates on adoption.
    ExtendShared {
        entries: Vec<SharedEntry>,
        reply: Sender<usize>,
    },
    /// Construct an access path.
    Build { spec: BuildSpec, reply: Sender<()> },
    /// Fill in any missing per-entry phonetic embeddings (entries adopted
    /// from a v1 snapshot image predate the embedding column). Replies
    /// with the number of entries filled on this shard.
    BuildEmbeds { reply: Sender<usize> },
    /// Count entries still missing an embedding on this shard.
    PendingEmbeds { reply: Sender<usize> },
    /// Search this shard; echoes the shard index so the coordinator can
    /// remap local ids while collecting replies out of order.
    Search {
        query: PhonemeString,
        e: f64,
        method: SearchMethod,
        shard: usize,
        reply: Sender<(usize, SearchResult)>,
    },
    /// Fetch one entry by local id.
    Get {
        local: u32,
        reply: Sender<Option<NameEntry>>,
    },
    /// Export every entry in local-id order (snapshot capture); echoes
    /// the shard index so the coordinator can collect out of order.
    Export {
        shard: usize,
        reply: Sender<(usize, Vec<NameEntry>)>,
    },
}

fn worker(
    mut store: NameStore,
    rx: Receiver<Cmd>,
    screens: Arc<ScreenTotals>,
    batches: Arc<BatchTotals>,
) {
    // One long-lived batched verification kernel per worker: its DP
    // scratch and lane buffers grow to the longest candidate once and
    // every later verification on this shard is allocation-free. The
    // evented front-end feeds whole candidate slices through here, so
    // each search step verifies up to MAX_LANES candidates interleaved.
    let mut verifier = BatchVerifier::new();
    for cmd in rx {
        match cmd {
            Cmd::Extend { entries, reply } => {
                let n = entries.len();
                store.extend_transformed(entries);
                let _ = reply.send(n);
            }
            Cmd::ExtendShared { entries, reply } => {
                let n = entries.len();
                store.reserve(n);
                for e in entries {
                    // The mmap loader validated every view against the
                    // mapping (arena-wide) before striping; re-checking
                    // 20K entries here would double the cold start.
                    store.push_shared_entry_prevalidated(e);
                }
                let _ = reply.send(n);
            }
            Cmd::Build { spec, reply } => {
                match spec {
                    BuildSpec::Qgram { q, mode } => store.build_qgram(q, mode),
                    BuildSpec::PhoneticIndex => store.build_phonetic_index(),
                    BuildSpec::BkTree => store.build_bktree(),
                }
                let _ = reply.send(());
            }
            Cmd::BuildEmbeds { reply } => {
                let _ = reply.send(store.build_embeddings());
            }
            Cmd::PendingEmbeds { reply } => {
                let _ = reply.send(store.pending_embeddings());
            }
            Cmd::Search {
                query,
                e,
                method,
                shard,
                reply,
            } => {
                // The front-end's built-mask check and this command's
                // arrival are not atomic: an append can land in between
                // and invalidate the access path the caller saw as
                // built. Degrading to a scan keeps the answer exact
                // (every accelerator is a filter over the same
                // verifier) instead of panicking and killing the
                // worker — and with it the whole shard — for good.
                let method = if store.is_built(method) {
                    method
                } else {
                    SearchMethod::Scan
                };
                let result = store.search_phonemes_batched(&query, e, method, &mut verifier);
                screens.add(&verifier.take_counters());
                batches.add(&verifier.take_batch_counters());
                let _ = reply.send((shard, result));
            }
            Cmd::Get { local, reply } => {
                let _ = reply.send(store.get(local));
            }
            Cmd::Export { shard, reply } => {
                let _ = reply.send((shard, store.export_entries()));
            }
        }
    }
}

/// A multiscript name collection partitioned across worker threads.
pub struct ShardedStore {
    config: MatchConfig,
    senders: Vec<Sender<Cmd>>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes global-id assignment so the round-robin stripe stays
    /// aligned with each shard's local insertion order. Also held across
    /// every [`build`](Self::build), so a build and an append can never
    /// interleave — the recorded build specs (and the service's built
    /// mask, updated under this lock via the `_with` hooks) always agree
    /// with the actual per-shard index state.
    grow: Mutex<u32>,
    /// Kernel screen counters, flushed by every worker after each search.
    screens: Arc<ScreenTotals>,
    /// Batch-shape counters, flushed alongside the screen counters.
    batches: Arc<BatchTotals>,
    /// Access paths currently built on every shard, in build order —
    /// recorded so a snapshot can rebuild exactly the same paths on
    /// load. Cleared whenever an append invalidates the shard indexes.
    builds: Mutex<Vec<BuildSpec>>,
}

impl ShardedStore {
    /// Create an empty store with `shards` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(config: MatchConfig, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let screens = Arc::new(ScreenTotals::default());
        let batches = Arc::new(BatchTotals::default());
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for i in 0..shards {
            let (tx, rx) = channel();
            let store = NameStore::new(config.clone());
            let screens = Arc::clone(&screens);
            let batches = Arc::clone(&batches);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("lexequal-shard-{i}"))
                    .spawn(move || worker(store, rx, screens, batches))
                    .expect("spawn shard worker"),
            );
            senders.push(tx);
        }
        ShardedStore {
            config,
            senders,
            handles,
            grow: Mutex::new(0),
            screens,
            batches,
            builds: Mutex::new(Vec::new()),
        }
    }

    /// Aggregated verification-kernel screen counters across all workers.
    pub fn screen_totals(&self) -> ScreenCounters {
        self.screens.snapshot()
    }

    /// Aggregated batch-shape counters across all workers.
    pub fn batch_totals(&self) -> BatchCounters {
        self.batches.snapshot()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// The configuration in force.
    pub fn config(&self) -> &MatchConfig {
        &self.config
    }

    /// Total number of stored names.
    pub fn len(&self) -> usize {
        *self.grow.lock().expect("grow lock") as usize
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert one name; returns its global id.
    pub fn insert(&self, text: &str, language: Language) -> Result<u32, G2pError> {
        self.extend([(text.to_owned(), language)]).map(|r| r.start)
    }

    /// Bulk-load names; returns the contiguous global id range assigned.
    ///
    /// All rows are transformed *first* (in parallel across scoped
    /// threads when the batch is large), so a G2P failure anywhere leaves
    /// the store completely unchanged; the pre-transformed entries are
    /// then striped round-robin and appended by every shard worker
    /// concurrently, invalidating each shard's access paths once.
    pub fn extend(
        &self,
        rows: impl IntoIterator<Item = (String, Language)>,
    ) -> Result<Range<u32>, G2pError> {
        let rows: Vec<(String, Language)> = rows.into_iter().collect();
        let entries = transform_rows(&self.config, rows)?;
        Ok(self.extend_transformed(entries))
    }

    /// [`extend`](Self::extend) with the
    /// [`extend_transformed_with`](Self::extend_transformed_with) hook.
    pub(crate) fn extend_with(
        &self,
        rows: impl IntoIterator<Item = (String, Language)>,
        after: impl FnOnce(),
    ) -> Result<Range<u32>, G2pError> {
        let rows: Vec<(String, Language)> = rows.into_iter().collect();
        let entries = transform_rows(&self.config, rows)?;
        Ok(self.extend_transformed_with(entries, after))
    }

    /// Bulk-load pre-transformed entries; returns the global id range.
    pub fn extend_transformed(&self, entries: Vec<NameEntry>) -> Range<u32> {
        self.extend_transformed_with(entries, || {})
    }

    /// [`extend_transformed`](Self::extend_transformed) with a hook run
    /// under the grow lock after the recorded build specs are cleared
    /// (only when at least one row was appended). [`crate::MatchService`]
    /// invalidates its built-path mask here, so the mask can never claim
    /// a path is built while the appends have just torn it down — a
    /// concurrent [`build`](Self::build) serializes behind the same lock.
    pub(crate) fn extend_transformed_with(
        &self,
        entries: Vec<NameEntry>,
        after: impl FnOnce(),
    ) -> Range<u32> {
        let n = self.shards();
        let guard = self.grow.lock().expect("grow lock");
        let start = *guard;
        let mut per_shard: Vec<Vec<NameEntry>> = (0..n).map(|_| Vec::new()).collect();
        for (offset, entry) in entries.into_iter().enumerate() {
            per_shard[(start as usize + offset) % n].push(entry);
        }
        let (tx, rx) = channel();
        let mut added = 0u32;
        for (shard, batch) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            self.senders[shard]
                .send(Cmd::Extend {
                    entries: batch,
                    reply: tx.clone(),
                })
                .expect("shard worker alive");
        }
        drop(tx);
        for count in rx {
            added += count as u32;
        }
        let end = start + added;
        if added > 0 {
            // The appends invalidated every shard's access paths.
            self.builds.lock().expect("builds lock").clear();
            after();
        }
        // Publish the new length only after every shard has appended, so
        // a concurrent reader never sees ids it cannot resolve.
        let mut guard = guard;
        *guard = end;
        start..end
    }

    /// Build one access path on every shard, in parallel.
    pub fn build(&self, spec: BuildSpec) {
        self.build_with(spec, |_| {});
    }

    /// [`build`](Self::build) with a hook run under the grow lock after
    /// the spec is recorded, receiving the full recorded list.
    ///
    /// The grow lock is held across the *entire* build — dispatch, every
    /// shard's completion, and the spec record. Without that, an append
    /// racing the build could invalidate the freshly built per-shard
    /// indexes and clear the recorded specs, after which this method's
    /// record (and the caller's built-mask update in `after`) would
    /// re-mark the path as built anyway; the next search via that path
    /// would then panic inside a shard worker. Serializing build against
    /// mutations makes the recorded state truthful by construction.
    pub(crate) fn build_with(&self, spec: BuildSpec, after: impl FnOnce(&[BuildSpec])) {
        let _guard = self.grow.lock().expect("grow lock");
        let (tx, rx) = channel();
        for s in &self.senders {
            s.send(Cmd::Build {
                spec,
                reply: tx.clone(),
            })
            .expect("shard worker alive");
        }
        drop(tx);
        for _ in rx {}
        let mut builds = self.builds.lock().expect("builds lock");
        // Rebuilding the same path replaces its recorded spec (a second
        // q-gram build with a different `q` overwrites the old filter).
        builds.retain(|b| std::mem::discriminant(b) != std::mem::discriminant(&spec));
        builds.push(spec);
        after(&builds);
    }

    /// The access paths currently built on every shard, in build order
    /// (what a snapshot records and a load rebuilds).
    pub fn built_specs(&self) -> Vec<BuildSpec> {
        self.builds.lock().expect("builds lock").clone()
    }

    /// Fill in missing per-entry phonetic embeddings on every shard, in
    /// parallel; returns the total number of entries filled. Entries
    /// adopted from a v1 snapshot image have no embedding column and are
    /// served with the embedding screen bypassed until this runs.
    ///
    /// Held under the grow lock so the fill can never interleave with an
    /// append (embedding rows and entry rows stay column-aligned) — but
    /// note the fill does *not* invalidate access paths: embeddings feed
    /// only the verification screen, never candidate generation.
    pub fn build_embeddings(&self) -> usize {
        let _guard = self.grow.lock().expect("grow lock");
        let (tx, rx) = channel();
        for s in &self.senders {
            s.send(Cmd::BuildEmbeds { reply: tx.clone() })
                .expect("shard worker alive");
        }
        drop(tx);
        rx.into_iter().sum()
    }

    /// Total number of entries across all shards still missing an
    /// embedding (nonzero only after adopting a v1 snapshot image, until
    /// [`build_embeddings`](Self::build_embeddings) runs).
    pub fn pending_embeddings(&self) -> usize {
        let _guard = self.grow.lock().expect("grow lock");
        let (tx, rx) = channel();
        for s in &self.senders {
            s.send(Cmd::PendingEmbeds { reply: tx.clone() })
                .expect("shard worker alive");
        }
        drop(tx);
        rx.into_iter().sum()
    }

    /// Pull every shard's entries in local-id order (shard `s`, local
    /// `l` holds global id `l * shards + s`) — the snapshot capture path.
    pub(crate) fn export_shards(&self) -> Vec<Vec<NameEntry>> {
        // Hold the grow lock across the export so no concurrent append
        // can land between two shards' section copies.
        let _guard = self.grow.lock().expect("grow lock");
        let n = self.shards();
        let (tx, rx) = channel();
        for (shard, s) in self.senders.iter().enumerate() {
            s.send(Cmd::Export {
                shard,
                reply: tx.clone(),
            })
            .expect("shard worker alive");
        }
        drop(tx);
        let mut sections: Vec<Vec<NameEntry>> = (0..n).map(|_| Vec::new()).collect();
        for (shard, entries) in rx {
            sections[shard] = entries;
        }
        sections
    }

    /// Place pre-striped sections on the shards — the snapshot restore
    /// path. Section `s` becomes shard `s`'s entries verbatim, so global
    /// ids are exactly what they were in the store that was saved (shard
    /// `s` local `l` is global `l * N + s`). All appends are enqueued
    /// before any is awaited, so the per-shard bulk loads run in
    /// parallel. Only valid on an empty store whose shard count equals
    /// `sections.len()` and whose sections form a round-robin stripe —
    /// [`crate::snapshot`] validates both before calling.
    pub(crate) fn import_shards(&self, sections: Vec<Vec<NameEntry>>) {
        debug_assert_eq!(sections.len(), self.shards());
        let guard = self.grow.lock().expect("grow lock");
        debug_assert_eq!(*guard, 0, "import into a non-empty store");
        let total: usize = sections.iter().map(Vec::len).sum();
        let (tx, rx) = channel();
        let mut expected = 0usize;
        for (shard, batch) in sections.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            expected += 1;
            self.senders[shard]
                .send(Cmd::Extend {
                    entries: batch,
                    reply: tx.clone(),
                })
                .expect("shard worker alive");
        }
        drop(tx);
        for _ in 0..expected {
            rx.recv().expect("shard worker replies");
        }
        // Publish the total only after every shard confirmed its append,
        // exactly like `extend_transformed`.
        let mut guard = guard;
        *guard = total as u32;
    }

    /// Place pre-striped zero-copy sections on the shards — the
    /// memory-mapped restore path, the borrowed twin of
    /// [`import_shards`](Self::import_shards): same round-robin layout
    /// contract, but each entry is three `Arc` bumps into the mapping
    /// instead of an owned row.
    pub(crate) fn import_shared(&self, sections: Vec<Vec<SharedEntry>>) {
        debug_assert_eq!(sections.len(), self.shards());
        let guard = self.grow.lock().expect("grow lock");
        debug_assert_eq!(*guard, 0, "import into a non-empty store");
        let total: usize = sections.iter().map(Vec::len).sum();
        let (tx, rx) = channel();
        let mut expected = 0usize;
        for (shard, batch) in sections.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            expected += 1;
            self.senders[shard]
                .send(Cmd::ExtendShared {
                    entries: batch,
                    reply: tx.clone(),
                })
                .expect("shard worker alive");
        }
        drop(tx);
        for _ in 0..expected {
            rx.recv().expect("shard worker replies");
        }
        let mut guard = guard;
        *guard = total as u32;
    }

    /// Entry by global id.
    pub fn get(&self, id: u32) -> Option<NameEntry> {
        let n = self.shards();
        let (tx, rx) = channel();
        self.senders[id as usize % n]
            .send(Cmd::Get {
                local: id / n as u32,
                reply: tx,
            })
            .expect("shard worker alive");
        rx.recv().expect("shard worker replies")
    }

    /// Search with a query string: transform, then fan out.
    pub fn search(
        &self,
        query: &str,
        language: Language,
        e: f64,
        method: SearchMethod,
    ) -> Result<SearchResult, G2pError> {
        let q = self.config.registry.transform(query, language)?;
        Ok(self.search_phonemes(&q, e, method))
    }

    /// Fan a pre-transformed query out over every shard and merge: local
    /// ids remap to global ids, verification counts sum, the merged id
    /// list is sorted ascending (same order an unsharded scan produces).
    ///
    /// # Panics
    ///
    /// Panics (on the worker thread) if the access path was not built;
    /// see [`crate::MatchService`] for the graceful front-end.
    pub fn search_phonemes(&self, q: &PhonemeString, e: f64, method: SearchMethod) -> SearchResult {
        self.begin_search(q, e, method).merge()
    }

    /// Enqueue one query's fan-out on every shard worker and return
    /// without waiting. The caller collects the merged result with
    /// [`PendingSearch::merge`] whenever it likes; beginning several
    /// searches before merging any is exactly how the batch path and the
    /// evented daemon's verify workers keep all shards busy at once.
    pub fn begin_search(&self, q: &PhonemeString, e: f64, method: SearchMethod) -> PendingSearch {
        PendingSearch {
            rx: self.fan_out(q, e, method),
            shards: self.shards(),
        }
    }

    /// Fan a batch of pre-transformed queries out over the shards,
    /// pipelined: every item's per-shard commands are enqueued before any
    /// merge starts, so shard `s` verifies item `i + 1` while the
    /// coordinator is still collecting item `i`'s replies from slower
    /// shards. Results come back in item order; each is identical to a
    /// standalone [`search_phonemes`](Self::search_phonemes) call.
    pub fn search_phonemes_batch(
        &self,
        queries: &[(PhonemeString, f64, SearchMethod)],
    ) -> Vec<SearchResult> {
        let pending: Vec<_> = queries
            .iter()
            .map(|(q, e, method)| self.begin_search(q, *e, *method))
            .collect();
        pending.into_iter().map(PendingSearch::merge).collect()
    }

    /// Enqueue one query on every shard; replies arrive on the returned
    /// channel tagged with their shard index.
    fn fan_out(
        &self,
        q: &PhonemeString,
        e: f64,
        method: SearchMethod,
    ) -> Receiver<(usize, SearchResult)> {
        let (tx, rx) = channel();
        for (shard, s) in self.senders.iter().enumerate() {
            s.send(Cmd::Search {
                query: q.clone(),
                e,
                method,
                shard,
                reply: tx.clone(),
            })
            .expect("shard worker alive");
        }
        rx
    }
}

/// A search whose per-shard fan-out has been enqueued but whose replies
/// have not been collected yet (from [`ShardedStore::begin_search`]).
///
/// Dropping a `PendingSearch` without merging is safe — the shard
/// workers still run the search, their replies just land on a
/// disconnected channel.
pub struct PendingSearch {
    rx: Receiver<(usize, SearchResult)>,
    shards: usize,
}

impl PendingSearch {
    /// Block until every shard has replied and merge, exactly like
    /// [`ShardedStore::search_phonemes`].
    pub fn merge(self) -> SearchResult {
        merge_replies(self.rx, self.shards)
    }
}

/// Collect one reply per shard and merge: local ids remap to global ids,
/// verification counts sum, ids sort ascending.
fn merge_replies(rx: Receiver<(usize, SearchResult)>, n: usize) -> SearchResult {
    let mut ids = Vec::new();
    let mut verifications = 0usize;
    let mut replies = 0usize;
    for (shard, result) in rx {
        replies += 1;
        verifications += result.verifications;
        ids.extend(
            result
                .ids
                .iter()
                .map(|local| local * n as u32 + shard as u32),
        );
        if replies == n {
            break;
        }
    }
    // A worker that died (e.g. searching an unbuilt access path) hangs up
    // instead of replying; a partial merge must never be passed off as a
    // complete result.
    assert_eq!(replies, n, "a shard worker died mid-search");
    ids.sort_unstable();
    SearchResult { ids, verifications }
}

impl Drop for ShardedStore {
    fn drop(&mut self) {
        // Hanging up every command channel ends the worker loops.
        self.senders.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Transform rows to [`NameEntry`]s, fanning the G2P work out across
/// scoped threads for large batches. Order is preserved; the first error
/// wins and discards all work.
fn transform_rows(
    config: &MatchConfig,
    rows: Vec<(String, Language)>,
) -> Result<Vec<NameEntry>, G2pError> {
    /// Below this size the spawn overhead outweighs the parallelism.
    const PARALLEL_THRESHOLD: usize = 4096;
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if rows.len() < PARALLEL_THRESHOLD || workers < 2 {
        return rows
            .into_iter()
            .map(|(text, language)| {
                Ok(NameEntry {
                    phonemes: config.registry.transform(&text, language)?,
                    text,
                    language,
                })
            })
            .collect();
    }
    let chunk = rows.len().div_ceil(workers);
    let chunks: Vec<&[(String, Language)]> = rows.chunks(chunk).collect();
    let transformed: Vec<Result<Vec<NameEntry>, G2pError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|(text, language)| {
                            Ok(NameEntry {
                                phonemes: config.registry.transform(text, *language)?,
                                text: text.clone(),
                                language: *language,
                            })
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });
    let mut out = Vec::with_capacity(rows.len());
    for part in transformed {
        out.extend(part?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_rows() -> Vec<(String, Language)> {
        [
            ("Nehru", Language::English),
            ("नेहरु", Language::Hindi),
            ("நேரு", Language::Tamil),
            ("Nero", Language::English),
            ("Gandhi", Language::English),
            ("गांधी", Language::Hindi),
            ("Krishnan", Language::English),
        ]
        .into_iter()
        .map(|(t, l)| (t.to_owned(), l))
        .collect()
    }

    #[test]
    fn global_ids_follow_insertion_order() {
        let s = ShardedStore::new(MatchConfig::default(), 3);
        let range = s.extend(demo_rows()).unwrap();
        assert_eq!(range, 0..7);
        assert_eq!(s.len(), 7);
        assert_eq!(s.get(1).unwrap().text, "नेहरु");
        assert_eq!(s.get(6).unwrap().text, "Krishnan");
        assert!(s.get(7).is_none());
    }

    #[test]
    fn sharded_scan_matches_unsharded() {
        let rows = demo_rows();
        let mut flat = NameStore::new(MatchConfig::default());
        for (t, l) in &rows {
            flat.insert(t, *l).unwrap();
        }
        let sharded = ShardedStore::new(MatchConfig::default(), 3);
        sharded.extend(rows).unwrap();
        let a = flat
            .search("Nehru", Language::English, 0.45, SearchMethod::Scan)
            .unwrap();
        let b = sharded
            .search("Nehru", Language::English, 0.45, SearchMethod::Scan)
            .unwrap();
        assert_eq!(a, b);
        assert!(b.ids.contains(&1), "cross-script नेहरु: {:?}", b.ids);
    }

    #[test]
    fn failed_transform_leaves_store_unchanged() {
        let s = ShardedStore::new(MatchConfig::default(), 2);
        // The second row's script does not match its language tag.
        let err = s.extend([
            ("Nehru".to_owned(), Language::English),
            ("नेहरु".to_owned(), Language::Tamil),
        ]);
        assert!(err.is_err());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn incremental_insert_interleaves_with_bulk() {
        let s = ShardedStore::new(MatchConfig::default(), 2);
        let id = s.insert("Nehru", Language::English).unwrap();
        assert_eq!(id, 0);
        let range = s.extend(demo_rows()).unwrap();
        assert_eq!(range, 1..8);
        assert_eq!(s.get(0).unwrap().text, "Nehru");
        assert_eq!(s.get(7).unwrap().text, "Krishnan");
    }
}
