//! [`MatchService`]: the request-level API over the sharded store.
//!
//! This is the layer a front-end (TCP daemon, embedded server, load
//! generator) talks to. It owns the [`ShardedStore`], memoizes query
//! transforms in the [`TransformCache`], tracks which access paths have
//! been built so an unserviceable request degrades to a structured
//! outcome instead of a worker panic, and records request metrics.

use crate::cache::TransformCache;
use crate::metrics::{method_index, ConnStats, ServiceMetrics, UntaggedStats};
use crate::shard::{BuildSpec, PendingSearch, ShardedStore};
use lexequal::store::NameEntry;
use lexequal::{G2pError, Language, MatchConfig, QgramMode, SearchMethod};
use lexequal_g2p::{Route, Router, ScriptProfile};
use std::ops::Range;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Snapshot serialization formats the service can read and write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotFormat {
    /// The zero-copy memory-mapped binary format ([`crate::mmapstore`]) —
    /// the default for every save path.
    Mmap,
    /// The versioned JSON document ([`crate::snapshot`]) — kept as an
    /// explicit debug/export format (`SAVE JSON`, `--snapshot-format
    /// json`).
    Json,
}

impl SnapshotFormat {
    /// Wire/log name.
    pub fn name(self) -> &'static str {
        match self {
            SnapshotFormat::Mmap => "mmap",
            SnapshotFormat::Json => "json",
        }
    }
}

/// How this service's corpus came to be — surfaced in `STATS`
/// (`snapshot_format=`/`mmap_bytes=`/`load_ms=`) and the daemon's
/// startup log, so the 0.67x "snapshot loads slower than rebuild" class
/// of regression is visible instead of silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadInfo {
    /// `"mmap"`, `"json"`, or `"rebuild"` (fresh store, corpus built
    /// from source).
    pub format: &'static str,
    /// Bytes mapped (mmap) or transferred (replica seeding); 0 for
    /// JSON loads and rebuilds.
    pub mapped_bytes: u64,
    /// Validate-to-serve-ready time in milliseconds.
    pub load_ms: u64,
}

impl Default for LoadInfo {
    fn default() -> Self {
        LoadInfo {
            format: "rebuild",
            mapped_bytes: 0,
            load_ms: 0,
        }
    }
}

/// What [`MatchService::load_snapshot_auto`] produced.
pub struct SnapshotLoad {
    /// The serving handle (scan path ready; see `pending_builds`).
    pub service: MatchService,
    /// WAL LSN the snapshot covers (0 for pre-replication snapshots).
    pub lsn: u64,
    /// Which format the file turned out to be.
    pub format: SnapshotFormat,
    /// Bytes mapped (0 for JSON).
    pub mapped_bytes: u64,
    /// Validate-to-serve-ready time in milliseconds.
    pub load_ms: u64,
    /// Access paths the snapshot records that have *not* been rebuilt
    /// yet. Empty for JSON loads (which rebuild synchronously); for
    /// mmap loads the caller chooses — rebuild in the background
    /// (`lexequald`) or synchronously (tests, replicas) via
    /// [`MatchService::build`].
    pub pending_builds: Vec<BuildSpec>,
    /// True when the snapshot predates the embedding column (a v1 mmap
    /// image): entries are served with the embedding screen bypassed
    /// until [`MatchService::build_embeddings`] fills it in. Always
    /// false for JSON loads, which recompute embeddings on restore.
    pub pending_embeds: bool,
}

/// Service construction knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Operator configuration (threshold default, cost model, registry).
    pub match_config: MatchConfig,
    /// Number of store shards (worker threads).
    pub shards: usize,
    /// Transform-cache capacity in entries.
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            match_config: MatchConfig::default(),
            shards: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            cache_capacity: 4096,
        }
    }
}

/// One lookup: the query plus per-request overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchRequest {
    /// Query text as written.
    pub text: String,
    /// Language whose converter transforms it.
    pub language: Language,
    /// Threshold override (`None` → the configured default).
    pub threshold: Option<f64>,
    /// Access-path override (`None` → the best built path).
    pub method: Option<SearchMethod>,
}

impl MatchRequest {
    /// A request with no overrides.
    pub fn new(text: impl Into<String>, language: Language) -> Self {
        MatchRequest {
            text: text.into(),
            language,
            threshold: None,
            method: None,
        }
    }
}

/// One **untagged** lookup (`MATCH -`): the query plus per-request
/// overrides, with the language left to script profiling + routing.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoMatchRequest {
    /// Query text as written.
    pub text: String,
    /// Threshold override (`None` → the configured default).
    pub threshold: Option<f64>,
    /// Access-path override (`None` → the best built path).
    pub method: Option<SearchMethod>,
}

impl AutoMatchRequest {
    /// An untagged request with no overrides.
    pub fn new(text: impl Into<String>) -> Self {
        AutoMatchRequest {
            text: text.into(),
            threshold: None,
            method: None,
        }
    }
}

/// How an untagged `ADD` resolved its language tag. The WAL logs the
/// *resolved* language, never "untagged", so replay and replicas converge
/// byte-identically with no knowledge of the routing table.
#[derive(Debug, Clone, PartialEq)]
pub enum AddResolution {
    /// Commit under this tag.
    Resolved(Language),
    /// The script is recognized but no converter ships (paper
    /// `NORESOURCE`).
    NoResource(Language),
    /// Nothing to detect from, unroutable script, or every fan-out
    /// converter rejected the text.
    BadInput(String),
}

/// What a lookup produced. Every degraded case is a value, not an error:
/// a serving loop answers all of these over the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum MatchOutcome {
    /// The search ran.
    Matches {
        /// Access path that served it.
        method: SearchMethod,
        /// Threshold in force.
        threshold: f64,
        /// Global ids of matching names, ascending.
        ids: Vec<u32>,
        /// Exact-predicate evaluations spent.
        verifications: usize,
    },
    /// The query language has no installed converter (paper Figure 8's
    /// `NORESOURCE`).
    NoResource(Language),
    /// The requested access path has not been built.
    NotBuilt(SearchMethod),
    /// The query text failed to transform.
    BadInput(String),
}

/// The serving subsystem: sharded store + transform cache + metrics.
pub struct MatchService {
    store: ShardedStore,
    cache: TransformCache,
    metrics: ServiceMetrics,
    /// Bitmask of built access paths (bit = `method_index`); Scan's bit
    /// is set from birth.
    built: AtomicU8,
    /// How the corpus was loaded (STATS / startup-log provenance).
    load_info: Mutex<LoadInfo>,
}

impl MatchService {
    /// Build a service from the configuration.
    pub fn new(config: ServiceConfig) -> Self {
        MatchService {
            store: ShardedStore::new(config.match_config, config.shards),
            cache: TransformCache::new(config.cache_capacity),
            metrics: ServiceMetrics::default(),
            built: AtomicU8::new(1 << method_index(SearchMethod::Scan)),
            load_info: Mutex::new(LoadInfo::default()),
        }
    }

    /// Wrap an existing store (typically one restored from a snapshot):
    /// the service's built-path mask is seeded from the store's recorded
    /// build specs, so a path the snapshot rebuilt serves immediately.
    pub fn from_store(store: ShardedStore, cache_capacity: usize) -> Self {
        let mut built = 1u8 << method_index(SearchMethod::Scan);
        for spec in store.built_specs() {
            let method = match spec {
                BuildSpec::Qgram { .. } => SearchMethod::Qgram,
                BuildSpec::PhoneticIndex => SearchMethod::PhoneticIndex,
                BuildSpec::BkTree => SearchMethod::BkTree,
            };
            built |= 1 << method_index(method);
        }
        MatchService {
            store,
            cache: TransformCache::new(cache_capacity),
            metrics: ServiceMetrics::default(),
            built: AtomicU8::new(built),
            load_info: Mutex::new(LoadInfo::default()),
        }
    }

    /// Record how this service's corpus was loaded (shown in `STATS`
    /// and the daemon startup log).
    pub fn set_load_info(&self, info: LoadInfo) {
        *self.load_info.lock().expect("load info lock") = info;
    }

    /// How this service's corpus was loaded.
    pub fn load_info(&self) -> LoadInfo {
        *self.load_info.lock().expect("load info lock")
    }

    /// Persist the store (entries, striping, built access paths) to
    /// `path` in the default (binary mmap) format — see
    /// [`crate::mmapstore`].
    pub fn save_snapshot(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), lexequal_mdb::DbError> {
        self.save_snapshot_with_lsn(path, 0)
    }

    /// Build a service around a store loaded from a snapshot file,
    /// detecting the format by magic. `shards`: `None` accepts the
    /// snapshot's own shard count, `Some(m)` insists on `m`.
    pub fn load_snapshot(
        match_config: MatchConfig,
        shards: Option<usize>,
        cache_capacity: usize,
        path: impl AsRef<std::path::Path>,
    ) -> Result<Self, lexequal_mdb::DbError> {
        Self::load_snapshot_with_lsn(match_config, shards, cache_capacity, path).map(|(s, _)| s)
    }

    /// [`load_snapshot`](Self::load_snapshot), also returning the WAL
    /// LSN the snapshot covers (0 for pre-replication snapshots) so the
    /// daemon knows where log replay starts. Recorded access paths are
    /// rebuilt synchronously before returning; use
    /// [`load_snapshot_auto`](Self::load_snapshot_auto) to defer them.
    pub fn load_snapshot_with_lsn(
        match_config: MatchConfig,
        shards: Option<usize>,
        cache_capacity: usize,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(Self, u64), lexequal_mdb::DbError> {
        let load = Self::load_snapshot_auto(match_config, shards, cache_capacity, path)?;
        for spec in load.pending_builds {
            load.service.build(spec);
        }
        if load.pending_embeds {
            load.service.build_embeddings();
        }
        Ok((load.service, load.lsn))
    }

    /// Load a snapshot with format detection by magic: binary images
    /// are `mmap`ed and served zero-copy out of the mapping (scan path
    /// ready as soon as validation passes — O(1) cold start), JSON
    /// documents take the legacy parse-and-rebuild path. The returned
    /// [`SnapshotLoad`] carries provenance for logs/STATS plus any
    /// recorded access paths not yet rebuilt.
    pub fn load_snapshot_auto(
        match_config: MatchConfig,
        shards: Option<usize>,
        cache_capacity: usize,
        path: impl AsRef<std::path::Path>,
    ) -> Result<SnapshotLoad, lexequal_mdb::DbError> {
        let path = path.as_ref();
        let start = Instant::now();
        let load = if crate::mmapstore::sniff_file(path) {
            let image = crate::mmapstore::load_file(match_config, shards, path)?;
            let service = MatchService::from_store(image.store, cache_capacity);
            SnapshotLoad {
                service,
                lsn: image.lsn,
                format: SnapshotFormat::Mmap,
                mapped_bytes: image.bytes,
                load_ms: start.elapsed().as_millis() as u64,
                pending_builds: image.builds,
                pending_embeds: image.pending_embeds,
            }
        } else {
            let f = std::fs::File::open(path).map_err(|e| {
                lexequal_mdb::DbError::Unsupported(format!("store snapshot open: {e}"))
            })?;
            let snap = crate::snapshot::StoreSnapshot::read_from(std::io::BufReader::new(f))?;
            let lsn = snap.lsn();
            let store = match shards {
                Some(m) => snap.restore_with_shards(match_config, m),
                None => snap.restore(match_config),
            }?;
            SnapshotLoad {
                service: MatchService::from_store(store, cache_capacity),
                lsn,
                format: SnapshotFormat::Json,
                mapped_bytes: 0,
                load_ms: start.elapsed().as_millis() as u64,
                pending_builds: Vec::new(),
                pending_embeds: false,
            }
        };
        load.service.set_load_info(LoadInfo {
            format: load.format.name(),
            mapped_bytes: load.mapped_bytes,
            load_ms: load.load_ms,
        });
        Ok(load)
    }

    /// Persist the store atomically (temp file + rename), stamping the
    /// WAL LSN the state corresponds to, in the default (binary mmap)
    /// format. The caller is responsible for holding writes off while
    /// capturing (the daemon captures under its commit lock).
    pub fn save_snapshot_with_lsn(
        &self,
        path: impl AsRef<std::path::Path>,
        lsn: u64,
    ) -> Result<(), lexequal_mdb::DbError> {
        self.save_snapshot_with_lsn_format(path, lsn, SnapshotFormat::Mmap)
    }

    /// [`save_snapshot_with_lsn`](Self::save_snapshot_with_lsn) in an
    /// explicit format (`SAVE JSON` keeps the human-readable document
    /// available as a debug/export path).
    pub fn save_snapshot_with_lsn_format(
        &self,
        path: impl AsRef<std::path::Path>,
        lsn: u64,
        format: SnapshotFormat,
    ) -> Result<(), lexequal_mdb::DbError> {
        match format {
            SnapshotFormat::Mmap => {
                crate::mmapstore::write_file_atomic(&self.store, lsn, path).map(|_| ())
            }
            SnapshotFormat::Json => {
                crate::snapshot::StoreSnapshot::capture_with_lsn(&self.store, lsn)
                    .write_to_file_atomic(path)
            }
        }
    }

    /// The underlying sharded store.
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// The transform cache.
    pub fn cache(&self) -> &TransformCache {
        &self.cache
    }

    /// The raw metric counters.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Number of stored names.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether no names are stored.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Add one name; returns its global id.
    pub fn add(&self, text: &str, language: Language) -> Result<u32, G2pError> {
        self.extend([(text.to_owned(), language)]).map(|r| r.start)
    }

    /// Bulk-load names; returns the assigned global id range.
    pub fn extend(
        &self,
        rows: impl IntoIterator<Item = (String, Language)>,
    ) -> Result<Range<u32>, G2pError> {
        // The mask invalidation runs under the store's grow lock (only
        // when rows were actually appended), so it cannot interleave
        // with a concurrent `build`'s mask update.
        self.store.extend_with(rows, || self.invalidate_built())
    }

    /// Bulk-load pre-transformed entries.
    pub fn extend_transformed(&self, entries: Vec<NameEntry>) -> Range<u32> {
        self.store
            .extend_transformed_with(entries, || self.invalidate_built())
    }

    fn invalidate_built(&self) {
        self.built
            .store(1 << method_index(SearchMethod::Scan), Ordering::Release);
    }

    /// Build one access path on every shard (in parallel across shards).
    ///
    /// The whole build — per-shard index construction, the store's spec
    /// record, and this service's built-mask bit — commits under the
    /// store's grow lock, so a concurrent `ADD` either lands entirely
    /// before the build (and is indexed by it) or entirely after (and
    /// invalidates both the record and the mask). The mask can therefore
    /// never claim a path is built when some shard's index is gone —
    /// which previously let a background rebuild racing an `ADD` leave
    /// the daemon panicking on every search of that path.
    pub fn build(&self, spec: BuildSpec) {
        let method = match spec {
            BuildSpec::Qgram { .. } => SearchMethod::Qgram,
            BuildSpec::PhoneticIndex => SearchMethod::PhoneticIndex,
            BuildSpec::BkTree => SearchMethod::BkTree,
        };
        self.store.build_with(spec, |_| {
            self.built
                .fetch_or(1 << method_index(method), Ordering::Release);
        });
    }

    /// Fill in missing per-entry phonetic embeddings (entries adopted
    /// from a v1 snapshot image, which predates the embedding column);
    /// returns the number filled. Unlike [`build`](Self::build) this
    /// never touches the built mask: embeddings feed only the
    /// verification screen, so serving stays correct (screen bypassed
    /// per missing entry) before, during, and after the fill.
    pub fn build_embeddings(&self) -> usize {
        self.store.build_embeddings()
    }

    /// Entries still missing an embedding (see
    /// [`build_embeddings`](Self::build_embeddings)).
    pub fn pending_embeddings(&self) -> usize {
        self.store.pending_embeddings()
    }

    /// Build every access path (q-gram with the given parameters).
    pub fn build_all(&self, q: usize, mode: QgramMode) {
        self.build(BuildSpec::Qgram { q, mode });
        self.build(BuildSpec::PhoneticIndex);
        self.build(BuildSpec::BkTree);
    }

    /// Transform one name (through the cache) into the entry an `ADD`
    /// would append — the *fallible* half of a WAL-logged mutation, run
    /// before the op is appended so a bad input never reaches the log.
    pub fn prepare_entry(&self, text: &str, language: Language) -> Result<NameEntry, G2pError> {
        let phonemes = self.cache.get_or_try_insert_with(text, language, || {
            self.store.config().registry.transform(text, language)
        })?;
        Ok(NameEntry {
            text: text.to_owned(),
            language,
            phonemes,
        })
    }

    /// Append one pre-transformed entry — the infallible half of an
    /// `ADD`. Returns the assigned global id.
    pub fn apply_entry(&self, entry: NameEntry) -> u32 {
        self.extend_transformed(vec![entry]).start
    }

    /// Deterministically apply one logged op, exactly as the original
    /// mutation did. WAL replay on restart and replicas applying the
    /// primary's stream both come through here, and the primary's own
    /// commit path splits into the same [`prepare_entry`]/[`apply_entry`]
    /// halves — so every copy of the store converges byte-for-byte.
    /// Returns the assigned global id for an `Add`.
    ///
    /// [`prepare_entry`]: Self::prepare_entry
    /// [`apply_entry`]: Self::apply_entry
    pub fn apply_op(&self, op: &crate::wal::Op) -> Result<Option<u32>, G2pError> {
        match op {
            crate::wal::Op::Add { language, text } => {
                let entry = self.prepare_entry(text, *language)?;
                Ok(Some(self.apply_entry(entry)))
            }
            crate::wal::Op::Build(spec) => {
                self.build(*spec);
                Ok(None)
            }
        }
    }

    /// Whether `method` can serve a search right now.
    pub fn is_built(&self, method: SearchMethod) -> bool {
        self.built.load(Ordering::Acquire) & (1 << method_index(method)) != 0
    }

    /// The access path an override-free request uses: the cheapest built
    /// accelerator, falling back to a scan.
    pub fn default_method(&self) -> SearchMethod {
        for m in [
            SearchMethod::PhoneticIndex,
            SearchMethod::Qgram,
            SearchMethod::BkTree,
        ] {
            if self.is_built(m) {
                return m;
            }
        }
        SearchMethod::Scan
    }

    /// Serve one lookup.
    pub fn lookup(&self, req: &MatchRequest) -> MatchOutcome {
        self.lookup_finish(self.lookup_begin(req))
    }

    /// Start one lookup without waiting for the shards: degraded cases
    /// (`NoResource`, `NotBuilt`, `BadInput`) resolve immediately, a
    /// searchable request has its fan-out *enqueued* on every shard
    /// worker and comes back as a pending handle. Beginning several
    /// lookups before finishing any lets one caller thread keep every
    /// shard busy — the evented daemon's verify workers lean on this.
    pub fn lookup_begin(&self, req: &MatchRequest) -> PendingLookup {
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let config = self.store.config();
        if !config.registry.supports(req.language) {
            self.metrics.no_resource.fetch_add(1, Ordering::Relaxed);
            return PendingLookup::ready(MatchOutcome::NoResource(req.language));
        }
        let method = req.method.unwrap_or_else(|| self.default_method());
        if !self.is_built(method) {
            self.metrics.not_built.fetch_add(1, Ordering::Relaxed);
            return PendingLookup::ready(MatchOutcome::NotBuilt(method));
        }
        let threshold = req.threshold.unwrap_or(config.threshold);
        let query = match self
            .cache
            .get_or_try_insert_with(&req.text, req.language, || {
                config.registry.transform(&req.text, req.language)
            }) {
            Ok(q) => q,
            Err(e) => {
                self.metrics.bad_input.fetch_add(1, Ordering::Relaxed);
                return PendingLookup::ready(MatchOutcome::BadInput(format!("{e:?}")));
            }
        };
        PendingLookup {
            kind: PendingKind::Searching {
                pending: self.store.begin_search(&query, threshold, method),
                method,
                threshold,
                start: Instant::now(),
            },
        }
    }

    /// Collect a lookup started by [`lookup_begin`](Self::lookup_begin):
    /// merge the per-shard replies and record metrics. The outcome is
    /// identical to a blocking [`lookup`](Self::lookup) call.
    pub fn lookup_finish(&self, pending: PendingLookup) -> MatchOutcome {
        match pending.kind {
            PendingKind::Ready(outcome) => outcome,
            PendingKind::Searching {
                pending,
                method,
                threshold,
                start,
            } => {
                let result = pending.merge();
                self.metrics
                    .record_search(method, start.elapsed(), result.ids.len());
                MatchOutcome::Matches {
                    method,
                    threshold,
                    ids: result.ids,
                    verifications: result.verifications,
                }
            }
        }
    }

    /// Serve one **untagged** lookup (`MATCH -`): profile the script,
    /// route to one converter or a fan-out set, union + dedupe.
    pub fn lookup_auto(&self, req: &AutoMatchRequest) -> MatchOutcome {
        self.lookup_auto_finish(self.lookup_auto_begin(req))
    }

    /// Start one untagged lookup without waiting for the shards — the
    /// untagged twin of [`lookup_begin`](Self::lookup_begin).
    ///
    /// The text is profiled ([`ScriptProfile`]) and routed ([`Router`]):
    /// an unambiguous script transforms under its single converter
    /// (outcome byte-identical to the tagged request); Latin input
    /// transforms under every enabled fan-out language, identical phoneme
    /// strings dedupe *before* the shards (counted as dedupe hits), and
    /// each surviving query has its per-shard fan-out enqueued before any
    /// is merged — the same overlap machinery tagged lookups use, just
    /// one level up. Hangul/Thai resolve to the paper's `NORESOURCE`;
    /// letterless or unroutable input is `BadInput`.
    pub fn lookup_auto_begin(&self, req: &AutoMatchRequest) -> AutoPendingLookup {
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let profile = ScriptProfile::of(&req.text);
        self.metrics.untagged.record_request(profile.primary());
        let config = self.store.config();
        let candidates: Vec<Language> = match Router::route(&profile) {
            Route::Single(l) => {
                if !config.registry.supports(l) {
                    return AutoPendingLookup::ready(self.untagged_no_resource(l));
                }
                vec![l]
            }
            Route::FanOut(set) => {
                let enabled: Vec<Language> = set
                    .iter()
                    .copied()
                    .filter(|l| config.registry.supports(*l))
                    .collect();
                if enabled.is_empty() {
                    // Every converter for this script is disabled in this
                    // deployment; report the script's default tag.
                    return AutoPendingLookup::ready(self.untagged_no_resource(set[0]));
                }
                enabled
            }
            Route::NoResource(l) => {
                return AutoPendingLookup::ready(self.untagged_no_resource(l));
            }
            Route::Unsupported(s) => {
                self.metrics.bad_input.fetch_add(1, Ordering::Relaxed);
                return AutoPendingLookup::ready(MatchOutcome::BadInput(format!(
                    "unsupported script {s}"
                )));
            }
            Route::NoLetters => {
                self.metrics.bad_input.fetch_add(1, Ordering::Relaxed);
                return AutoPendingLookup::ready(MatchOutcome::BadInput(
                    "no letters to detect a script from".to_owned(),
                ));
            }
        };
        let method = req.method.unwrap_or_else(|| self.default_method());
        if !self.is_built(method) {
            self.metrics.not_built.fetch_add(1, Ordering::Relaxed);
            return AutoPendingLookup::ready(MatchOutcome::NotBuilt(method));
        }
        let threshold = req.threshold.unwrap_or(config.threshold);
        // Transform under every candidate; languages whose converter
        // rejects the text just drop out of the fan-out, and identical
        // phoneme renderings collapse to one shard query.
        let mut queries: Vec<lexequal::PhonemeString> = Vec::with_capacity(candidates.len());
        let mut deduped = 0u64;
        let mut last_err: Option<G2pError> = None;
        for &lang in &candidates {
            match self.cache.get_or_try_insert_with(&req.text, lang, || {
                config.registry.transform(&req.text, lang)
            }) {
                Ok(q) => {
                    if queries.contains(&q) {
                        deduped += 1;
                    } else {
                        queries.push(q);
                    }
                }
                Err(e) => last_err = Some(e),
            }
        }
        if queries.is_empty() {
            self.metrics.bad_input.fetch_add(1, Ordering::Relaxed);
            self.metrics.untagged.record_fanout(0, deduped);
            let e = last_err.expect("no queries implies at least one transform error");
            return AutoPendingLookup::ready(MatchOutcome::BadInput(format!("{e:?}")));
        }
        self.metrics
            .untagged
            .record_fanout(queries.len() as u64, deduped);
        let start = Instant::now();
        // Enqueue every query's per-shard fan-out before merging any.
        let pendings: Vec<PendingSearch> = queries
            .iter()
            .map(|q| self.store.begin_search(q, threshold, method))
            .collect();
        AutoPendingLookup {
            kind: AutoPendingKind::Searching {
                pendings,
                method,
                threshold,
                start,
            },
        }
    }

    /// Collect an untagged lookup started by
    /// [`lookup_auto_begin`](Self::lookup_auto_begin): merge every
    /// per-language search, union + dedupe the ids (fan-out can only add
    /// recall; every id was confirmed by the same bit-identical verifier
    /// a tagged query uses), sum the verification work.
    pub fn lookup_auto_finish(&self, pending: AutoPendingLookup) -> MatchOutcome {
        match pending.kind {
            AutoPendingKind::Ready(outcome) => outcome,
            AutoPendingKind::Searching {
                pendings,
                method,
                threshold,
                start,
            } => {
                let mut ids: Vec<u32> = Vec::new();
                let mut verifications = 0usize;
                for pending in pendings {
                    let result = pending.merge();
                    ids.extend(result.ids);
                    verifications += result.verifications;
                }
                ids.sort_unstable();
                ids.dedup();
                self.metrics
                    .record_search(method, start.elapsed(), ids.len());
                MatchOutcome::Matches {
                    method,
                    threshold,
                    ids,
                    verifications,
                }
            }
        }
    }

    fn untagged_no_resource(&self, language: Language) -> MatchOutcome {
        self.metrics.no_resource.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .untagged
            .no_resource
            .fetch_add(1, Ordering::Relaxed);
        MatchOutcome::NoResource(language)
    }

    /// Resolve the language tag an untagged `ADD` commits under: route by
    /// primary script, and for a fan-out set take the *first* language
    /// (registry order — English before French/Spanish) whose converter
    /// accepts the text. The WAL then logs the resolved tag through the
    /// ordinary [`prepare_entry`](Self::prepare_entry) /
    /// [`apply_entry`](Self::apply_entry) halves, so replay and replicas
    /// never see "untagged" and convergence stays byte-identical.
    pub fn resolve_add_language(&self, text: &str) -> AddResolution {
        let profile = ScriptProfile::of(text);
        self.metrics.untagged.record_request(profile.primary());
        let config = self.store.config();
        let candidates: Vec<Language> = match Router::route(&profile) {
            Route::Single(l) => vec![l],
            Route::FanOut(set) => set.to_vec(),
            Route::NoResource(l) => {
                self.metrics
                    .untagged
                    .no_resource
                    .fetch_add(1, Ordering::Relaxed);
                return AddResolution::NoResource(l);
            }
            Route::Unsupported(s) => {
                return AddResolution::BadInput(format!("unsupported script {s}"));
            }
            Route::NoLetters => {
                return AddResolution::BadInput("no letters to detect a script from".to_owned());
            }
        };
        let mut attempts = 0u64;
        let mut last_err: Option<G2pError> = None;
        for &lang in &candidates {
            if !config.registry.supports(lang) {
                last_err = Some(G2pError::NoResource(lang));
                continue;
            }
            attempts += 1;
            match self
                .cache
                .get_or_try_insert_with(text, lang, || config.registry.transform(text, lang))
            {
                Ok(_) => {
                    self.metrics.untagged.record_fanout(attempts, 0);
                    return AddResolution::Resolved(lang);
                }
                Err(e) => last_err = Some(e),
            }
        }
        match last_err {
            Some(G2pError::NoResource(l)) => {
                self.metrics
                    .untagged
                    .no_resource
                    .fetch_add(1, Ordering::Relaxed);
                AddResolution::NoResource(l)
            }
            Some(e) => AddResolution::BadInput(format!("{e:?}")),
            None => AddResolution::BadInput("no candidate languages".to_owned()),
        }
    }

    /// Serve a batch of lookups in request order.
    ///
    /// Degraded outcomes (`NoResource`, `NotBuilt`, `BadInput`) resolve
    /// up front; the searchable remainder goes through
    /// [`ShardedStore::search_phonemes_batch`], which enqueues every
    /// item's per-shard fan-out before merging any of them, so shards
    /// verify item `i + 1` while item `i`'s stragglers are still being
    /// collected. Outcomes are identical to calling
    /// [`lookup`](Self::lookup) per item; per-item latency is recorded as
    /// the batch fan-out time amortized over the searched items.
    pub fn lookup_batch(&self, reqs: &[MatchRequest]) -> Vec<MatchOutcome> {
        let config = self.store.config();
        let mut outcomes: Vec<Option<MatchOutcome>> = Vec::with_capacity(reqs.len());
        let mut queries: Vec<(lexequal::PhonemeString, f64, SearchMethod)> = Vec::new();
        let mut slots: Vec<usize> = Vec::new();
        for (i, req) in reqs.iter().enumerate() {
            self.metrics.requests.fetch_add(1, Ordering::Relaxed);
            if !config.registry.supports(req.language) {
                self.metrics.no_resource.fetch_add(1, Ordering::Relaxed);
                outcomes.push(Some(MatchOutcome::NoResource(req.language)));
                continue;
            }
            let method = req.method.unwrap_or_else(|| self.default_method());
            if !self.is_built(method) {
                self.metrics.not_built.fetch_add(1, Ordering::Relaxed);
                outcomes.push(Some(MatchOutcome::NotBuilt(method)));
                continue;
            }
            let threshold = req.threshold.unwrap_or(config.threshold);
            let query = match self
                .cache
                .get_or_try_insert_with(&req.text, req.language, || {
                    config.registry.transform(&req.text, req.language)
                }) {
                Ok(q) => q,
                Err(e) => {
                    self.metrics.bad_input.fetch_add(1, Ordering::Relaxed);
                    outcomes.push(Some(MatchOutcome::BadInput(format!("{e:?}"))));
                    continue;
                }
            };
            outcomes.push(None);
            slots.push(i);
            queries.push((query, threshold, method));
        }
        if !queries.is_empty() {
            let start = Instant::now();
            let results = self.store.search_phonemes_batch(&queries);
            let amortized = start.elapsed() / queries.len() as u32;
            for ((slot, (_, threshold, method)), result) in
                slots.into_iter().zip(queries).zip(results)
            {
                self.metrics
                    .record_search(method, amortized, result.ids.len());
                outcomes[slot] = Some(MatchOutcome::Matches {
                    method,
                    threshold,
                    ids: result.ids,
                    verifications: result.verifications,
                });
            }
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every searched slot was filled"))
            .collect()
    }

    /// A point-in-time snapshot of every counter (for `STATS`).
    pub fn stats(&self) -> StatsSnapshot {
        let (cache_hits, cache_misses) = self.cache.stats();
        let screens = self.store.screen_totals();
        let batches = self.store.batch_totals();
        StatsSnapshot {
            names: self.store.len(),
            shards: self.store.shards(),
            requests: self.metrics.requests.load(Ordering::Relaxed),
            matches_returned: self.metrics.matches_returned.load(Ordering::Relaxed),
            no_resource: self.metrics.no_resource.load(Ordering::Relaxed),
            not_built: self.metrics.not_built.load(Ordering::Relaxed),
            bad_input: self.metrics.bad_input.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
            screen_fast_accept: screens.fast_accept,
            screen_fast_reject: screens.fast_reject,
            screen_full_dp: screens.full_dp,
            screen_bypass: screens.bypass,
            embed_screen_accept: screens.embed_accept,
            embed_screen_reject: screens.embed_reject,
            embed_screen_bypass: screens.embed_bypass,
            batch_calls: batches.calls,
            batch_lanes_sum: batches.lanes_sum,
            batch_lanes_max: batches.lanes_max,
            batch_lane_accept: batches.lane_accept,
            batch_lane_reject: batches.lane_reject,
            batch_lane_dp: batches.lane_dp,
            simd_level: lexequal::simd_level().name(),
            per_method: crate::metrics::ALL_METHODS.map(|m| {
                let pm = &self.metrics.per_method[method_index(m)];
                MethodStats {
                    method: m,
                    searches: pm.searches.load(Ordering::Relaxed),
                    p50_upper_ns: pm.latency.quantile_upper_ns(0.5),
                    p99_upper_ns: pm.latency.quantile_upper_ns(0.99),
                }
            }),
            conn: None,
            repl: None,
            untagged: self.metrics.untagged.snapshot(),
            load: self.load_info(),
        }
    }
}

/// A lookup in flight: either already resolved (degraded outcomes never
/// reach the shards) or waiting on every shard's reply.
pub struct PendingLookup {
    kind: PendingKind,
}

enum PendingKind {
    Ready(MatchOutcome),
    Searching {
        pending: PendingSearch,
        method: SearchMethod,
        threshold: f64,
        start: Instant,
    },
}

impl PendingLookup {
    fn ready(outcome: MatchOutcome) -> Self {
        PendingLookup {
            kind: PendingKind::Ready(outcome),
        }
    }
}

/// An untagged lookup in flight: resolved up front (degraded outcomes,
/// `NORESOURCE`, unroutable scripts) or waiting on one pending search per
/// unique per-language phoneme rendering.
pub struct AutoPendingLookup {
    kind: AutoPendingKind,
}

enum AutoPendingKind {
    Ready(MatchOutcome),
    Searching {
        pendings: Vec<PendingSearch>,
        method: SearchMethod,
        threshold: f64,
        start: Instant,
    },
}

impl AutoPendingLookup {
    fn ready(outcome: MatchOutcome) -> Self {
        AutoPendingLookup {
            kind: AutoPendingKind::Ready(outcome),
        }
    }
}

/// One access path's share of a [`StatsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MethodStats {
    /// The access path.
    pub method: SearchMethod,
    /// Searches served.
    pub searches: u64,
    /// Upper edge of the median latency bucket, if any samples.
    pub p50_upper_ns: Option<u64>,
    /// Upper edge of the p99 latency bucket, if any samples.
    pub p99_upper_ns: Option<u64>,
}

/// Everything `STATS` reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Stored names.
    pub names: usize,
    /// Store shards.
    pub shards: usize,
    /// Lookup requests served.
    pub requests: u64,
    /// Total matching ids returned.
    pub matches_returned: u64,
    /// Lookups answered `NoResource`.
    pub no_resource: u64,
    /// Lookups answered `NotBuilt`.
    pub not_built: u64,
    /// Lookups with untransformable text.
    pub bad_input: u64,
    /// Transform-cache hits.
    pub cache_hits: u64,
    /// Transform-cache misses.
    pub cache_misses: u64,
    /// Verified pairs the kernel accepted without the DP.
    pub screen_fast_accept: u64,
    /// Verified pairs the kernel rejected without the DP.
    pub screen_fast_reject: u64,
    /// Verified pairs that ran the full banded DP.
    pub screen_full_dp: u64,
    /// Verified pairs that skipped both screens (query empty or >64
    /// phonemes) — an overlay on `screen_full_dp`.
    pub screen_bypass: u64,
    /// Pairs the embedding prefilter examined but could not reject (an
    /// overlay on the other dispositions; zero with the screen off).
    pub embed_screen_accept: u64,
    /// Pairs the embedding prefilter rejected before any Myers screen.
    pub embed_screen_reject: u64,
    /// Pairs verified without a stored embedding (v1 snapshot adoption
    /// before the background rebuild finishes).
    pub embed_screen_bypass: u64,
    /// Interleaved verification steps run by the batched kernels.
    pub batch_calls: u64,
    /// Sum of lane counts over those steps (`/ batch_calls` = mean fill).
    pub batch_lanes_sum: u64,
    /// Widest batch any worker ran.
    pub batch_lanes_max: u64,
    /// Lanes disposed of by equality / phoneme fast-accept.
    pub batch_lane_accept: u64,
    /// Lanes disposed of by the length filter / cluster fast-reject.
    pub batch_lane_reject: u64,
    /// Lanes drained through the dense banded DP.
    pub batch_lane_dp: u64,
    /// The SIMD backend the DP drain dispatched to at startup
    /// (`avx2` | `sse2` | `scalar`).
    pub simd_level: &'static str,
    /// Per-access-path counters.
    pub per_method: [MethodStats; 4],
    /// Serving-loop connection/queue/pipelining gauges. `None` from
    /// [`MatchService::stats`] (the service doesn't own connections); a
    /// TCP front-end fills this in before formatting `STATS`.
    pub conn: Option<ConnStats>,
    /// Replication role/lag gauges. `None` from [`MatchService::stats`]
    /// (and on a daemon with neither `--wal` nor `--replica-of`); the
    /// serving layer fills this in from its request context.
    pub repl: Option<crate::metrics::ReplStats>,
    /// Untagged-path counters (`ADD -` / `MATCH -`): script detections,
    /// fan-out widths, dedupe hits. All-zero until the first untagged
    /// request, and the `STATS` line omits the block while it is.
    pub untagged: UntaggedStats,
    /// How the store came up: snapshot format served from (`mmap` |
    /// `json`), bytes mapped, and validate-to-serve-ready time.
    /// `format: "rebuild"` when no snapshot was loaded.
    pub load: LoadInfo,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service(shards: usize) -> MatchService {
        let s = MatchService::new(ServiceConfig {
            shards,
            ..ServiceConfig::default()
        });
        s.extend(
            [
                ("Nehru", Language::English),
                ("नेहरु", Language::Hindi),
                ("நேரு", Language::Tamil),
                ("Nero", Language::English),
                ("Gandhi", Language::English),
            ]
            .map(|(t, l)| (t.to_owned(), l)),
        )
        .unwrap();
        s
    }

    #[test]
    fn lookup_over_scan_needs_no_build() {
        let s = service(2);
        let out = s.lookup(&MatchRequest {
            threshold: Some(0.45),
            ..MatchRequest::new("Nehru", Language::English)
        });
        match out {
            MatchOutcome::Matches { ids, method, .. } => {
                assert_eq!(method, SearchMethod::Scan);
                assert!(ids.contains(&1), "नेहरु: {ids:?}");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn unbuilt_path_is_a_graceful_outcome() {
        let s = service(2);
        let out = s.lookup(&MatchRequest {
            method: Some(SearchMethod::Qgram),
            ..MatchRequest::new("Nehru", Language::English)
        });
        assert_eq!(out, MatchOutcome::NotBuilt(SearchMethod::Qgram));
        // And serving still works afterwards (no worker died).
        s.build(BuildSpec::Qgram {
            q: 3,
            mode: QgramMode::Strict,
        });
        let out = s.lookup(&MatchRequest {
            method: Some(SearchMethod::Qgram),
            threshold: Some(0.45),
            ..MatchRequest::new("Nehru", Language::English)
        });
        assert!(matches!(out, MatchOutcome::Matches { .. }));
    }

    #[test]
    fn adds_invalidate_built_paths() {
        let s = service(2);
        s.build_all(3, QgramMode::Strict);
        assert_eq!(s.default_method(), SearchMethod::PhoneticIndex);
        s.add("Bose", Language::English).unwrap();
        assert_eq!(s.default_method(), SearchMethod::Scan);
        assert_eq!(
            s.lookup(&MatchRequest {
                method: Some(SearchMethod::BkTree),
                ..MatchRequest::new("Bose", Language::English)
            }),
            MatchOutcome::NotBuilt(SearchMethod::BkTree)
        );
    }

    /// Regression: a rebuild racing concurrent ADDs used to re-mark
    /// access paths as built *after* the append had invalidated the
    /// per-shard indexes, so the next method-pinned MATCH panicked
    /// inside a shard worker and every later request died on the
    /// closed channel. Builds now serialize against mutations under
    /// the store's grow lock, and a worker that still sees a stale
    /// request degrades to the exact scan — so this hammering must
    /// never panic and must end in a consistent state.
    #[test]
    fn builds_racing_adds_never_kill_a_shard_worker() {
        use std::sync::atomic::AtomicBool;

        let s = std::sync::Arc::new(service(3));
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let builder = {
            let s = std::sync::Arc::clone(&s);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    s.build(BuildSpec::PhoneticIndex);
                    s.build(BuildSpec::Qgram {
                        q: 3,
                        mode: QgramMode::Strict,
                    });
                }
            })
        };
        for i in 0..200 {
            s.add(&format!("Name{i}"), Language::English).unwrap();
            let out = s.lookup(&MatchRequest {
                method: Some(SearchMethod::PhoneticIndex),
                threshold: Some(0.45),
                ..MatchRequest::new("Nehru", Language::English)
            });
            assert!(
                matches!(
                    out,
                    MatchOutcome::Matches { .. } | MatchOutcome::NotBuilt(_)
                ),
                "mid-race lookup produced {out:?}"
            );
        }
        stop.store(true, Ordering::Relaxed);
        builder.join().expect("builder thread panicked");

        // Every worker is still alive and the final state is coherent:
        // one more build, then a pinned lookup over the full corpus.
        s.build(BuildSpec::PhoneticIndex);
        let out = s.lookup(&MatchRequest {
            method: Some(SearchMethod::PhoneticIndex),
            threshold: Some(0.45),
            ..MatchRequest::new("Name123", Language::English)
        });
        match out {
            MatchOutcome::Matches { ids, method, .. } => {
                assert_eq!(method, SearchMethod::PhoneticIndex);
                assert!(!ids.is_empty(), "Name123 was added and must match itself");
            }
            other => panic!("post-race lookup produced {other:?}"),
        }
        assert_eq!(s.len(), 5 + 200);
    }

    #[test]
    fn noresource_language_is_reported_not_errored() {
        let config = MatchConfig::default()
            .with_registry(lexequal::G2pRegistry::with_languages(&[Language::English]));
        let s = MatchService::new(ServiceConfig {
            match_config: config,
            shards: 2,
            cache_capacity: 16,
        });
        s.extend([("Nehru".to_owned(), Language::English)]).unwrap();
        assert_eq!(
            s.lookup(&MatchRequest::new("नेहरु", Language::Hindi)),
            MatchOutcome::NoResource(Language::Hindi)
        );
    }

    #[test]
    fn bad_input_is_reported_not_errored() {
        let s = service(2);
        let out = s.lookup(&MatchRequest::new("नेहरु", Language::Tamil));
        assert!(matches!(out, MatchOutcome::BadInput(_)), "{out:?}");
    }

    #[test]
    fn repeated_queries_hit_the_cache_and_count_stats() {
        let s = service(2);
        for _ in 0..3 {
            s.lookup(&MatchRequest {
                threshold: Some(0.45),
                ..MatchRequest::new("Nehru", Language::English)
            });
        }
        let st = s.stats();
        assert_eq!(st.requests, 3);
        assert_eq!(st.cache_misses, 1);
        assert_eq!(st.cache_hits, 2);
        assert_eq!(st.names, 5);
        assert_eq!(st.shards, 2);
        let scan = st.per_method[method_index(SearchMethod::Scan)];
        assert_eq!(scan.searches, 3);
        assert!(scan.p50_upper_ns.is_some());
        assert!(st.matches_returned >= 3, "{}", st.matches_returned);
    }

    #[test]
    fn batch_equals_per_item_lookups_including_degraded_outcomes() {
        let a = service(3);
        let b = service(3);
        for s in [&a, &b] {
            s.build(BuildSpec::Qgram {
                q: 3,
                mode: QgramMode::Strict,
            });
        }
        let reqs = vec![
            MatchRequest {
                threshold: Some(0.45),
                ..MatchRequest::new("Nehru", Language::English)
            },
            // Script/language mismatch → BadInput.
            MatchRequest::new("नेहरु", Language::Tamil),
            MatchRequest {
                method: Some(SearchMethod::BkTree),
                ..MatchRequest::new("Nero", Language::English)
            },
            MatchRequest::new("Gandhi", Language::English),
        ];
        let batched = a.lookup_batch(&reqs);
        let singles: Vec<MatchOutcome> = reqs.iter().map(|r| b.lookup(r)).collect();
        assert_eq!(batched, singles);
        assert!(matches!(batched[1], MatchOutcome::BadInput(_)));
        assert_eq!(batched[2], MatchOutcome::NotBuilt(SearchMethod::BkTree));
        let (sa, sb) = (a.stats(), b.stats());
        assert_eq!(sa.requests, sb.requests);
        assert_eq!(sa.bad_input, 1);
        assert_eq!(sa.not_built, 1);
        assert_eq!(sa.matches_returned, sb.matches_returned);
    }

    #[test]
    fn screen_counters_surface_in_stats() {
        let s = service(2);
        s.lookup(&MatchRequest {
            threshold: Some(0.45),
            ..MatchRequest::new("Nehru", Language::English)
        });
        let st = s.stats();
        let screened = st.screen_fast_accept + st.screen_fast_reject + st.screen_full_dp;
        // A scan verifies every stored name exactly once.
        assert_eq!(screened, st.names as u64);
        assert!(st.screen_fast_reject > 0, "{st:?}");
        assert_eq!(st.screen_bypass, 0, "short queries keep their screens");
    }

    #[test]
    fn batch_counters_surface_in_stats() {
        let s = service(2);
        s.lookup(&MatchRequest {
            threshold: Some(0.45),
            ..MatchRequest::new("Nehru", Language::English)
        });
        let st = s.stats();
        // The shard workers verify through the batched kernel: every
        // pair the O(1) pre-screens can't settle inline becomes a lane
        // of some interleaved step, so the lane totals are bounded by
        // (and here nonzero under) the per-pair screen totals.
        assert!(st.batch_calls > 0, "{st:?}");
        assert!(st.batch_lanes_sum > 0, "{st:?}");
        assert!(
            st.batch_lanes_sum <= st.screen_fast_accept + st.screen_fast_reject + st.screen_full_dp,
            "{st:?}"
        );
        assert_eq!(
            st.batch_lanes_sum,
            st.batch_lane_accept + st.batch_lane_reject + st.batch_lane_dp,
            "{st:?}"
        );
        assert!(st.batch_lanes_max >= 1 && st.batch_lanes_max <= lexequal::MAX_LANES as u64);
        assert!(
            ["scalar", "sse2", "avx2"].contains(&st.simd_level),
            "{st:?}"
        );
    }

    #[test]
    fn untagged_latin_merge_equals_union_of_tagged_queries() {
        let s = service(3);
        s.extend(
            [("Descartes", Language::French), ("Nero", Language::Spanish)]
                .map(|(t, l)| (t.to_owned(), l)),
        )
        .unwrap();
        let text = "Nehru";
        let mut union: Vec<u32> = Vec::new();
        for lang in [Language::English, Language::French, Language::Spanish] {
            match s.lookup(&MatchRequest {
                threshold: Some(0.45),
                ..MatchRequest::new(text, lang)
            }) {
                MatchOutcome::Matches { ids, .. } => union.extend(ids),
                other => panic!("tagged lookup failed: {other:?}"),
            }
        }
        union.sort_unstable();
        union.dedup();
        let out = s.lookup_auto(&AutoMatchRequest {
            threshold: Some(0.45),
            ..AutoMatchRequest::new(text)
        });
        match out {
            MatchOutcome::Matches { ids, .. } => assert_eq!(ids, union),
            other => panic!("untagged lookup failed: {other:?}"),
        }
    }

    #[test]
    fn unambiguous_untagged_is_byte_identical_to_tagged() {
        let tagged = service(2);
        let untagged = service(2);
        let t = tagged.lookup(&MatchRequest {
            threshold: Some(0.45),
            ..MatchRequest::new("नेहरु", Language::Hindi)
        });
        let u = untagged.lookup_auto(&AutoMatchRequest {
            threshold: Some(0.45),
            ..AutoMatchRequest::new("नेहरु")
        });
        assert_eq!(t, u);
        assert!(matches!(t, MatchOutcome::Matches { .. }));
    }

    #[test]
    fn untagged_cyrillic_routes_to_russian() {
        let s = service(2);
        s.add("Неру", Language::Russian).unwrap();
        let out = s.lookup_auto(&AutoMatchRequest {
            threshold: Some(0.45),
            ..AutoMatchRequest::new("Неру")
        });
        match out {
            MatchOutcome::Matches { ids, .. } => {
                // Matches the Cyrillic entry *and* the cross-script ones
                // (Неру renders to the same phonemes as English Nehru).
                assert!(ids.contains(&5), "{ids:?}");
                assert!(ids.contains(&0), "{ids:?}");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn untagged_hangul_and_thai_are_noresource() {
        let s = service(2);
        assert_eq!(
            s.lookup_auto(&AutoMatchRequest::new("네루")),
            MatchOutcome::NoResource(Language::Korean)
        );
        assert_eq!(
            s.lookup_auto(&AutoMatchRequest::new("เนห์รู")),
            MatchOutcome::NoResource(Language::Thai)
        );
        assert!(matches!(
            s.lookup_auto(&AutoMatchRequest::new("北京")),
            MatchOutcome::BadInput(_)
        ));
        assert!(matches!(
            s.lookup_auto(&AutoMatchRequest::new("123 !?")),
            MatchOutcome::BadInput(_)
        ));
        let st = s.stats();
        assert_eq!(st.untagged.requests, 4);
        assert_eq!(st.untagged.no_resource, 2);
    }

    #[test]
    fn untagged_stats_track_fanout_and_scripts() {
        let s = service(2);
        s.lookup_auto(&AutoMatchRequest {
            threshold: Some(0.45),
            ..AutoMatchRequest::new("Nehru")
        });
        let st = s.stats();
        assert_eq!(st.untagged.requests, 1);
        assert_eq!(
            st.untagged.per_script[lexequal_g2p::Script::Latin.index()],
            1
        );
        // All three Latin converters produced a rendering; at least one
        // shard query was issued and the width never exceeds three.
        assert!(st.untagged.fanout_width_max >= 1);
        assert!(st.untagged.fanout_width_max <= 3);
        assert_eq!(
            st.untagged.fanout_width_sum + st.untagged.dedup_hits,
            3,
            "3 candidates split between issued queries and dedupe hits: {:?}",
            st.untagged
        );
    }

    #[test]
    fn resolve_add_language_commits_to_one_tag() {
        let s = service(2);
        assert_eq!(
            s.resolve_add_language("Nehru"),
            AddResolution::Resolved(Language::English)
        );
        assert_eq!(
            s.resolve_add_language("नेहरु"),
            AddResolution::Resolved(Language::Hindi)
        );
        assert_eq!(
            s.resolve_add_language("Неру"),
            AddResolution::Resolved(Language::Russian)
        );
        assert_eq!(
            s.resolve_add_language("네루"),
            AddResolution::NoResource(Language::Korean)
        );
        assert!(matches!(
            s.resolve_add_language("!!!"),
            AddResolution::BadInput(_)
        ));
    }

    #[test]
    fn batch_preserves_request_order() {
        let s = service(3);
        s.build(BuildSpec::Qgram {
            q: 3,
            mode: QgramMode::Strict,
        });
        let reqs = vec![
            MatchRequest {
                threshold: Some(0.45),
                ..MatchRequest::new("Nehru", Language::English)
            },
            MatchRequest::new("Gandhi", Language::English),
        ];
        let outs = s.lookup_batch(&reqs);
        assert_eq!(outs.len(), 2);
        for out in outs {
            assert!(matches!(out, MatchOutcome::Matches { .. }));
        }
    }
}
