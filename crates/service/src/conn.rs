//! One nonblocking pipelined connection's state machine.
//!
//! A [`Conn`] owns the socket, the incremental line framer, and the
//! in-order response queue that makes pipelining safe: every parsed
//! request reserves a slot at the tail; dispatched requests fill their
//! slot when the worker's completion arrives (matched by sequence
//! number), inline responses (parse errors, `BYE`) fill immediately.
//! Only the contiguous completed prefix is ever serialized into the
//! outbound buffer, so responses hit the wire in request order no
//! matter how the workers interleave.

use crate::event_loop::Job;
use crate::proto::LineFramer;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::TcpStream;

/// Pause reading a connection whose outbound buffer exceeds this many
/// bytes (a client that pipelines but never reads cannot balloon us).
pub(crate) const WRITE_HIGH_WATER: usize = 256 * 1024;

/// One reserved response position.
enum Slot {
    /// Response ready; lines flush once the slot reaches the head.
    Done(Vec<String>),
    /// Waiting on the worker completion carrying this sequence number.
    Waiting(u64),
}

/// State for one client connection on the event loop.
pub(crate) struct Conn {
    /// The nonblocking socket.
    pub stream: TcpStream,
    /// Incremental line framing over whatever bytes have arrived.
    pub framer: LineFramer,
    /// Requests dispatched to workers and not yet completed.
    pub inflight: usize,
    /// A parsed job that found every worker queue full; reads stay
    /// paused until a completion frees a slot and the loop resubmits it.
    pub blocked_job: Option<Job>,
    /// `QUIT` (or a fatal protocol error) seen: stop reading, flush
    /// what's pending, then close.
    pub quitting: bool,
    /// Peer closed its write side; drain our responses, then close.
    pub peer_gone: bool,
    /// Largest in-flight window this connection ever reached.
    pub pipeline_peak: u64,
    /// A `REPL HELLO <lsn> [MMAP]` was parsed on a primary: stop
    /// reading, and once earlier pipelined responses have flushed
    /// ([`ready_for_handoff`](Self::ready_for_handoff)), the loop lifts
    /// the socket onto a dedicated replication sender thread. Carries
    /// `(lsn, advertised binary-snapshot support)`.
    pub handoff: Option<(u64, bool)>,
    /// Epoll interest bits currently registered for this socket.
    pub interest: u32,
    pending: VecDeque<Slot>,
    next_seq: u64,
    out: Vec<u8>,
    out_pos: usize,
}

impl Conn {
    pub fn new(stream: TcpStream, max_line: usize) -> Self {
        Conn {
            stream,
            framer: LineFramer::new(max_line),
            inflight: 0,
            blocked_job: None,
            quitting: false,
            peer_gone: false,
            pipeline_peak: 0,
            handoff: None,
            interest: crate::event_loop::EPOLLIN,
            pending: VecDeque::new(),
            next_seq: 0,
            out: Vec::new(),
            out_pos: 0,
        }
    }

    /// Next per-connection sequence number (labels a dispatched job and
    /// its completion).
    pub fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Reserve the next response slot with an already-known answer.
    pub fn enqueue_done(&mut self, lines: Vec<String>) {
        self.pending.push_back(Slot::Done(lines));
    }

    /// Reserve the next response slot for an in-flight worker job.
    pub fn enqueue_waiting(&mut self, seq: u64) {
        self.pending.push_back(Slot::Waiting(seq));
        self.inflight += 1;
    }

    /// Fill the slot waiting on `seq`. Returns whether a slot matched
    /// (a completion for a connection that already gave up is dropped).
    pub fn complete(&mut self, seq: u64, lines: Vec<String>) -> bool {
        for slot in &mut self.pending {
            if matches!(slot, Slot::Waiting(s) if *s == seq) {
                *slot = Slot::Done(lines);
                self.inflight -= 1;
                return true;
            }
        }
        false
    }

    /// Bytes serialized but not yet written to the socket.
    pub fn out_backlog(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Serialize every completed slot at the head of the queue, then
    /// write as much of the outbound buffer as the socket accepts.
    /// `WouldBlock` is success (epoll will say when to continue); a real
    /// I/O error propagates so the loop closes the connection.
    pub fn pump_out(&mut self) -> io::Result<()> {
        while let Some(Slot::Done(_)) = self.pending.front() {
            let Some(Slot::Done(lines)) = self.pending.pop_front() else {
                unreachable!("front checked above")
            };
            for line in lines {
                self.out.extend_from_slice(line.as_bytes());
                self.out.push(b'\n');
            }
        }
        while self.out_pos < self.out.len() {
            match (&self.stream).write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        Ok(())
    }

    /// Whether this connection is over: the client quit or hung up, and
    /// every pending response has been flushed.
    pub fn finished(&self) -> bool {
        (self.quitting || self.peer_gone) && self.pending.is_empty() && self.out_backlog() == 0
    }

    /// Whether a pending replication handoff can happen now: every
    /// response queued before the `REPL HELLO` has hit the wire.
    pub fn ready_for_handoff(&self) -> bool {
        self.pending.is_empty() && self.out_backlog() == 0
    }
}
