//! `lexequald`'s connection serving: the evented default and the
//! legacy thread-per-connection path.
//!
//! Both paths speak the same wire protocol through the same request
//! executor ([`execute_request`]) and honor the same
//! [`ShutdownSignal`]; they differ only in how connections map to
//! threads:
//!
//! * [`serve_evented`] (also re-exported as the [`serve`] default) —
//!   one epoll readiness loop plus a fixed verify worker pool; thread
//!   count is constant no matter how many clients connect, and each
//!   connection may pipeline many requests. See [`crate::event_loop`].
//! * [`serve_threaded`] — one OS thread per connection, requests
//!   handled strictly one at a time. Kept as the baseline the evented
//!   bench compares against, and for environments without epoll.

use crate::event_loop::{serve_evented, serve_evented_ctx, ShutdownSignal};
use crate::metrics::{ConnMetrics, ReplRole, ReplStats};
use crate::proto::{format_outcome, format_stats, parse_request, Request};
use crate::repl::{ReplicaState, Replicator};
use crate::service::{AddResolution, MatchService};
use crate::shard::BuildSpec;
use lexequal::QgramMode;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Per-serving-loop request context: which replication role the daemon
/// plays and where `SAVE` lands without a path. `Default` is a
/// standalone daemon — no WAL, no replica, mutations apply directly.
#[derive(Clone, Default)]
pub struct ReqCtx {
    /// Primary-side replication (set when running with `--wal`):
    /// mutations commit through the WAL before they apply.
    pub repl: Option<Arc<Replicator>>,
    /// Replica-side state (set under `--replica-of`): mutations are
    /// rejected with a redirect to the primary.
    pub replica: Option<Arc<ReplicaState>>,
    /// Default target for `SAVE` without a path.
    pub save_path: Option<PathBuf>,
}

impl ReqCtx {
    /// The `STATS` replication block for this context (`None` when the
    /// daemon is standalone).
    fn repl_stats(&self) -> Option<ReplStats> {
        if let Some(repl) = &self.repl {
            let head = repl.head();
            return Some(ReplStats {
                role: ReplRole::Primary,
                head_lsn: head,
                applied_lsn: head,
                lag: 0,
                connected: true,
                replicas: repl.replicas(),
                wal: Some(repl.wal_stats()),
                primary_addr: None,
                wal_bytes_live: repl.live_bytes(),
                compactions: repl.compactions(),
                checkpoint_lsn: repl.checkpoint_lsn(),
                reseeds: repl.reseeds(),
                divergences: repl.divergences(),
            });
        }
        self.replica.as_ref().map(|state| state.stats())
    }
}

/// How a serving loop maps connections to threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Legacy: one handler thread per connection.
    Threaded,
    /// Epoll readiness loop + fixed verify worker pool (the default).
    Evented,
}

impl ServeMode {
    /// Lowercase wire/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            ServeMode::Threaded => "threaded",
            ServeMode::Evented => "evented",
        }
    }
}

impl std::str::FromStr for ServeMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "threaded" => Ok(ServeMode::Threaded),
            "evented" => Ok(ServeMode::Evented),
            other => Err(format!("unknown serve mode {other:?}")),
        }
    }
}

/// Evented-path tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Verify-dispatch worker threads (the event loop itself is one more
    /// thread; the shard workers belong to the service).
    pub workers: usize,
    /// Per-connection in-flight request window; reads pause beyond it.
    pub max_pipeline: usize,
    /// Longest accepted request line in bytes; longer lines answer
    /// `ERR` and close the connection.
    pub max_line: usize,
    /// Total verify-dispatch queue capacity (split across workers); a
    /// full queue parks the job on its connection and pauses its reads.
    pub queue_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            max_pipeline: 128,
            max_line: 64 * 1024,
            queue_capacity: 4096,
        }
    }
}

/// Serve with the default evented path and default options until the
/// process dies (compat shim over [`serve_evented`] for callers that
/// don't need a shutdown handle).
pub fn serve(listener: TcpListener, service: Arc<MatchService>) -> std::io::Result<()> {
    serve_evented(
        listener,
        service,
        ServeOptions::default(),
        ShutdownSignal::new()?,
    )
}

/// Serve with the chosen mode until `shutdown` fires.
pub fn serve_with(
    mode: ServeMode,
    listener: TcpListener,
    service: Arc<MatchService>,
    opts: ServeOptions,
    shutdown: ShutdownSignal,
) -> std::io::Result<()> {
    serve_ctx(mode, listener, service, ReqCtx::default(), opts, shutdown)
}

/// [`serve_with`], carrying a replication/admin request context. Both
/// serve modes route every request through it; on a primary a
/// `REPL HELLO` hands the connection off to a stream sender thread.
pub fn serve_ctx(
    mode: ServeMode,
    listener: TcpListener,
    service: Arc<MatchService>,
    ctx: ReqCtx,
    opts: ServeOptions,
    shutdown: ShutdownSignal,
) -> std::io::Result<()> {
    match mode {
        ServeMode::Threaded => serve_threaded_ctx(listener, service, ctx, shutdown),
        ServeMode::Evented => serve_evented_ctx(listener, service, ctx, opts, shutdown),
    }
}

/// `TcpListener::bind` with `SO_REUSEADDR`, so a restarted daemon can
/// retake its port immediately even while old connections linger in
/// TIME_WAIT (std's bind does not set the option on Linux). Raw libc
/// shims in the spirit of [`crate::event_loop`]'s epoll bindings.
pub fn bind_reusable(addr: &str) -> std::io::Result<TcpListener> {
    use std::net::ToSocketAddrs;
    let mut last_err = None;
    for sa in addr.to_socket_addrs()? {
        match bind_reusable_one(&sa) {
            Ok(listener) => return Ok(listener),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("address {addr:?} resolved to nothing"),
        )
    }))
}

fn bind_reusable_one(sa: &std::net::SocketAddr) -> std::io::Result<TcpListener> {
    use std::os::fd::FromRawFd;

    mod sys {
        extern "C" {
            pub fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
            pub fn setsockopt(
                fd: i32,
                level: i32,
                name: i32,
                value: *const core::ffi::c_void,
                len: u32,
            ) -> i32;
            pub fn bind(fd: i32, addr: *const u8, len: u32) -> i32;
            pub fn listen(fd: i32, backlog: i32) -> i32;
            pub fn close(fd: i32) -> i32;
        }
    }
    const AF_INET: i32 = 2;
    const AF_INET6: i32 = 10;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    // struct sockaddr_in / sockaddr_in6, assembled by hand (the kernel
    // ABI is stable: family is native-endian, port/address are
    // network-order byte sequences).
    let (domain, sockaddr): (i32, Vec<u8>) = match sa {
        std::net::SocketAddr::V4(v4) => {
            let mut b = vec![0u8; 16];
            b[0..2].copy_from_slice(&(AF_INET as u16).to_ne_bytes());
            b[2..4].copy_from_slice(&v4.port().to_be_bytes());
            b[4..8].copy_from_slice(&v4.ip().octets());
            (AF_INET, b)
        }
        std::net::SocketAddr::V6(v6) => {
            let mut b = vec![0u8; 28];
            b[0..2].copy_from_slice(&(AF_INET6 as u16).to_ne_bytes());
            b[2..4].copy_from_slice(&v6.port().to_be_bytes());
            b[4..8].copy_from_slice(&v6.flowinfo().to_be_bytes());
            b[8..24].copy_from_slice(&v6.ip().octets());
            b[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
            (AF_INET6, b)
        }
    };
    let fd = unsafe { sys::socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0) };
    if fd < 0 {
        return Err(std::io::Error::last_os_error());
    }
    let fail = |fd: i32| {
        let e = std::io::Error::last_os_error();
        unsafe { sys::close(fd) };
        Err(e)
    };
    let one: i32 = 1;
    if unsafe {
        sys::setsockopt(
            fd,
            SOL_SOCKET,
            SO_REUSEADDR,
            (&one as *const i32).cast(),
            std::mem::size_of::<i32>() as u32,
        )
    } < 0
    {
        return fail(fd);
    }
    if unsafe { sys::bind(fd, sockaddr.as_ptr(), sockaddr.len() as u32) } < 0 {
        return fail(fd);
    }
    if unsafe { sys::listen(fd, 1024) } < 0 {
        return fail(fd);
    }
    Ok(unsafe { TcpListener::from_raw_fd(fd) })
}

/// How often the threaded path's blocking waits surface to check the
/// shutdown flag (accept loop sleep and handler read timeout).
const THREADED_POLL: Duration = Duration::from_millis(100);

/// Serve one thread per connection until `shutdown` fires; all handler
/// threads are joined before returning, so tests leak nothing.
pub fn serve_threaded(
    listener: TcpListener,
    service: Arc<MatchService>,
    shutdown: ShutdownSignal,
) -> std::io::Result<()> {
    serve_threaded_ctx(listener, service, ReqCtx::default(), shutdown)
}

/// [`serve_threaded`] with a request context.
pub fn serve_threaded_ctx(
    listener: TcpListener,
    service: Arc<MatchService>,
    ctx: ReqCtx,
    shutdown: ShutdownSignal,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let metrics = Arc::new(ConnMetrics::default());
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shutdown.is_triggered() {
        match listener.accept() {
            Ok((stream, _)) => {
                let service = Arc::clone(&service);
                let metrics = Arc::clone(&metrics);
                let ctx = ctx.clone();
                let shutdown = shutdown.clone();
                metrics.conn_opened();
                let handle = std::thread::Builder::new()
                    .name("lexequald-conn".to_owned())
                    .spawn(move || {
                        // A dropped connection is the client's business.
                        let _ = handle_connection_ctx(stream, &service, &ctx, &metrics, &shutdown);
                        metrics.conn_closed();
                    })
                    .expect("spawn connection handler");
                handles.push(handle);
                handles.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(THREADED_POLL);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    for h in handles {
        let _ = h.join();
    }
    Ok(())
}

/// Drive one connection to completion on its own thread. Returns when
/// the client quits, hangs up, the socket errors, or `shutdown` fires.
pub fn handle_connection(
    stream: TcpStream,
    service: &MatchService,
    metrics: &ConnMetrics,
    shutdown: &ShutdownSignal,
) -> std::io::Result<()> {
    handle_connection_ctx(stream, service, &ReqCtx::default(), metrics, shutdown)
}

/// [`handle_connection`] with a request context. On a primary, a
/// `REPL HELLO` converts the connection into a replication stream: the
/// handler thread itself becomes the sender.
pub fn handle_connection_ctx(
    stream: TcpStream,
    service: &MatchService,
    ctx: &ReqCtx,
    metrics: &ConnMetrics,
    shutdown: &ShutdownSignal,
) -> std::io::Result<()> {
    // The read timeout turns a blocked handler into a shutdown poll; a
    // partial line survives in `line` across timeouts.
    stream.set_read_timeout(Some(THREADED_POLL))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        if shutdown.is_triggered() {
            return Ok(());
        }
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()),
            Ok(_) => {
                metrics.observe_pipeline(1);
                if let (Ok(Some(Request::ReplHello { lsn, mmap })), Some(repl)) =
                    (parse_request(&line), &ctx.repl)
                {
                    writer.flush()?;
                    drop(reader);
                    let stream = match writer.into_inner() {
                        Ok(s) => s,
                        Err(e) => return Err(e.into_error()),
                    };
                    stream.set_read_timeout(None)?;
                    return crate::repl::serve_replica(stream, lsn, mmap, service, repl);
                }
                let mut quit = false;
                for response in respond_with_ctx(&line, service, ctx, Some(metrics), &mut quit) {
                    writer.write_all(response.as_bytes())?;
                    writer.write_all(b"\n")?;
                }
                writer.flush()?;
                if quit {
                    return Ok(());
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Compute the response lines for one request line (no conn gauges).
pub fn respond(line: &str, service: &MatchService, quit: &mut bool) -> Vec<String> {
    respond_with(line, service, None, quit)
}

/// Compute the response lines for one request line, surfacing `conn`
/// gauges in `STATS` when a serving loop provides them.
pub fn respond_with(
    line: &str,
    service: &MatchService,
    conn: Option<&ConnMetrics>,
    quit: &mut bool,
) -> Vec<String> {
    respond_with_ctx(line, service, &ReqCtx::default(), conn, quit)
}

/// [`respond_with`], routing through a request context.
pub fn respond_with_ctx(
    line: &str,
    service: &MatchService,
    ctx: &ReqCtx,
    conn: Option<&ConnMetrics>,
    quit: &mut bool,
) -> Vec<String> {
    let request = match parse_request(line) {
        Ok(Some(r)) => r,
        Ok(None) => return Vec::new(),
        Err(msg) => return vec![format!("ERR {msg}")],
    };
    if matches!(request, Request::Quit) {
        *quit = true;
    }
    execute_request(service, ctx, &request, conn)
}

/// The read-only rejection a replica answers every mutation with.
fn replica_read_only(state: &ReplicaState) -> String {
    format!(
        "read-only replica: writes go to the primary at {}",
        state.primary
    )
}

/// Route one build through the context: reject on a replica, commit
/// through the WAL on a primary, apply directly when standalone.
fn do_build(service: &MatchService, ctx: &ReqCtx, spec: BuildSpec) -> Result<(), String> {
    if let Some(state) = &ctx.replica {
        return Err(replica_read_only(state));
    }
    if let Some(repl) = &ctx.repl {
        repl.commit_build(service, spec)
            .map_err(|e| e.to_string())?;
    } else {
        service.build(spec);
    }
    Ok(())
}

/// Execute one parsed request against the service. Shared by the
/// threaded handlers and the evented path's verify workers; `QUIT`
/// answers `BYE` here, connection teardown is the caller's job.
/// Mutations route through `ctx`: WAL-committed on a primary, rejected
/// with a redirect on a replica.
pub(crate) fn execute_request(
    service: &MatchService,
    ctx: &ReqCtx,
    request: &Request,
    conn: Option<&ConnMetrics>,
) -> Vec<String> {
    match request {
        Request::Add { language, text } => {
            if let Some(state) = &ctx.replica {
                return vec![format!("ERR {}", replica_read_only(state))];
            }
            if let Some(repl) = &ctx.repl {
                return match repl.commit_add(service, text, *language) {
                    Ok((_lsn, id)) => vec![format!("OK {id}")],
                    Err(e) => vec![format!("ERR {e}")],
                };
            }
            match service.add(text, *language) {
                Ok(id) => vec![format!("OK {id}")],
                Err(e) => vec![format!("ERR {e:?}")],
            }
        }
        Request::BuildQgram { q, mode } => {
            match do_build(service, ctx, BuildSpec::Qgram { q: *q, mode: *mode }) {
                Ok(()) => vec!["OK built=qgram".to_owned()],
                Err(e) => vec![format!("ERR {e}")],
            }
        }
        Request::BuildPhonidx => match do_build(service, ctx, BuildSpec::PhoneticIndex) {
            Ok(()) => vec!["OK built=phonidx".to_owned()],
            Err(e) => vec![format!("ERR {e}")],
        },
        Request::BuildBktree => match do_build(service, ctx, BuildSpec::BkTree) {
            Ok(()) => vec!["OK built=bktree".to_owned()],
            Err(e) => vec![format!("ERR {e}")],
        },
        Request::BuildAll => {
            // The wire command is one request but logs as three ops, in
            // the same order `build_all` applies them.
            let specs = [
                BuildSpec::Qgram {
                    q: 3,
                    mode: QgramMode::Strict,
                },
                BuildSpec::PhoneticIndex,
                BuildSpec::BkTree,
            ];
            for spec in specs {
                if let Err(e) = do_build(service, ctx, spec) {
                    return vec![format!("ERR {e}")];
                }
            }
            vec!["OK built=all".to_owned()]
        }
        Request::AddAuto { text } => {
            // Untagged ADD: resolve the language *here*, once, so the WAL
            // logs a concrete tag and replicas converge byte-identically
            // without knowing the routing table.
            if let Some(state) = &ctx.replica {
                return vec![format!("ERR {}", replica_read_only(state))];
            }
            let language = match service.resolve_add_language(text) {
                AddResolution::Resolved(l) => l,
                AddResolution::NoResource(l) => return vec![format!("NORESOURCE {l}")],
                AddResolution::BadInput(msg) => return vec![format!("ERR bad input: {msg}")],
            };
            if let Some(repl) = &ctx.repl {
                return match repl.commit_add(service, text, language) {
                    Ok((_lsn, id)) => vec![format!("OK {id} lang={language}")],
                    Err(e) => vec![format!("ERR {e}")],
                };
            }
            match service.add(text, language) {
                Ok(id) => vec![format!("OK {id} lang={language}")],
                Err(e) => vec![format!("ERR {e:?}")],
            }
        }
        Request::Match(req) => vec![format_outcome(&service.lookup(req))],
        Request::MatchAuto(req) => vec![format_outcome(&service.lookup_auto(req))],
        Request::Batch(reqs) => service
            .lookup_batch(reqs)
            .iter()
            .map(format_outcome)
            .collect(),
        Request::Stats => {
            let mut snapshot = service.stats();
            snapshot.conn = conn.map(ConnMetrics::snapshot);
            snapshot.repl = ctx.repl_stats();
            vec![format_stats(&snapshot)]
        }
        Request::Save { path, json } => execute_save(service, ctx, path.as_deref(), *json),
        Request::Compact => vec![match (&ctx.repl, &ctx.replica) {
            (Some(repl), _) => match repl.compact(service) {
                Ok(report) => format!(
                    "OK compacted checkpoint_lsn={} horizon={} dropped={} wal_bytes_live={}",
                    report.checkpoint_lsn,
                    report.horizon,
                    report.dropped_records,
                    report.wal_bytes_live,
                ),
                Err(e) => format!("ERR COMPACT: {e}"),
            },
            (None, Some(state)) => format!(
                "ERR this daemon is a replica (no wal); COMPACT runs on the primary at {}",
                state.primary
            ),
            (None, None) => {
                "ERR COMPACT requires a write-ahead log (start with --wal PATH)".to_owned()
            }
        }],
        Request::ReplHello { .. } => vec![match (&ctx.repl, &ctx.replica) {
            (None, None) => {
                "ERR replication not enabled (start the primary with --wal PATH)".to_owned()
            }
            (_, Some(_)) => {
                "ERR this daemon is a replica; open the stream against the primary".to_owned()
            }
            // Reached only through entry points that cannot hand the
            // socket off (e.g. `respond` embedders); the serve loops
            // intercept the handshake before it gets here.
            (Some(_), None) => "ERR replication stream unavailable on this connection".to_owned(),
        }],
        Request::Quit => vec!["BYE".to_owned()],
    }
}

/// `SAVE [JSON] [path]`: snapshot the running store atomically, stamped
/// with the WAL head (primary), the applied LSN (replica), or 0. The
/// default format is the binary mmap image; `SAVE JSON` writes the
/// debug/export document.
fn execute_save(
    service: &MatchService,
    ctx: &ReqCtx,
    path: Option<&str>,
    json: bool,
) -> Vec<String> {
    let target = match path.map(PathBuf::from).or_else(|| ctx.save_path.clone()) {
        Some(t) => t,
        None => {
            return vec![
                "ERR SAVE: no path given and no default configured (use SAVE <path> \
                 or start with --save-snapshot PATH)"
                    .to_owned(),
            ]
        }
    };
    let format = if json {
        crate::service::SnapshotFormat::Json
    } else {
        crate::service::SnapshotFormat::Mmap
    };
    let saved = if let Some(repl) = &ctx.repl {
        // Under the commit lock: the snapshot is exact at its LSN.
        repl.save_snapshot_atomic_format(service, &target, format)
    } else {
        // On a replica the apply loop may advance while capturing; the
        // stamped LSN is a lower bound (see DESIGN §5e).
        let lsn = ctx.replica.as_ref().map_or(0, |s| s.applied());
        service
            .save_snapshot_with_lsn_format(&target, lsn, format)
            .map(|()| lsn)
    };
    match saved {
        Ok(lsn) => vec![format!(
            "OK saved={} names={} lsn={lsn}",
            target.display(),
            service.len()
        )],
        Err(e) => vec![format!("ERR SAVE: {e}")],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use lexequal::Language;

    fn service() -> MatchService {
        let s = MatchService::new(ServiceConfig {
            shards: 2,
            ..ServiceConfig::default()
        });
        s.extend(
            [
                ("Nehru", Language::English),
                ("नेहरु", Language::Hindi),
                ("Gandhi", Language::English),
            ]
            .map(|(t, l)| (t.to_owned(), l)),
        )
        .unwrap();
        s
    }

    #[test]
    fn respond_covers_the_happy_paths() {
        let s = service();
        let mut quit = false;
        assert_eq!(respond("BUILD ALL", &s, &mut quit), ["OK built=all"]);
        // Strict q-grams have no false dismissals, so the Hindi spelling
        // must surface (phonidx may legitimately drop it — paper §5).
        let lines = respond("MATCH en qgram 0.45 Nehru", &s, &mut quit);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("ids=0,1"), "{}", lines[0]);
        let lines = respond("BATCH en - 0.45 Nehru|Gandhi", &s, &mut quit);
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.starts_with("OK n=")));
        let lines = respond("ADD en Bose", &s, &mut quit);
        assert_eq!(lines, ["OK 3"]);
        let stats = respond("STATS", &s, &mut quit);
        assert!(stats[0].contains("names=4"), "{}", stats[0]);
        assert!(!quit);
        assert_eq!(respond("QUIT", &s, &mut quit), ["BYE"]);
        assert!(quit);
    }

    #[test]
    fn respond_reports_errors_inline() {
        let s = service();
        let mut quit = false;
        assert!(respond("FROB", &s, &mut quit)[0].starts_with("ERR "));
        assert!(respond("", &s, &mut quit).is_empty());
        let lines = respond("MATCH en bktree - Nehru", &s, &mut quit);
        assert_eq!(lines, ["NOTBUILT bktree"]);
    }

    #[test]
    fn stats_surface_conn_gauges_when_provided() {
        let s = service();
        let metrics = ConnMetrics::default();
        metrics.conn_opened();
        metrics.observe_pipeline(3);
        let mut quit = false;
        let line = &respond_with("STATS", &s, Some(&metrics), &mut quit)[0];
        assert!(line.contains("conns_current=1"), "{line}");
        assert!(line.contains("conns_peak=1"), "{line}");
        assert!(line.contains("queue_depth=0"), "{line}");
        assert!(line.contains("pipeline_max=3"), "{line}");
        // Without gauges the fields stay off the wire.
        let bare = &respond("STATS", &s, &mut quit)[0];
        assert!(!bare.contains("conns_current"), "{bare}");
    }

    #[test]
    fn both_paths_serve_a_real_socket_end_to_end() {
        use std::io::{BufRead, BufReader, Write};
        for mode in [ServeMode::Threaded, ServeMode::Evented] {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let svc = Arc::new(service());
            let shutdown = ShutdownSignal::new().unwrap();
            let sd = shutdown.clone();
            let server = std::thread::spawn(move || {
                serve_with(mode, listener, svc, ServeOptions::default(), sd)
            });

            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut send = |cmd: &str| {
                let mut s = stream.try_clone().unwrap();
                writeln!(s, "{cmd}").unwrap();
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                line.trim_end().to_owned()
            };
            assert_eq!(send("BUILD PHONIDX"), "OK built=phonidx", "{mode:?}");
            let resp = send("MATCH hi phonidx 0.45 नेहरु");
            assert!(resp.starts_with("OK n="), "{mode:?}: {resp}");
            assert_eq!(send("QUIT"), "BYE", "{mode:?}");

            shutdown.trigger();
            server.join().unwrap().unwrap();
        }
    }
}
