//! `lexequald`'s connection serving: the evented default and the
//! legacy thread-per-connection path.
//!
//! Both paths speak the same wire protocol through the same request
//! executor ([`execute_request`]) and honor the same
//! [`ShutdownSignal`]; they differ only in how connections map to
//! threads:
//!
//! * [`serve_evented`] (also re-exported as the [`serve`] default) —
//!   one epoll readiness loop plus a fixed verify worker pool; thread
//!   count is constant no matter how many clients connect, and each
//!   connection may pipeline many requests. See [`crate::event_loop`].
//! * [`serve_threaded`] — one OS thread per connection, requests
//!   handled strictly one at a time. Kept as the baseline the evented
//!   bench compares against, and for environments without epoll.

use crate::event_loop::{serve_evented, ShutdownSignal};
use crate::metrics::ConnMetrics;
use crate::proto::{format_outcome, format_stats, parse_request, Request};
use crate::service::MatchService;
use crate::shard::BuildSpec;
use lexequal::QgramMode;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// How a serving loop maps connections to threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Legacy: one handler thread per connection.
    Threaded,
    /// Epoll readiness loop + fixed verify worker pool (the default).
    Evented,
}

impl ServeMode {
    /// Lowercase wire/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            ServeMode::Threaded => "threaded",
            ServeMode::Evented => "evented",
        }
    }
}

impl std::str::FromStr for ServeMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "threaded" => Ok(ServeMode::Threaded),
            "evented" => Ok(ServeMode::Evented),
            other => Err(format!("unknown serve mode {other:?}")),
        }
    }
}

/// Evented-path tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Verify-dispatch worker threads (the event loop itself is one more
    /// thread; the shard workers belong to the service).
    pub workers: usize,
    /// Per-connection in-flight request window; reads pause beyond it.
    pub max_pipeline: usize,
    /// Longest accepted request line in bytes; longer lines answer
    /// `ERR` and close the connection.
    pub max_line: usize,
    /// Total verify-dispatch queue capacity (split across workers); a
    /// full queue parks the job on its connection and pauses its reads.
    pub queue_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            max_pipeline: 128,
            max_line: 64 * 1024,
            queue_capacity: 4096,
        }
    }
}

/// Serve with the default evented path and default options until the
/// process dies (compat shim over [`serve_evented`] for callers that
/// don't need a shutdown handle).
pub fn serve(listener: TcpListener, service: Arc<MatchService>) -> std::io::Result<()> {
    serve_evented(
        listener,
        service,
        ServeOptions::default(),
        ShutdownSignal::new()?,
    )
}

/// Serve with the chosen mode until `shutdown` fires.
pub fn serve_with(
    mode: ServeMode,
    listener: TcpListener,
    service: Arc<MatchService>,
    opts: ServeOptions,
    shutdown: ShutdownSignal,
) -> std::io::Result<()> {
    match mode {
        ServeMode::Threaded => serve_threaded(listener, service, shutdown),
        ServeMode::Evented => serve_evented(listener, service, opts, shutdown),
    }
}

/// How often the threaded path's blocking waits surface to check the
/// shutdown flag (accept loop sleep and handler read timeout).
const THREADED_POLL: Duration = Duration::from_millis(100);

/// Serve one thread per connection until `shutdown` fires; all handler
/// threads are joined before returning, so tests leak nothing.
pub fn serve_threaded(
    listener: TcpListener,
    service: Arc<MatchService>,
    shutdown: ShutdownSignal,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let metrics = Arc::new(ConnMetrics::default());
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shutdown.is_triggered() {
        match listener.accept() {
            Ok((stream, _)) => {
                let service = Arc::clone(&service);
                let metrics = Arc::clone(&metrics);
                let shutdown = shutdown.clone();
                metrics.conn_opened();
                let handle = std::thread::Builder::new()
                    .name("lexequald-conn".to_owned())
                    .spawn(move || {
                        // A dropped connection is the client's business.
                        let _ = handle_connection(stream, &service, &metrics, &shutdown);
                        metrics.conn_closed();
                    })
                    .expect("spawn connection handler");
                handles.push(handle);
                handles.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(THREADED_POLL);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    for h in handles {
        let _ = h.join();
    }
    Ok(())
}

/// Drive one connection to completion on its own thread. Returns when
/// the client quits, hangs up, the socket errors, or `shutdown` fires.
pub fn handle_connection(
    stream: TcpStream,
    service: &MatchService,
    metrics: &ConnMetrics,
    shutdown: &ShutdownSignal,
) -> std::io::Result<()> {
    // The read timeout turns a blocked handler into a shutdown poll; a
    // partial line survives in `line` across timeouts.
    stream.set_read_timeout(Some(THREADED_POLL))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        if shutdown.is_triggered() {
            return Ok(());
        }
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()),
            Ok(_) => {
                metrics.observe_pipeline(1);
                let mut quit = false;
                for response in respond_with(&line, service, Some(metrics), &mut quit) {
                    writer.write_all(response.as_bytes())?;
                    writer.write_all(b"\n")?;
                }
                writer.flush()?;
                if quit {
                    return Ok(());
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Compute the response lines for one request line (no conn gauges).
pub fn respond(line: &str, service: &MatchService, quit: &mut bool) -> Vec<String> {
    respond_with(line, service, None, quit)
}

/// Compute the response lines for one request line, surfacing `conn`
/// gauges in `STATS` when a serving loop provides them.
pub fn respond_with(
    line: &str,
    service: &MatchService,
    conn: Option<&ConnMetrics>,
    quit: &mut bool,
) -> Vec<String> {
    let request = match parse_request(line) {
        Ok(Some(r)) => r,
        Ok(None) => return Vec::new(),
        Err(msg) => return vec![format!("ERR {msg}")],
    };
    if matches!(request, Request::Quit) {
        *quit = true;
    }
    execute_request(service, &request, conn)
}

/// Execute one parsed request against the service. Shared by the
/// threaded handlers and the evented path's verify workers; `QUIT`
/// answers `BYE` here, connection teardown is the caller's job.
pub(crate) fn execute_request(
    service: &MatchService,
    request: &Request,
    conn: Option<&ConnMetrics>,
) -> Vec<String> {
    match request {
        Request::Add { language, text } => match service.add(text, *language) {
            Ok(id) => vec![format!("OK {id}")],
            Err(e) => vec![format!("ERR {e:?}")],
        },
        Request::BuildQgram { q, mode } => {
            service.build(BuildSpec::Qgram { q: *q, mode: *mode });
            vec!["OK built=qgram".to_owned()]
        }
        Request::BuildPhonidx => {
            service.build(BuildSpec::PhoneticIndex);
            vec!["OK built=phonidx".to_owned()]
        }
        Request::BuildBktree => {
            service.build(BuildSpec::BkTree);
            vec!["OK built=bktree".to_owned()]
        }
        Request::BuildAll => {
            service.build_all(3, QgramMode::Strict);
            vec!["OK built=all".to_owned()]
        }
        Request::Match(req) => vec![format_outcome(&service.lookup(req))],
        Request::Batch(reqs) => service
            .lookup_batch(reqs)
            .iter()
            .map(format_outcome)
            .collect(),
        Request::Stats => {
            let mut snapshot = service.stats();
            snapshot.conn = conn.map(ConnMetrics::snapshot);
            vec![format_stats(&snapshot)]
        }
        Request::Quit => vec!["BYE".to_owned()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use lexequal::Language;

    fn service() -> MatchService {
        let s = MatchService::new(ServiceConfig {
            shards: 2,
            ..ServiceConfig::default()
        });
        s.extend(
            [
                ("Nehru", Language::English),
                ("नेहरु", Language::Hindi),
                ("Gandhi", Language::English),
            ]
            .map(|(t, l)| (t.to_owned(), l)),
        )
        .unwrap();
        s
    }

    #[test]
    fn respond_covers_the_happy_paths() {
        let s = service();
        let mut quit = false;
        assert_eq!(respond("BUILD ALL", &s, &mut quit), ["OK built=all"]);
        // Strict q-grams have no false dismissals, so the Hindi spelling
        // must surface (phonidx may legitimately drop it — paper §5).
        let lines = respond("MATCH en qgram 0.45 Nehru", &s, &mut quit);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("ids=0,1"), "{}", lines[0]);
        let lines = respond("BATCH en - 0.45 Nehru|Gandhi", &s, &mut quit);
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.starts_with("OK n=")));
        let lines = respond("ADD en Bose", &s, &mut quit);
        assert_eq!(lines, ["OK 3"]);
        let stats = respond("STATS", &s, &mut quit);
        assert!(stats[0].contains("names=4"), "{}", stats[0]);
        assert!(!quit);
        assert_eq!(respond("QUIT", &s, &mut quit), ["BYE"]);
        assert!(quit);
    }

    #[test]
    fn respond_reports_errors_inline() {
        let s = service();
        let mut quit = false;
        assert!(respond("FROB", &s, &mut quit)[0].starts_with("ERR "));
        assert!(respond("", &s, &mut quit).is_empty());
        let lines = respond("MATCH en bktree - Nehru", &s, &mut quit);
        assert_eq!(lines, ["NOTBUILT bktree"]);
    }

    #[test]
    fn stats_surface_conn_gauges_when_provided() {
        let s = service();
        let metrics = ConnMetrics::default();
        metrics.conn_opened();
        metrics.observe_pipeline(3);
        let mut quit = false;
        let line = &respond_with("STATS", &s, Some(&metrics), &mut quit)[0];
        assert!(line.contains("conns_current=1"), "{line}");
        assert!(line.contains("conns_peak=1"), "{line}");
        assert!(line.contains("queue_depth=0"), "{line}");
        assert!(line.contains("pipeline_max=3"), "{line}");
        // Without gauges the fields stay off the wire.
        let bare = &respond("STATS", &s, &mut quit)[0];
        assert!(!bare.contains("conns_current"), "{bare}");
    }

    #[test]
    fn both_paths_serve_a_real_socket_end_to_end() {
        use std::io::{BufRead, BufReader, Write};
        for mode in [ServeMode::Threaded, ServeMode::Evented] {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let svc = Arc::new(service());
            let shutdown = ShutdownSignal::new().unwrap();
            let sd = shutdown.clone();
            let server = std::thread::spawn(move || {
                serve_with(mode, listener, svc, ServeOptions::default(), sd)
            });

            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut send = |cmd: &str| {
                let mut s = stream.try_clone().unwrap();
                writeln!(s, "{cmd}").unwrap();
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                line.trim_end().to_owned()
            };
            assert_eq!(send("BUILD PHONIDX"), "OK built=phonidx", "{mode:?}");
            let resp = send("MATCH hi phonidx 0.45 नेहरु");
            assert!(resp.starts_with("OK n="), "{mode:?}: {resp}");
            assert_eq!(send("QUIT"), "BYE", "{mode:?}");

            shutdown.trigger();
            server.join().unwrap().unwrap();
        }
    }
}
