//! `lexequald`'s connection loop: thread-per-connection line serving.
//!
//! [`serve`] accepts on a caller-supplied [`TcpListener`] (the caller
//! binds, so tests can bind port 0 and learn the ephemeral port before
//! serving starts) and spawns one handler thread per connection. Each
//! handler reads request lines, dispatches against the shared
//! [`MatchService`], and writes exactly the response lines the protocol
//! promises. Parse errors answer `ERR …` and keep the connection open;
//! `QUIT`, EOF, or an I/O error end it.

use crate::proto::{format_outcome, format_stats, parse_request, Request};
use crate::service::MatchService;
use crate::shard::BuildSpec;
use lexequal::QgramMode;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

/// Serve connections forever (until the listener errors out).
///
/// Never returns under normal operation; run it on a dedicated thread.
pub fn serve(listener: TcpListener, service: Arc<MatchService>) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        let service = Arc::clone(&service);
        std::thread::Builder::new()
            .name("lexequald-conn".to_owned())
            .spawn(move || {
                // A dropped connection is the client's business, not ours.
                let _ = handle_connection(stream, &service);
            })
            .expect("spawn connection handler");
    }
    Ok(())
}

/// Drive one connection to completion. Returns when the client quits,
/// hangs up, or the socket errors.
pub fn handle_connection(stream: TcpStream, service: &MatchService) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        let mut quit = false;
        for response in respond(&line, service, &mut quit) {
            writer.write_all(response.as_bytes())?;
            writer.write_all(b"\n")?;
        }
        writer.flush()?;
        if quit {
            break;
        }
    }
    Ok(())
}

/// Compute the response lines for one request line.
fn respond(line: &str, service: &MatchService, quit: &mut bool) -> Vec<String> {
    let request = match parse_request(line) {
        Ok(Some(r)) => r,
        Ok(None) => return Vec::new(),
        Err(msg) => return vec![format!("ERR {msg}")],
    };
    match request {
        Request::Add { language, text } => match service.add(&text, language) {
            Ok(id) => vec![format!("OK {id}")],
            Err(e) => vec![format!("ERR {e:?}")],
        },
        Request::BuildQgram { q, mode } => {
            service.build(BuildSpec::Qgram { q, mode });
            vec!["OK built=qgram".to_owned()]
        }
        Request::BuildPhonidx => {
            service.build(BuildSpec::PhoneticIndex);
            vec!["OK built=phonidx".to_owned()]
        }
        Request::BuildBktree => {
            service.build(BuildSpec::BkTree);
            vec!["OK built=bktree".to_owned()]
        }
        Request::BuildAll => {
            service.build_all(3, QgramMode::Strict);
            vec!["OK built=all".to_owned()]
        }
        Request::Match(req) => vec![format_outcome(&service.lookup(&req))],
        Request::Batch(reqs) => service
            .lookup_batch(&reqs)
            .iter()
            .map(format_outcome)
            .collect(),
        Request::Stats => vec![format_stats(&service.stats())],
        Request::Quit => {
            *quit = true;
            vec!["BYE".to_owned()]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use lexequal::Language;

    fn service() -> MatchService {
        let s = MatchService::new(ServiceConfig {
            shards: 2,
            ..ServiceConfig::default()
        });
        s.extend(
            [
                ("Nehru", Language::English),
                ("नेहरु", Language::Hindi),
                ("Gandhi", Language::English),
            ]
            .map(|(t, l)| (t.to_owned(), l)),
        )
        .unwrap();
        s
    }

    #[test]
    fn respond_covers_the_happy_paths() {
        let s = service();
        let mut quit = false;
        assert_eq!(respond("BUILD ALL", &s, &mut quit), ["OK built=all"]);
        // Strict q-grams have no false dismissals, so the Hindi spelling
        // must surface (phonidx may legitimately drop it — paper §5).
        let lines = respond("MATCH en qgram 0.45 Nehru", &s, &mut quit);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("ids=0,1"), "{}", lines[0]);
        let lines = respond("BATCH en - 0.45 Nehru|Gandhi", &s, &mut quit);
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.starts_with("OK n=")));
        let lines = respond("ADD en Bose", &s, &mut quit);
        assert_eq!(lines, ["OK 3"]);
        let stats = respond("STATS", &s, &mut quit);
        assert!(stats[0].contains("names=4"), "{}", stats[0]);
        assert!(!quit);
        assert_eq!(respond("QUIT", &s, &mut quit), ["BYE"]);
        assert!(quit);
    }

    #[test]
    fn respond_reports_errors_inline() {
        let s = service();
        let mut quit = false;
        assert!(respond("FROB", &s, &mut quit)[0].starts_with("ERR "));
        assert!(respond("", &s, &mut quit).is_empty());
        let lines = respond("MATCH en bktree - Nehru", &s, &mut quit);
        assert_eq!(lines, ["NOTBUILT bktree"]);
    }

    #[test]
    fn serves_a_real_socket_end_to_end() {
        use std::io::{BufRead, BufReader, Write};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let svc = Arc::new(service());
        std::thread::spawn(move || serve(listener, svc));

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut send = |cmd: &str| {
            let mut s = stream.try_clone().unwrap();
            writeln!(s, "{cmd}").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line.trim_end().to_owned()
        };
        assert_eq!(send("BUILD PHONIDX"), "OK built=phonidx");
        let resp = send("MATCH hi phonidx 0.45 नेहरु");
        assert!(resp.starts_with("OK n="), "{resp}");
        assert_eq!(send("QUIT"), "BYE");
    }
}
