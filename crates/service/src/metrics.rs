//! Built-in observability: atomic request/match counters and a
//! log2-bucket latency histogram per access path.
//!
//! Everything here is lock-free (relaxed atomics): recording a sample on
//! the request path costs one increment, and a `STATS` snapshot reads
//! whatever is current without stopping traffic. Buckets are powers of
//! two in nanoseconds — bucket `i` counts samples with
//! `2^i ≤ ns < 2^(i+1)` — which spans 1 ns to ~18 s in 35 buckets and
//! needs no configuration.

use lexequal::{BatchCounters, ScreenCounters, SearchMethod};
use lexequal_g2p::Script;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 buckets (covers up to `2^35` ns ≈ 34 s).
pub const HISTOGRAM_BUCKETS: usize = 36;

/// A lock-free log2-bucketed latency histogram.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Record one sample.
    pub fn record(&self, elapsed: Duration) {
        self.record_count((elapsed.as_nanos() as u64).max(1));
    }

    /// Record an arbitrary non-negative magnitude (the buckets are just
    /// powers of two — nothing about them is nanosecond-specific, so the
    /// same histogram tracks e.g. pipeline depths).
    pub fn record_count(&self, value: u64) {
        let v = value.max(1);
        let bucket = (63 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Current bucket counts (`counts[i]` is samples in `[2^i, 2^(i+1))` ns).
    pub fn snapshot(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.snapshot().iter().sum()
    }

    /// Upper-bound estimate of the `q`-quantile (0.0–1.0) in
    /// nanoseconds — the upper edge of the bucket holding that rank.
    pub fn quantile_upper_ns(&self, q: f64) -> Option<u64> {
        let counts = self.snapshot();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(1u64 << (i + 1).min(63));
            }
        }
        None
    }
}

/// Stable array index for a [`SearchMethod`] (used by the per-path
/// histogram array and the wire `STATS` rendering).
pub fn method_index(method: SearchMethod) -> usize {
    match method {
        SearchMethod::Scan => 0,
        SearchMethod::Qgram => 1,
        SearchMethod::PhoneticIndex => 2,
        SearchMethod::BkTree => 3,
    }
}

/// Short lowercase wire name of a method.
pub fn method_name(method: SearchMethod) -> &'static str {
    match method {
        SearchMethod::Scan => "scan",
        SearchMethod::Qgram => "qgram",
        SearchMethod::PhoneticIndex => "phonidx",
        SearchMethod::BkTree => "bktree",
    }
}

/// All four access paths in `method_index` order.
pub const ALL_METHODS: [SearchMethod; 4] = [
    SearchMethod::Scan,
    SearchMethod::Qgram,
    SearchMethod::PhoneticIndex,
    SearchMethod::BkTree,
];

/// Counters for the whole service plus one histogram per access path.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Lookup requests received (single lookups; a batch of k counts k).
    pub requests: AtomicU64,
    /// Total matching ids returned.
    pub matches_returned: AtomicU64,
    /// Lookups answered `NoResource`.
    pub no_resource: AtomicU64,
    /// Lookups answered `NotBuilt`.
    pub not_built: AtomicU64,
    /// Lookups whose text failed to transform.
    pub bad_input: AtomicU64,
    /// Per-access-path search counts and latencies (`method_index` order);
    /// latency covers the sharded fan-out + merge, not the transform.
    pub per_method: [PathMetrics; 4],
    /// Untagged-request path (`ADD -` / `MATCH -`): script detections,
    /// fan-out widths, dedupe hits.
    pub untagged: UntaggedMetrics,
}

/// Counters for the untagged-request subsystem (script profiling +
/// routing + fan-out merge). Same lock-free relaxed-atomic discipline as
/// the rest of this module: one increment per event on the request path.
#[derive(Debug, Default)]
pub struct UntaggedMetrics {
    /// Untagged requests received (`ADD -` and `MATCH -`).
    pub requests: AtomicU64,
    /// Primary-script detections, indexed by [`Script::index`].
    pub per_script: [AtomicU64; Script::COUNT],
    /// Sum of fan-out widths (converters actually queried per request);
    /// `sum / requests` is the mean width.
    pub fanout_width_sum: AtomicU64,
    /// Widest fan-out ever issued.
    pub fanout_width_max: AtomicU64,
    /// Untagged requests that resolved to `NORESOURCE` (Hangul/Thai, or
    /// a single-script language absent from the registry).
    pub no_resource: AtomicU64,
    /// Fan-out candidates dropped because another language produced the
    /// identical phoneme string (merge dedupe before the shards).
    pub dedup_hits: AtomicU64,
}

impl UntaggedMetrics {
    /// Record the routing decision for one untagged request: the primary
    /// script (if any letters) and, once candidates are known, the
    /// fan-out width via [`record_fanout`](Self::record_fanout).
    pub fn record_request(&self, primary: Option<Script>) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if let Some(s) = primary {
            self.per_script[s.index()].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record the number of unique phoneme queries issued (`width`) and
    /// how many candidates deduped away before the shards (`deduped`).
    pub fn record_fanout(&self, width: u64, deduped: u64) {
        self.fanout_width_sum.fetch_add(width, Ordering::Relaxed);
        self.fanout_width_max.fetch_max(width, Ordering::Relaxed);
        self.dedup_hits.fetch_add(deduped, Ordering::Relaxed);
    }

    /// Point-in-time values for `STATS`.
    pub fn snapshot(&self) -> UntaggedStats {
        UntaggedStats {
            requests: self.requests.load(Ordering::Relaxed),
            per_script: std::array::from_fn(|i| self.per_script[i].load(Ordering::Relaxed)),
            fanout_width_sum: self.fanout_width_sum.load(Ordering::Relaxed),
            fanout_width_max: self.fanout_width_max.load(Ordering::Relaxed),
            no_resource: self.no_resource.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
        }
    }
}

/// An [`UntaggedMetrics`] snapshot (the `STATS` untagged-path fields).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UntaggedStats {
    /// Untagged requests received.
    pub requests: u64,
    /// Primary-script detections, indexed by [`Script::index`].
    pub per_script: [u64; Script::COUNT],
    /// Sum of fan-out widths.
    pub fanout_width_sum: u64,
    /// Widest fan-out ever issued.
    pub fanout_width_max: u64,
    /// Untagged `NORESOURCE` outcomes.
    pub no_resource: u64,
    /// Candidates deduped before the shards.
    pub dedup_hits: u64,
}

/// One access path's counters.
#[derive(Debug, Default)]
pub struct PathMetrics {
    /// Searches served through this path.
    pub searches: AtomicU64,
    /// Fan-out + merge latency.
    pub latency: LatencyHistogram,
}

/// Verification-kernel screen counters aggregated across every shard
/// worker. Each worker owns a long-lived `lexequal::BatchVerifier` and flushes
/// its per-search [`ScreenCounters`] here after answering, so a `STATS`
/// snapshot shows how many verified pairs the bit-parallel screens
/// disposed of without the full DP.
#[derive(Debug, Default)]
pub struct ScreenTotals {
    /// Pairs accepted without the DP (equality or Myers fast-accept).
    pub fast_accept: AtomicU64,
    /// Pairs rejected without the DP (length filter or Myers fast-reject).
    pub fast_reject: AtomicU64,
    /// Pairs that ran the full banded DP.
    pub full_dp: AtomicU64,
    /// Pairs that skipped both Myers screens (query empty or >64
    /// phonemes) — a diagnostic overlay on `full_dp`, not a fourth
    /// outcome.
    pub bypass: AtomicU64,
    /// Pairs the embedding prefilter examined but could not reject
    /// (overlay over the other dispositions, not part of the total).
    pub embed_accept: AtomicU64,
    /// Pairs the embedding prefilter rejected outright.
    pub embed_reject: AtomicU64,
    /// Pairs whose candidate had no stored embedding yet (v1 snapshot
    /// adoption before the background rebuild finishes).
    pub embed_bypass: AtomicU64,
}

impl ScreenTotals {
    /// Fold one worker's counters into the totals.
    pub fn add(&self, c: &ScreenCounters) {
        self.fast_accept.fetch_add(c.fast_accept, Ordering::Relaxed);
        self.fast_reject.fetch_add(c.fast_reject, Ordering::Relaxed);
        self.full_dp.fetch_add(c.full_dp, Ordering::Relaxed);
        self.bypass.fetch_add(c.bypass, Ordering::Relaxed);
        self.embed_accept
            .fetch_add(c.embed_accept, Ordering::Relaxed);
        self.embed_reject
            .fetch_add(c.embed_reject, Ordering::Relaxed);
        self.embed_bypass
            .fetch_add(c.embed_bypass, Ordering::Relaxed);
    }

    /// Current totals as a plain value.
    pub fn snapshot(&self) -> ScreenCounters {
        ScreenCounters {
            fast_accept: self.fast_accept.load(Ordering::Relaxed),
            fast_reject: self.fast_reject.load(Ordering::Relaxed),
            full_dp: self.full_dp.load(Ordering::Relaxed),
            bypass: self.bypass.load(Ordering::Relaxed),
            embed_accept: self.embed_accept.load(Ordering::Relaxed),
            embed_reject: self.embed_reject.load(Ordering::Relaxed),
            embed_bypass: self.embed_bypass.load(Ordering::Relaxed),
        }
    }
}

/// Batch-shape counters aggregated across every shard worker, the
/// lock-free mirror of [`BatchCounters`]: each worker owns a long-lived
/// `lexequal::BatchVerifier` and flushes here after answering, so a
/// `STATS` snapshot shows how many interleaved steps ran and how full
/// their lanes were.
#[derive(Debug, Default)]
pub struct BatchTotals {
    /// Interleaved verification steps.
    pub calls: AtomicU64,
    /// Sum of lane counts over all steps.
    pub lanes_sum: AtomicU64,
    /// Widest batch seen (merged with `fetch_max`).
    pub lanes_max: AtomicU64,
    /// Lanes decided by equality or the phoneme fast-accept screen.
    pub lane_accept: AtomicU64,
    /// Lanes decided by the length filter or cluster fast-reject screen.
    pub lane_reject: AtomicU64,
    /// Lanes drained through the dense banded DP.
    pub lane_dp: AtomicU64,
}

impl BatchTotals {
    /// Fold one worker's counters into the totals.
    pub fn add(&self, c: &BatchCounters) {
        self.calls.fetch_add(c.calls, Ordering::Relaxed);
        self.lanes_sum.fetch_add(c.lanes_sum, Ordering::Relaxed);
        self.lanes_max.fetch_max(c.lanes_max, Ordering::Relaxed);
        self.lane_accept.fetch_add(c.lane_accept, Ordering::Relaxed);
        self.lane_reject.fetch_add(c.lane_reject, Ordering::Relaxed);
        self.lane_dp.fetch_add(c.lane_dp, Ordering::Relaxed);
    }

    /// Current totals as a plain value.
    pub fn snapshot(&self) -> BatchCounters {
        BatchCounters {
            calls: self.calls.load(Ordering::Relaxed),
            lanes_sum: self.lanes_sum.load(Ordering::Relaxed),
            lanes_max: self.lanes_max.load(Ordering::Relaxed),
            lane_accept: self.lane_accept.load(Ordering::Relaxed),
            lane_reject: self.lane_reject.load(Ordering::Relaxed),
            lane_dp: self.lane_dp.load(Ordering::Relaxed),
        }
    }
}

/// Serving-path gauges for the TCP front-ends: connection counts, the
/// verify-dispatch queue, and per-connection pipelining depth. Owned by
/// a serving loop (not by [`crate::MatchService`]) and surfaced through
/// the `STATS` response.
#[derive(Debug, Default)]
pub struct ConnMetrics {
    conns_current: AtomicU64,
    conns_peak: AtomicU64,
    queue_depth: AtomicU64,
    queue_peak: AtomicU64,
    pipeline_max: AtomicU64,
    dispatches: AtomicU64,
    /// Log2 histogram of the in-flight window size observed at each
    /// dispatch (depth 1 = the client waited for every response — no
    /// pipelining; bigger buckets mean the window is actually used).
    pipeline_depths: LatencyHistogram,
}

impl ConnMetrics {
    /// A connection was accepted.
    pub fn conn_opened(&self) {
        let now = self.conns_current.fetch_add(1, Ordering::Relaxed) + 1;
        self.conns_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// A connection was closed.
    pub fn conn_closed(&self) {
        self.conns_current.fetch_sub(1, Ordering::Relaxed);
    }

    /// A job entered the verify-dispatch queue.
    pub fn queue_pushed(&self) {
        let now = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// `n` jobs left the verify-dispatch queue.
    pub fn queue_popped(&self, n: u64) {
        self.queue_depth.fetch_sub(n, Ordering::Relaxed);
    }

    /// A request was dispatched while its connection had `depth`
    /// requests in flight (including this one).
    pub fn observe_pipeline(&self, depth: u64) {
        self.dispatches.fetch_add(1, Ordering::Relaxed);
        self.pipeline_max.fetch_max(depth, Ordering::Relaxed);
        self.pipeline_depths.record_count(depth);
    }

    /// Point-in-time values for `STATS`.
    pub fn snapshot(&self) -> ConnStats {
        ConnStats {
            conns_current: self.conns_current.load(Ordering::Relaxed),
            conns_peak: self.conns_peak.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
            pipeline_max: self.pipeline_max.load(Ordering::Relaxed),
            dispatches: self.dispatches.load(Ordering::Relaxed),
            pipeline_p99: self.pipeline_depths.quantile_upper_ns(0.99),
        }
    }
}

/// A [`ConnMetrics`] snapshot (the `STATS` serving-gauge fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnStats {
    /// Connections open right now.
    pub conns_current: u64,
    /// Most connections ever open at once.
    pub conns_peak: u64,
    /// Jobs sitting in the verify-dispatch queue right now.
    pub queue_depth: u64,
    /// Deepest the dispatch queue has ever been.
    pub queue_peak: u64,
    /// Largest per-connection in-flight window ever observed.
    pub pipeline_max: u64,
    /// Requests dispatched to the worker pool.
    pub dispatches: u64,
    /// Upper edge of the p99 bucket of observed pipeline depths.
    pub pipeline_p99: Option<u64>,
}

/// Write-ahead-log counters (appends, fsyncs, bytes) — relaxed atomics
/// bumped once per committed mutation by [`crate::wal::Wal::append`].
#[derive(Debug, Default)]
pub struct WalMetrics {
    appends: AtomicU64,
    fsyncs: AtomicU64,
    bytes: AtomicU64,
}

impl WalMetrics {
    /// Record one durable append of `bytes` record bytes (one fsync).
    pub fn record_append(&self, bytes: usize) {
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Current counter values.
    pub fn stats(&self) -> WalStats {
        WalStats {
            appends: self.appends.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

/// A [`WalMetrics`] snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended.
    pub appends: u64,
    /// fsyncs issued (one per append today).
    pub fsyncs: u64,
    /// Record bytes written (magic excluded).
    pub bytes: u64,
}

/// Which side of the replication link a daemon is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplRole {
    /// Owns the WAL and serves the stream.
    Primary,
    /// Applies the stream; read-only.
    Replica,
}

/// Replication state as surfaced by `STATS` — a plain value struct so
/// [`crate::StatsSnapshot`] stays `Eq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplStats {
    /// This daemon's role.
    pub role: ReplRole,
    /// Head LSN: the WAL head on a primary, the last head heard from
    /// the primary on a replica.
    pub head_lsn: u64,
    /// Last LSN applied to the local store (= `head_lsn` on a primary).
    pub applied_lsn: u64,
    /// `head_lsn - applied_lsn` (0 when caught up).
    pub lag: u64,
    /// Replica: whether the stream link is currently up.
    pub connected: bool,
    /// Primary: replica streams attached right now.
    pub replicas: u64,
    /// Primary: WAL counters.
    pub wal: Option<WalStats>,
    /// Replica: the primary's address.
    pub primary_addr: Option<String>,
    /// Primary: live (post-compaction) WAL file size in bytes.
    pub wal_bytes_live: u64,
    /// Primary: completed checkpoint-and-truncate cycles.
    pub compactions: u64,
    /// Primary: LSN covered by the newest durable checkpoint (0 = none).
    pub checkpoint_lsn: u64,
    /// Snapshot-transfer catch-ups served (primary) or performed
    /// (replica) because an incremental stream was impossible.
    pub reseeds: u64,
    /// Divergent-history detections: a replica ahead of its primary.
    pub divergences: u64,
}

impl ServiceMetrics {
    /// Record one served search on `method`.
    pub fn record_search(&self, method: SearchMethod, elapsed: Duration, matches: usize) {
        let m = &self.per_method[method_index(method)];
        m.searches.fetch_add(1, Ordering::Relaxed);
        m.latency.record(elapsed);
        self.matches_returned
            .fetch_add(matches as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_nanos(1)); // bucket 0
        h.record(Duration::from_nanos(3)); // bucket 1
        h.record(Duration::from_nanos(1024)); // bucket 10
        let s = h.snapshot();
        assert_eq!(s[0], 1);
        assert_eq!(s[1], 1);
        assert_eq!(s[10], 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn zero_duration_lands_in_the_first_bucket() {
        let h = LatencyHistogram::default();
        h.record(Duration::ZERO);
        assert_eq!(h.snapshot()[0], 1);
    }

    #[test]
    fn huge_samples_clamp_to_the_last_bucket() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_secs(3600));
        assert_eq!(h.snapshot()[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_upper_ns(0.5), None);
        for _ in 0..99 {
            h.record(Duration::from_nanos(100)); // bucket 6: [64, 128)
        }
        h.record(Duration::from_micros(100)); // bucket 16
        assert_eq!(h.quantile_upper_ns(0.5), Some(128));
        assert_eq!(h.quantile_upper_ns(1.0), Some(1 << 17));
    }

    #[test]
    fn method_indices_are_distinct_and_named() {
        let mut seen = [false; 4];
        for m in ALL_METHODS {
            let i = method_index(m);
            assert!(!seen[i]);
            seen[i] = true;
            assert!(!method_name(m).is_empty());
        }
    }

    #[test]
    fn conn_metrics_track_gauges_and_peaks() {
        let m = ConnMetrics::default();
        m.conn_opened();
        m.conn_opened();
        m.conn_closed();
        m.queue_pushed();
        m.queue_pushed();
        m.queue_popped(2);
        m.observe_pipeline(1);
        m.observe_pipeline(9);
        m.observe_pipeline(4);
        let s = m.snapshot();
        assert_eq!(s.conns_current, 1);
        assert_eq!(s.conns_peak, 2);
        assert_eq!(s.queue_depth, 0);
        assert_eq!(s.queue_peak, 2);
        assert_eq!(s.pipeline_max, 9);
        assert_eq!(s.dispatches, 3);
        assert!(s.pipeline_p99.unwrap() >= 9);
    }

    #[test]
    fn untagged_metrics_track_scripts_and_fanout() {
        let m = UntaggedMetrics::default();
        m.record_request(Some(Script::Latin));
        m.record_fanout(3, 0);
        m.record_request(Some(Script::Latin));
        m.record_fanout(2, 1);
        m.record_request(Some(Script::Cyrillic));
        m.record_fanout(1, 0);
        m.record_request(None);
        let s = m.snapshot();
        assert_eq!(s.requests, 4);
        assert_eq!(s.per_script[Script::Latin.index()], 2);
        assert_eq!(s.per_script[Script::Cyrillic.index()], 1);
        assert_eq!(s.fanout_width_sum, 6);
        assert_eq!(s.fanout_width_max, 3);
        assert_eq!(s.dedup_hits, 1);
    }

    #[test]
    fn record_search_updates_the_right_path() {
        let m = ServiceMetrics::default();
        m.record_search(SearchMethod::Qgram, Duration::from_micros(5), 3);
        assert_eq!(
            m.per_method[method_index(SearchMethod::Qgram)]
                .searches
                .load(Ordering::Relaxed),
            1
        );
        assert_eq!(m.matches_returned.load(Ordering::Relaxed), 3);
        assert_eq!(
            m.per_method[method_index(SearchMethod::Scan)]
                .searches
                .load(Ordering::Relaxed),
            0
        );
    }
}
