//! `loadgen` — closed-loop shard-scaling load generator.
//!
//! ```text
//! loadgen [--size N] [--clients N] [--ops N] [--shards 1,2,4] [--method M]
//!         [--threshold E] [--pool N] [--out PATH]
//! loadgen --net [--connections 64,256,1024] [--pipeline N] [--conn-ops N]
//!         [--client-threads N] [--mode both|threaded|evented] [--workers N]
//!         [--net-out PATH]
//! ```
//!
//! Default mode loads the paper §5 synthetic lexicon into a fresh
//! in-process service per shard count, drives it from concurrent client
//! threads, and writes per-run throughput and exact latency quantiles
//! to a JSON report (default `results/service_bench.json`). The report
//! records the host's `available_parallelism`: shard scaling cannot
//! exceed it.
//!
//! `--net` instead benchmarks the serving paths over real sockets: one
//! fresh `lexequald` listener per (serve mode × connection count),
//! driven with `--pipeline`-deep windows on every connection (default
//! `results/evented_bench.json`).
//!
//! `--repl-bench` stands up a WAL-backed primary and a streaming
//! replica linked over a socket and measures the snapshot transfer,
//! commit and apply rates, and sustained lag (default
//! `results/repl_bench.json`).
//!
//! `--compaction-bench` is the WAL-bound soak: a primary with a tiny
//! `--wal-max-bytes` threshold and a live streaming replica, committing
//! through several background checkpoint-and-truncate cycles, then
//! proving the bound held (sampled peak), the replica drained to zero
//! lag, and a battery of lookups answers identically on both sides
//! (default `results/compaction_bench.json`).
//!
//! `--untagged-bench` drives one service with a mixed tagged/untagged
//! workload (`--untagged-pct` of ops omit the language tag and go
//! through script profiling + fan-out routing, including foreign-script
//! probes) and reports the two latency distributions side by side plus
//! the router's counters (default `results/untagged_bench.json`).
//!
//! `--prefilter-bench` A/B-tests the embedding prefilter: the same
//! scan-path workload per cost model with the screen on and off,
//! answers asserted bit-identical, reporting the screen's reject rate
//! and the full-DP work it saved (default `results/prefilter_bench.json`).

use lexequal::SearchMethod;
use lexequal_service::loadgen::{
    run, run_compaction_bench, run_net, run_prefilter_bench, run_repl_bench, run_snapshot_bench,
    run_untagged_bench, write_compaction_bench_json, write_json, write_net_json,
    write_prefilter_bench_json, write_repl_bench_json, write_snapshot_bench_json,
    write_untagged_bench_json, CompactionBenchConfig, LoadgenConfig, NetConfig,
    PrefilterBenchConfig, ReplBenchConfig, SnapshotBenchConfig, UntaggedBenchConfig,
};
use lexequal_service::ServeMode;
use std::path::PathBuf;
use std::process::ExitCode;

fn parse_method(s: &str) -> Result<SearchMethod, String> {
    match s.to_ascii_lowercase().as_str() {
        "scan" => Ok(SearchMethod::Scan),
        "qgram" => Ok(SearchMethod::Qgram),
        "phonidx" => Ok(SearchMethod::PhoneticIndex),
        "bktree" => Ok(SearchMethod::BkTree),
        other => Err(format!("unknown method {other:?}")),
    }
}

enum Parsed {
    InProcess(LoadgenConfig, PathBuf),
    Net(NetConfig, PathBuf),
    SnapshotBench(SnapshotBenchConfig, PathBuf),
    ReplBench(ReplBenchConfig, PathBuf),
    CompactionBench(CompactionBenchConfig, PathBuf),
    UntaggedBench(UntaggedBenchConfig, PathBuf),
    PrefilterBench(PrefilterBenchConfig, PathBuf),
}

fn parse_args() -> Result<Parsed, String> {
    let mut config = LoadgenConfig::default();
    let mut net = NetConfig::default();
    let mut snap = SnapshotBenchConfig::default();
    let mut repl = ReplBenchConfig::default();
    let mut compaction = CompactionBenchConfig::default();
    let mut untagged = UntaggedBenchConfig::default();
    let mut prefilter = PrefilterBenchConfig::default();
    let mut net_mode = false;
    let mut snap_mode = false;
    let mut repl_mode = false;
    let mut compaction_mode = false;
    let mut untagged_mode = false;
    let mut prefilter_mode = false;
    let mut out = PathBuf::from("results/service_bench.json");
    let mut net_out = PathBuf::from("results/evented_bench.json");
    let mut snap_out = PathBuf::from("results/snapshot_bench.json");
    let mut repl_out = PathBuf::from("results/repl_bench.json");
    let mut compaction_out = PathBuf::from("results/compaction_bench.json");
    let mut untagged_out = PathBuf::from("results/untagged_bench.json");
    let mut prefilter_out = PathBuf::from("results/prefilter_bench.json");
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--net" => net_mode = true,
            "--snapshot-bench" => snap_mode = true,
            "--repl-bench" => repl_mode = true,
            "--compaction-bench" => compaction_mode = true,
            "--wal-max-bytes" => {
                let v = value("--wal-max-bytes")?;
                compaction.wal_max_bytes = v.parse().map_err(|_| {
                    format!("--wal-max-bytes: invalid value {v:?} (expected a positive byte count)")
                })?;
                if compaction.wal_max_bytes == 0 {
                    return Err(format!(
                        "--wal-max-bytes: invalid value {v:?} (must be positive)"
                    ));
                }
            }
            "--compaction-ops" => {
                let v = value("--compaction-ops")?;
                compaction.ops = v.parse().map_err(|_| {
                    format!("--compaction-ops: invalid value {v:?} (expected a positive integer)")
                })?;
                if compaction.ops == 0 {
                    return Err(format!(
                        "--compaction-ops: invalid value {v:?} (must be positive)"
                    ));
                }
            }
            "--compaction-out" => compaction_out = PathBuf::from(value("--compaction-out")?),
            "--untagged-bench" => untagged_mode = true,
            "--untagged-pct" => {
                let v = value("--untagged-pct")?;
                untagged.untagged_pct = v
                    .parse()
                    .map_err(|_| format!("--untagged-pct: invalid value {v:?} (expected 0-100)"))?;
                if untagged.untagged_pct > 100 {
                    return Err(format!(
                        "--untagged-pct: invalid value {v:?} (must be <= 100)"
                    ));
                }
            }
            "--untagged-shards" => {
                let v = value("--untagged-shards")?;
                untagged.shards = v.parse().map_err(|_| {
                    format!("--untagged-shards: invalid value {v:?} (expected a positive integer)")
                })?;
                if untagged.shards == 0 {
                    return Err(format!(
                        "--untagged-shards: invalid value {v:?} (must be positive)"
                    ));
                }
            }
            "--untagged-out" => untagged_out = PathBuf::from(value("--untagged-out")?),
            "--prefilter-bench" => prefilter_mode = true,
            "--prefilter-thresholds" => {
                prefilter.thresholds = value("--prefilter-thresholds")?
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse::<f64>()
                            .map_err(|_| format!("--prefilter-thresholds: bad threshold {t:?}"))
                    })
                    .collect::<Result<_, _>>()?;
                if prefilter.thresholds.is_empty()
                    || prefilter
                        .thresholds
                        .iter()
                        .any(|e| !(0.0..=1.0).contains(e))
                {
                    return Err("--prefilter-thresholds: thresholds must be in [0,1]".to_owned());
                }
            }
            "--prefilter-shards" => {
                let v = value("--prefilter-shards")?;
                prefilter.shards = v.parse().map_err(|_| {
                    format!("--prefilter-shards: invalid value {v:?} (expected a positive integer)")
                })?;
                if prefilter.shards == 0 {
                    return Err(format!(
                        "--prefilter-shards: invalid value {v:?} (must be positive)"
                    ));
                }
            }
            "--prefilter-out" => prefilter_out = PathBuf::from(value("--prefilter-out")?),
            "--repl-ops" => {
                let v = value("--repl-ops")?;
                repl.ops = v.parse().map_err(|_| {
                    format!("--repl-ops: invalid value {v:?} (expected a positive integer)")
                })?;
                if repl.ops == 0 {
                    return Err(format!(
                        "--repl-ops: invalid value {v:?} (must be positive)"
                    ));
                }
            }
            "--repl-shards" => {
                let v = value("--repl-shards")?;
                repl.shards = v.parse().map_err(|_| {
                    format!("--repl-shards: invalid value {v:?} (expected a positive integer)")
                })?;
                if repl.shards == 0 {
                    return Err(format!(
                        "--repl-shards: invalid value {v:?} (must be positive)"
                    ));
                }
                compaction.shards = repl.shards;
            }
            "--repl-out" => repl_out = PathBuf::from(value("--repl-out")?),
            "--snap-shards" => {
                let v = value("--snap-shards")?;
                snap.shards = v.parse().map_err(|_| {
                    format!("--snap-shards: invalid value {v:?} (expected a positive integer)")
                })?;
                if snap.shards == 0 {
                    return Err(format!(
                        "--snap-shards: invalid value {v:?} (must be positive)"
                    ));
                }
            }
            "--snapshot-out" => snap_out = PathBuf::from(value("--snapshot-out")?),
            "--connections" => {
                net.connections = value("--connections")?
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse::<usize>()
                            .map_err(|_| format!("--connections: bad count {t:?}"))
                    })
                    .collect::<Result<_, _>>()?;
                if net.connections.is_empty() || net.connections.contains(&0) {
                    return Err("--connections: counts must be positive".to_owned());
                }
            }
            "--pipeline" => {
                net.pipeline = value("--pipeline")?
                    .parse()
                    .map_err(|_| "--pipeline: expected a positive integer".to_owned())?;
                if net.pipeline == 0 {
                    return Err("--pipeline must be positive".to_owned());
                }
            }
            "--conn-ops" => {
                net.ops_per_conn = value("--conn-ops")?
                    .parse()
                    .map_err(|_| "--conn-ops: expected an integer".to_owned())?;
            }
            "--client-threads" => {
                net.client_threads = value("--client-threads")?
                    .parse()
                    .map_err(|_| "--client-threads: expected a positive integer".to_owned())?;
                if net.client_threads == 0 {
                    return Err("--client-threads must be positive".to_owned());
                }
            }
            "--mode" => {
                net.modes = match value("--mode")?.to_ascii_lowercase().as_str() {
                    "both" => vec![ServeMode::Threaded, ServeMode::Evented],
                    one => vec![one.parse::<ServeMode>()?],
                };
            }
            "--workers" => {
                net.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers: expected a positive integer".to_owned())?;
                if net.workers == 0 {
                    return Err("--workers must be positive".to_owned());
                }
            }
            "--net-out" => net_out = PathBuf::from(value("--net-out")?),
            "--size" => {
                config.dataset_size = value("--size")?
                    .parse()
                    .map_err(|_| "--size: expected an integer".to_owned())?;
                net.dataset_size = config.dataset_size;
                snap.dataset_size = config.dataset_size;
                repl.dataset_size = config.dataset_size;
                compaction.dataset_size = config.dataset_size;
                untagged.dataset_size = config.dataset_size;
                prefilter.dataset_size = config.dataset_size;
            }
            "--clients" => {
                config.clients = value("--clients")?
                    .parse()
                    .map_err(|_| "--clients: expected an integer".to_owned())?;
                untagged.clients = config.clients;
            }
            "--ops" => {
                config.ops_per_client = value("--ops")?
                    .parse()
                    .map_err(|_| "--ops: expected an integer".to_owned())?;
                untagged.ops_per_client = config.ops_per_client;
            }
            "--shards" => {
                config.shard_counts = value("--shards")?
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse::<usize>()
                            .map_err(|_| format!("--shards: bad count {t:?}"))
                    })
                    .collect::<Result<_, _>>()?;
                if config.shard_counts.is_empty() || config.shard_counts.contains(&0) {
                    return Err("--shards: counts must be positive".to_owned());
                }
            }
            "--method" => {
                config.method = parse_method(&value("--method")?)?;
                net.method = config.method;
                untagged.method = config.method;
            }
            "--threshold" => {
                config.threshold = value("--threshold")?
                    .parse()
                    .map_err(|_| "--threshold: expected a number".to_owned())?;
                net.threshold = config.threshold;
                untagged.threshold = config.threshold;
            }
            "--pool" => {
                config.query_pool = value("--pool")?
                    .parse()
                    .map_err(|_| "--pool: expected an integer".to_owned())?;
                net.query_pool = config.query_pool;
                untagged.query_pool = config.query_pool;
                prefilter.queries = config.query_pool;
            }
            "--out" => out = PathBuf::from(value("--out")?),
            "--help" | "-h" => {
                println!(
                    "usage: loadgen [--size N] [--clients N] [--ops N] [--shards 1,2,4] \
                     [--method scan|qgram|phonidx|bktree] [--threshold E] [--pool N] [--out PATH]\n\
                     \x20      loadgen --net [--connections 64,256,1024] [--pipeline N] \
                     [--conn-ops N] [--client-threads N] [--mode both|threaded|evented] \
                     [--workers N] [--net-out PATH]\n\
                     \x20      loadgen --snapshot-bench [--size N] [--snap-shards N] \
                     [--snapshot-out PATH]\n\
                     \x20      loadgen --repl-bench [--size N] [--repl-ops N] [--repl-shards N] \
                     [--repl-out PATH]\n\
                     \x20      loadgen --compaction-bench [--size N] [--compaction-ops N] \
                     [--wal-max-bytes N] [--repl-shards N] [--compaction-out PATH]\n\
                     \x20      loadgen --untagged-bench [--size N] [--clients N] [--ops N] \
                     [--untagged-pct P] [--untagged-shards N] [--untagged-out PATH]\n\
                     \x20      loadgen --prefilter-bench [--size N] [--pool N] \
                     [--prefilter-thresholds 0.25,0.35,0.45] [--prefilter-shards N] \
                     [--prefilter-out PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(if prefilter_mode {
        Parsed::PrefilterBench(prefilter, prefilter_out)
    } else if untagged_mode {
        Parsed::UntaggedBench(untagged, untagged_out)
    } else if compaction_mode {
        Parsed::CompactionBench(compaction, compaction_out)
    } else if repl_mode {
        Parsed::ReplBench(repl, repl_out)
    } else if snap_mode {
        Parsed::SnapshotBench(snap, snap_out)
    } else if net_mode {
        Parsed::Net(net, net_out)
    } else {
        Parsed::InProcess(config, out)
    })
}

fn main_in_process(config: LoadgenConfig, out: PathBuf) -> ExitCode {
    eprintln!(
        "loadgen: ~{} names, {} clients x {} ops, shards {:?}, method {:?}",
        config.dataset_size,
        config.clients,
        config.ops_per_client,
        config.shard_counts,
        config.method,
    );
    let report = run(&config);
    eprintln!(
        "loadgen: loaded {} names (host parallelism {})",
        report.dataset_size, report.available_parallelism
    );
    for r in &report.runs {
        println!(
            "shards={:<2} throughput={:>10.1} ops/s  p50={:>8.1}us  p95={:>8.1}us  p99={:>8.1}us  cache {}/{} hit",
            r.shards, r.throughput, r.p50_us, r.p95_us, r.p99_us, r.cache_hits,
            r.cache_hits + r.cache_misses,
        );
    }
    if let Err(e) = write_json(&report, &out) {
        eprintln!("loadgen: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("loadgen: wrote {}", out.display());
    ExitCode::SUCCESS
}

fn main_net(config: NetConfig, out: PathBuf) -> ExitCode {
    eprintln!(
        "loadgen: net bench, ~{} names, {:?} connections x {} ops (pipeline {}), {} client threads",
        config.dataset_size,
        config.connections,
        config.ops_per_conn,
        config.pipeline,
        config.client_threads,
    );
    let report = run_net(&config);
    for r in &report.runs {
        println!(
            "mode={:<8} conns={:<5} throughput={:>10.1} ops/s  p50={:>8.1}us  p95={:>8.1}us  \
             p99={:>8.1}us  conns_peak={} pipeline_max={} queue_peak={} \
             batch_calls={} batch_lanes_sum={} batch_lanes_max={} simd={}",
            r.mode.name(),
            r.connections,
            r.throughput,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.conns_peak,
            r.pipeline_max,
            r.queue_peak,
            r.batch_calls,
            r.batch_lanes_sum,
            r.batch_lanes_max,
            r.simd,
        );
    }
    if let Err(e) = write_net_json(&report, &out) {
        eprintln!("loadgen: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("loadgen: wrote {}", out.display());
    ExitCode::SUCCESS
}

fn main_snapshot_bench(config: SnapshotBenchConfig, out: PathBuf) -> ExitCode {
    eprintln!(
        "loadgen: snapshot cold-start bench (rebuild vs json vs mmap), ~{} names, {} shards",
        config.dataset_size, config.shards,
    );
    let report = run_snapshot_bench(&config);
    println!(
        "build-from-corpus={:.3}s (g2p {:.3}s)  json save={:.3}s ({} bytes)  \
         json load={:.3}s  speedup={:.1}x",
        report.build_cold_start_secs,
        report.g2p_secs,
        report.save_secs,
        report.snapshot_bytes,
        report.snapshot_cold_start_secs,
        report.cold_start_speedup,
    );
    println!(
        "mmap save={:.3}s ({} bytes)  mmap serve-ready={:.4}s  deferred builds={:.3}s  \
         vs-json={:.1}x  vs-rebuild={:.1}x",
        report.mmap_save_secs,
        report.mmap_snapshot_bytes,
        report.mmap_load_secs,
        report.mmap_build_secs,
        report.mmap_vs_json_speedup,
        report.mmap_cold_start_speedup,
    );
    // The three-way comparison also lands in results/mmap_bench.json so
    // the cold-start numbers have a stable, separately-tracked home.
    let mmap_out = out.with_file_name("mmap_bench.json");
    for target in [&out, &mmap_out] {
        if let Err(e) = write_snapshot_bench_json(&report, target) {
            eprintln!("loadgen: cannot write {}: {e}", target.display());
            return ExitCode::FAILURE;
        }
        eprintln!("loadgen: wrote {}", target.display());
    }
    ExitCode::SUCCESS
}

fn main_repl_bench(config: ReplBenchConfig, out: PathBuf) -> ExitCode {
    eprintln!(
        "loadgen: replication bench, ~{} names + {} streamed ops, {} shards",
        config.dataset_size, config.ops, config.shards,
    );
    let report = run_repl_bench(&config);
    println!(
        "sync={:.3}s  commit={:.1} ops/s  apply={:.1} ops/s  catch-up={:.1}ms  \
         lag p50={} max={} final={}",
        report.sync_secs,
        report.commit_ops_per_sec,
        report.apply_ops_per_sec,
        report.catch_up_ms,
        report.lag_p50,
        report.lag_max,
        report.final_lag,
    );
    if let Err(e) = write_repl_bench_json(&report, &out) {
        eprintln!("loadgen: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("loadgen: wrote {}", out.display());
    ExitCode::SUCCESS
}

fn main_compaction_bench(config: CompactionBenchConfig, out: PathBuf) -> ExitCode {
    eprintln!(
        "loadgen: compaction soak, ~{} names + {} committed ops, wal bound {} bytes, {} shards",
        config.dataset_size, config.ops, config.wal_max_bytes, config.shards,
    );
    let report = run_compaction_bench(&config);
    println!(
        "compactions={} checkpoint_lsn={} appended={}B peak={}B final={}B  \
         commit={:.1} ops/s  final_lag={} battery {}/{} identical reseeds={}",
        report.compactions,
        report.checkpoint_lsn,
        report.bytes_appended,
        report.wal_bytes_peak,
        report.wal_bytes_final,
        report.commit_ops_per_sec,
        report.final_lag,
        report.battery_queries - report.battery_mismatches,
        report.battery_queries,
        report.reseeds,
    );
    if report.final_lag != 0 || report.battery_mismatches != 0 {
        eprintln!("loadgen: compaction soak FAILED (lag or battery mismatch)");
        return ExitCode::FAILURE;
    }
    if let Err(e) = write_compaction_bench_json(&report, &out) {
        eprintln!("loadgen: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("loadgen: wrote {}", out.display());
    ExitCode::SUCCESS
}

fn main_untagged_bench(config: UntaggedBenchConfig, out: PathBuf) -> ExitCode {
    eprintln!(
        "loadgen: untagged bench, ~{} names, {} clients x {} ops, {}% untagged, {} shards",
        config.dataset_size,
        config.clients,
        config.ops_per_client,
        config.untagged_pct,
        config.shards,
    );
    let report = run_untagged_bench(&config);
    println!(
        "throughput={:.1} ops/s  tagged p50={:.1}us p95={:.1}us  untagged p50={:.1}us \
         p95={:.1}us  fanout sum={} max={} dedup={} noresource={}",
        report.throughput,
        report.tagged_p50_us,
        report.tagged_p95_us,
        report.untagged_p50_us,
        report.untagged_p95_us,
        report.untagged.fanout_width_sum,
        report.untagged.fanout_width_max,
        report.untagged.dedup_hits,
        report.untagged.no_resource,
    );
    if let Err(e) = write_untagged_bench_json(&report, &out) {
        eprintln!("loadgen: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("loadgen: wrote {}", out.display());
    ExitCode::SUCCESS
}

fn main_prefilter_bench(config: PrefilterBenchConfig, out: PathBuf) -> ExitCode {
    eprintln!(
        "loadgen: prefilter A/B, ~{} names x {} queries, thresholds {:?}, {} shards",
        config.dataset_size, config.queries, config.thresholds, config.shards,
    );
    let report = run_prefilter_bench(&config);
    for c in &report.cells {
        println!(
            "model={:<9} e={:.2} pairs={} examined={} rejected={} rate={:.1}%  \
             full_dp {}→{}  {:.3}s→{:.3}s  matches={}",
            c.cost_model,
            c.threshold,
            c.pairs,
            c.embed_examined,
            c.embed_reject,
            c.reject_rate * 100.0,
            c.full_dp_off,
            c.full_dp_on,
            c.elapsed_off_secs,
            c.elapsed_on_secs,
            c.matches,
        );
    }
    if let Err(e) = write_prefilter_bench_json(&report, &out) {
        eprintln!("loadgen: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("loadgen: wrote {}", out.display());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(Parsed::InProcess(config, out)) => main_in_process(config, out),
        Ok(Parsed::Net(config, out)) => main_net(config, out),
        Ok(Parsed::SnapshotBench(config, out)) => main_snapshot_bench(config, out),
        Ok(Parsed::ReplBench(config, out)) => main_repl_bench(config, out),
        Ok(Parsed::CompactionBench(config, out)) => main_compaction_bench(config, out),
        Ok(Parsed::UntaggedBench(config, out)) => main_untagged_bench(config, out),
        Ok(Parsed::PrefilterBench(config, out)) => main_prefilter_bench(config, out),
        Err(e) => {
            eprintln!("loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}
