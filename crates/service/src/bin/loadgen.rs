//! `loadgen` — closed-loop shard-scaling load generator.
//!
//! ```text
//! loadgen [--size N] [--clients N] [--ops N] [--shards 1,2,4] [--method M]
//!         [--threshold E] [--pool N] [--out PATH]
//! ```
//!
//! Loads the paper §5 synthetic lexicon into a fresh service per shard
//! count, drives it from concurrent client threads, and writes per-run
//! throughput and exact latency quantiles to a JSON report (default
//! `results/service_bench.json`). The report records the host's
//! `available_parallelism`: shard scaling cannot exceed it.

use lexequal::SearchMethod;
use lexequal_service::loadgen::{run, write_json, LoadgenConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn parse_method(s: &str) -> Result<SearchMethod, String> {
    match s.to_ascii_lowercase().as_str() {
        "scan" => Ok(SearchMethod::Scan),
        "qgram" => Ok(SearchMethod::Qgram),
        "phonidx" => Ok(SearchMethod::PhoneticIndex),
        "bktree" => Ok(SearchMethod::BkTree),
        other => Err(format!("unknown method {other:?}")),
    }
}

fn parse_args() -> Result<(LoadgenConfig, PathBuf), String> {
    let mut config = LoadgenConfig::default();
    let mut out = PathBuf::from("results/service_bench.json");
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--size" => {
                config.dataset_size = value("--size")?
                    .parse()
                    .map_err(|_| "--size: expected an integer".to_owned())?;
            }
            "--clients" => {
                config.clients = value("--clients")?
                    .parse()
                    .map_err(|_| "--clients: expected an integer".to_owned())?;
            }
            "--ops" => {
                config.ops_per_client = value("--ops")?
                    .parse()
                    .map_err(|_| "--ops: expected an integer".to_owned())?;
            }
            "--shards" => {
                config.shard_counts = value("--shards")?
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse::<usize>()
                            .map_err(|_| format!("--shards: bad count {t:?}"))
                    })
                    .collect::<Result<_, _>>()?;
                if config.shard_counts.is_empty() || config.shard_counts.contains(&0) {
                    return Err("--shards: counts must be positive".to_owned());
                }
            }
            "--method" => config.method = parse_method(&value("--method")?)?,
            "--threshold" => {
                config.threshold = value("--threshold")?
                    .parse()
                    .map_err(|_| "--threshold: expected a number".to_owned())?;
            }
            "--pool" => {
                config.query_pool = value("--pool")?
                    .parse()
                    .map_err(|_| "--pool: expected an integer".to_owned())?;
            }
            "--out" => out = PathBuf::from(value("--out")?),
            "--help" | "-h" => {
                println!(
                    "usage: loadgen [--size N] [--clients N] [--ops N] [--shards 1,2,4] \
                     [--method scan|qgram|phonidx|bktree] [--threshold E] [--pool N] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok((config, out))
}

fn main() -> ExitCode {
    let (config, out) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "loadgen: ~{} names, {} clients x {} ops, shards {:?}, method {:?}",
        config.dataset_size,
        config.clients,
        config.ops_per_client,
        config.shard_counts,
        config.method,
    );
    let report = run(&config);
    eprintln!(
        "loadgen: loaded {} names (host parallelism {})",
        report.dataset_size, report.available_parallelism
    );
    for r in &report.runs {
        println!(
            "shards={:<2} throughput={:>10.1} ops/s  p50={:>8.1}us  p95={:>8.1}us  p99={:>8.1}us  cache {}/{} hit",
            r.shards, r.throughput, r.p50_us, r.p95_us, r.p99_us, r.cache_hits,
            r.cache_hits + r.cache_misses,
        );
    }
    if let Err(e) = write_json(&report, &out) {
        eprintln!("loadgen: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("loadgen: wrote {}", out.display());
    ExitCode::SUCCESS
}
