//! `lexequald` — the LexEQUAL match daemon.
//!
//! ```text
//! lexequald [--addr HOST:PORT] [--shards N] [--cache N] [--threshold E] [--preload N]
//!           [--snapshot PATH] [--save-snapshot PATH]
//!           [--mode evented|threaded] [--workers N] [--max-pipeline N]
//!           [--max-line BYTES] [--queue N]
//! ```
//!
//! Binds a TCP listener and serves the line protocol documented in
//! `lexequal_service::proto` (ADD, BUILD, MATCH, BATCH, STATS, QUIT).
//! The default `--mode evented` runs a single epoll readiness loop with
//! a fixed pool of `--workers` verify threads and supports up to
//! `--max-pipeline` in-flight requests per connection; `--mode
//! threaded` is the legacy one-thread-per-connection path.
//!
//! Store population, fastest first:
//!
//! * `--snapshot PATH` — restore the store from a snapshot written by
//!   `--save-snapshot`: a file read plus a parallel index rebuild, no
//!   G2P pass. The store comes back with the snapshot's own shard count
//!   unless `--shards` pins one (which must then match — re-sharding on
//!   load is not supported).
//! * `--preload N` — bulk-load ≈N synthetic names (paper §5 dataset)
//!   and build all access paths before accepting connections.
//!
//! `--save-snapshot PATH` writes the store to PATH once it is populated
//! (after `--preload`, before serving), so the next start can use
//! `--snapshot PATH`.

use lexequal::MatchConfig;
use lexequal_service::{MatchService, ServeMode, ServeOptions, ServiceConfig, ShutdownSignal};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

const USAGE: &str = "usage: lexequald [--addr HOST:PORT] [--shards N] [--cache N] \
[--threshold E] [--preload N] [--snapshot PATH] [--save-snapshot PATH] \
[--mode evented|threaded] [--workers N] [--max-pipeline N] [--max-line BYTES] [--queue N]";

struct Args {
    addr: String,
    /// `None` until `--shards` is given: a snapshot load then adopts the
    /// snapshot's own shard count instead of guessing.
    shards: Option<usize>,
    cache: usize,
    threshold: Option<f64>,
    preload: usize,
    snapshot: Option<String>,
    save_snapshot: Option<String>,
    mode: ServeMode,
    serve: ServeOptions,
}

/// Parse one flag's value, naming the flag *and* the offending value in
/// the error — every numeric flag goes through here so bad input always
/// reads the same way: `--shards: invalid value "x" (expected ...)`.
fn parse_value<T: std::str::FromStr>(flag: &str, value: &str, expected: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: invalid value {value:?} (expected {expected})"))
}

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7077".to_owned(),
        shards: None,
        cache: 4096,
        threshold: None,
        preload: 0,
        snapshot: None,
        save_snapshot: None,
        mode: ServeMode::Evented,
        serve: ServeOptions::default(),
    };
    let mut it = argv;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--snapshot" => args.snapshot = Some(value("--snapshot")?),
            "--save-snapshot" => args.save_snapshot = Some(value("--save-snapshot")?),
            "--shards" => {
                let v = value("--shards")?;
                let n: usize = parse_value("--shards", &v, "a positive integer")?;
                if n == 0 {
                    return Err(format!("--shards: invalid value {v:?} (must be positive)"));
                }
                args.shards = Some(n);
            }
            "--cache" => {
                args.cache = parse_value("--cache", &value("--cache")?, "an integer")?;
            }
            "--threshold" => {
                let v = value("--threshold")?;
                let e: f64 = parse_value("--threshold", &v, "a number in [0,1]")?;
                if !(0.0..=1.0).contains(&e) {
                    return Err(format!(
                        "--threshold: invalid value {v:?} (must be in [0,1])"
                    ));
                }
                args.threshold = Some(e);
            }
            "--preload" => {
                args.preload = parse_value("--preload", &value("--preload")?, "an integer")?;
            }
            "--mode" => {
                let v = value("--mode")?;
                args.mode = parse_value("--mode", &v, "evented or threaded")?;
            }
            "--workers" => {
                let v = value("--workers")?;
                args.serve.workers = parse_value("--workers", &v, "a positive integer")?;
                if args.serve.workers == 0 {
                    return Err(format!("--workers: invalid value {v:?} (must be positive)"));
                }
            }
            "--max-pipeline" => {
                let v = value("--max-pipeline")?;
                args.serve.max_pipeline = parse_value("--max-pipeline", &v, "a positive integer")?;
                if args.serve.max_pipeline == 0 {
                    return Err(format!(
                        "--max-pipeline: invalid value {v:?} (must be positive)"
                    ));
                }
            }
            "--max-line" => {
                let v = value("--max-line")?;
                args.serve.max_line = parse_value("--max-line", &v, "a byte count")?;
                if args.serve.max_line < 16 {
                    return Err(format!(
                        "--max-line: invalid value {v:?} (must be at least 16 bytes)"
                    ));
                }
            }
            "--queue" => {
                let v = value("--queue")?;
                args.serve.queue_capacity = parse_value("--queue", &v, "a positive integer")?;
                if args.serve.queue_capacity == 0 {
                    return Err(format!("--queue: invalid value {v:?} (must be positive)"));
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.snapshot.is_some() && args.preload > 0 {
        return Err(
            "--snapshot and --preload are mutually exclusive (the snapshot \
                    already holds a corpus)"
                .to_owned(),
        );
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lexequald: {e}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let mut match_config = MatchConfig::default();
    if let Some(e) = args.threshold {
        match_config = match_config.with_threshold(e);
    }

    let service = if let Some(path) = &args.snapshot {
        let start = Instant::now();
        match MatchService::load_snapshot(match_config.clone(), args.shards, args.cache, path) {
            Ok(s) => {
                eprintln!(
                    "lexequald: snapshot {path:?} restored: {} names on {} shard(s), \
                     {} access path(s) rebuilt in {:.2?}",
                    s.len(),
                    s.store().shards(),
                    s.store().built_specs().len(),
                    start.elapsed(),
                );
                Arc::new(s)
            }
            Err(e) => {
                eprintln!("lexequald: cannot load snapshot {path:?}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let shards = args.shards.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        let service = Arc::new(MatchService::new(ServiceConfig {
            match_config: match_config.clone(),
            shards,
            cache_capacity: args.cache,
        }));
        if args.preload > 0 {
            eprintln!("lexequald: preloading ~{} synthetic names...", args.preload);
            let dataset = lexequal_service::loadgen::build_dataset(&match_config, args.preload);
            let n = dataset.len();
            service.extend_transformed(dataset);
            service.build_all(3, lexequal::QgramMode::Strict);
            eprintln!("lexequald: {n} names loaded, all access paths built");
        }
        service
    };

    if let Some(path) = &args.save_snapshot {
        let start = Instant::now();
        if let Err(e) = service.save_snapshot(path) {
            eprintln!("lexequald: cannot save snapshot {path:?}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "lexequald: snapshot saved to {path:?} ({} names) in {:.2?}",
            service.len(),
            start.elapsed(),
        );
    }

    let listener = match TcpListener::bind(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("lexequald: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "lexequald: serving on {} with {} shard(s), mode={} workers={} max-pipeline={}",
        listener.local_addr().map_or(args.addr, |a| a.to_string()),
        service.store().shards(),
        args.mode.name(),
        args.serve.workers,
        args.serve.max_pipeline,
    );
    let shutdown = match ShutdownSignal::new() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lexequald: cannot create shutdown signal: {e}");
            return ExitCode::FAILURE;
        }
    };
    match lexequal_service::serve_with(args.mode, listener, service, args.serve, shutdown) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("lexequald: listener failed: {e}");
            ExitCode::FAILURE
        }
    }
}
