//! `lexequald` — the LexEQUAL match daemon.
//!
//! ```text
//! lexequald [--addr HOST:PORT] [--shards N] [--cache N] [--threshold E] [--preload N]
//!           [--cost-model clustered|feature] [--no-embed-screen]
//!           [--snapshot PATH] [--save-snapshot PATH] [--wal PATH]
//!           [--wal-max-bytes N] [--wal-ack-grace SECS]
//!           [--replica-of HOST:PORT] [--repl-listen HOST:PORT]
//!           [--mode evented|threaded] [--workers N] [--max-pipeline N]
//!           [--max-line BYTES] [--queue N]
//! ```
//!
//! Binds a TCP listener and serves the line protocol documented in
//! `lexequal_service::proto` (ADD, BUILD, MATCH, BATCH, STATS, SAVE,
//! QUIT). The default `--mode evented` runs a single epoll readiness
//! loop with a fixed pool of `--workers` verify threads and supports up
//! to `--max-pipeline` in-flight requests per connection; `--mode
//! threaded` is the legacy one-thread-per-connection path.
//!
//! Store population, fastest first:
//!
//! * `--snapshot PATH` — restore the store from a snapshot written by
//!   `--save-snapshot` (or the `SAVE` wire command): a file read plus a
//!   parallel index rebuild, no G2P pass. The store comes back with the
//!   snapshot's own shard count unless `--shards` pins one (which must
//!   then match — re-sharding on load is not supported).
//! * `--preload N` — bulk-load ≈N synthetic names (paper §5 dataset)
//!   and build all access paths before accepting connections.
//!
//! `--save-snapshot PATH` writes the store to PATH once it is populated
//! (after `--preload`, before serving), so the next start can use
//! `--snapshot PATH`. It also becomes the default target for the `SAVE`
//! wire command.
//!
//! Replication (see DESIGN §5e):
//!
//! * `--wal PATH` makes this daemon a **primary**: every mutation
//!   appends to the write-ahead op log (fsynced) before the client sees
//!   `OK`, restart replays the WAL tail past `--snapshot`'s covered
//!   LSN, and `REPL HELLO <lsn>` on any connection opens a replication
//!   stream. `--repl-listen HOST:PORT` additionally serves streams on a
//!   dedicated listener.
//! * `--replica-of HOST:PORT` makes this daemon a **read-only replica**:
//!   it seeds itself with a snapshot transfer from the primary, applies
//!   the op stream continuously (reconnecting with backoff), answers
//!   MATCH/BATCH/STATS locally and rejects mutations with a redirect.
//!
//! WAL compaction (see DESIGN §5i): `--wal-max-bytes N` bounds the log —
//! when it grows past N bytes a background cycle writes a durable mmap
//! checkpoint to `<wal>.checkpoint` and truncates the prefix every
//! in-grace replica has acknowledged (the `COMPACT` wire command runs
//! the same cycle by hand, threshold or not). `--wal-ack-grace SECS`
//! (default 10) is how long a silent replica keeps pinning the horizon
//! before it is written off as a straggler (it re-seeds from a snapshot
//! transfer when it comes back). On startup, if the configured
//! `--snapshot` predates a compacted log (gap), the daemon falls back
//! to `<wal>.checkpoint` automatically; with no `--snapshot` at all the
//! checkpoint is used whenever it exists.

use lexequal::{CostModelKind, MatchConfig};
use lexequal_service::{
    bind_reusable, repl, BuildSpec, CompactionPolicy, MatchService, ReplicaState, Replicator,
    ReqCtx, ServeMode, ServeOptions, ServiceConfig, ShutdownSignal, SnapshotFormat, Wal, WalError,
    WalMetrics,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: lexequald [--addr HOST:PORT] [--shards N] [--cache N] \
[--threshold E] [--preload N] [--cost-model clustered|feature] [--no-embed-screen] \
[--snapshot PATH] [--save-snapshot PATH] \
[--snapshot-format mmap|json] [--wal PATH] [--wal-max-bytes N] [--wal-ack-grace SECS] \
[--replica-of HOST:PORT] [--repl-listen HOST:PORT] \
[--mode evented|threaded] [--workers N] [--max-pipeline N] [--max-line BYTES] [--queue N]";

struct Args {
    addr: String,
    /// `None` until `--shards` is given: a snapshot load then adopts the
    /// snapshot's own shard count instead of guessing.
    shards: Option<usize>,
    cache: usize,
    threshold: Option<f64>,
    /// `None` = default (clustered); `--cost-model feature` switches
    /// substitutions to the articulatory-feature-graded matrix.
    cost_model: Option<CostModelKind>,
    /// `--no-embed-screen` disables the embedding prefilter (ablation /
    /// A-B benchmarking; results are bit-identical either way).
    embed_screen: bool,
    preload: usize,
    snapshot: Option<String>,
    save_snapshot: Option<String>,
    /// `None` = default (binary mmap); `--snapshot-format json` keeps
    /// the debug/export document for `--save-snapshot` and `SAVE`.
    snapshot_format: Option<SnapshotFormat>,
    wal: Option<String>,
    /// Size threshold for background WAL compaction (`None` = only the
    /// explicit `COMPACT` command compacts).
    wal_max_bytes: Option<u64>,
    /// Straggler grace in seconds before a silent replica stops
    /// pinning the compaction horizon (`None` = default).
    wal_ack_grace: Option<u64>,
    replica_of: Option<String>,
    repl_listen: Option<String>,
    mode: ServeMode,
    serve: ServeOptions,
}

/// Parse one flag's value, naming the flag *and* the offending value in
/// the error — every numeric flag goes through here so bad input always
/// reads the same way: `--shards: invalid value "x" (expected ...)`.
fn parse_value<T: std::str::FromStr>(flag: &str, value: &str, expected: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: invalid value {value:?} (expected {expected})"))
}

/// Addresses must at least look like `HOST:PORT`; catching this at parse
/// time beats a confusing connect/bind error later.
fn parse_addr(flag: &str, value: String) -> Result<String, String> {
    if !value.contains(':') {
        return Err(format!(
            "{flag}: invalid value {value:?} (expected HOST:PORT)"
        ));
    }
    Ok(value)
}

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7077".to_owned(),
        shards: None,
        cache: 4096,
        threshold: None,
        cost_model: None,
        embed_screen: true,
        preload: 0,
        snapshot: None,
        save_snapshot: None,
        snapshot_format: None,
        wal: None,
        wal_max_bytes: None,
        wal_ack_grace: None,
        replica_of: None,
        repl_listen: None,
        mode: ServeMode::Evented,
        serve: ServeOptions::default(),
    };
    let mut it = argv;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = parse_addr("--addr", value("--addr")?)?,
            "--snapshot" => args.snapshot = Some(value("--snapshot")?),
            "--save-snapshot" => args.save_snapshot = Some(value("--save-snapshot")?),
            "--snapshot-format" => {
                let v = value("--snapshot-format")?;
                args.snapshot_format = Some(match v.to_ascii_lowercase().as_str() {
                    "mmap" | "binary" => SnapshotFormat::Mmap,
                    "json" => SnapshotFormat::Json,
                    _ => {
                        return Err(format!(
                            "--snapshot-format: invalid value {v:?} (expected mmap or json)"
                        ))
                    }
                });
            }
            "--wal" => args.wal = Some(value("--wal")?),
            "--wal-max-bytes" => {
                let v = value("--wal-max-bytes")?;
                let n: u64 = parse_value("--wal-max-bytes", &v, "a positive byte count")?;
                if n == 0 {
                    return Err(format!(
                        "--wal-max-bytes: invalid value {v:?} (must be positive)"
                    ));
                }
                args.wal_max_bytes = Some(n);
            }
            "--wal-ack-grace" => {
                let v = value("--wal-ack-grace")?;
                args.wal_ack_grace =
                    Some(parse_value("--wal-ack-grace", &v, "a number of seconds")?);
            }
            "--replica-of" => {
                args.replica_of = Some(parse_addr("--replica-of", value("--replica-of")?)?);
            }
            "--repl-listen" => {
                args.repl_listen = Some(parse_addr("--repl-listen", value("--repl-listen")?)?);
            }
            "--shards" => {
                let v = value("--shards")?;
                let n: usize = parse_value("--shards", &v, "a positive integer")?;
                if n == 0 {
                    return Err(format!("--shards: invalid value {v:?} (must be positive)"));
                }
                args.shards = Some(n);
            }
            "--cache" => {
                args.cache = parse_value("--cache", &value("--cache")?, "an integer")?;
            }
            "--threshold" => {
                let v = value("--threshold")?;
                let e: f64 = parse_value("--threshold", &v, "a number in [0,1]")?;
                if !(0.0..=1.0).contains(&e) {
                    return Err(format!(
                        "--threshold: invalid value {v:?} (must be in [0,1])"
                    ));
                }
                args.threshold = Some(e);
            }
            "--cost-model" => {
                let v = value("--cost-model")?;
                args.cost_model = Some(match v.to_ascii_lowercase().as_str() {
                    "clustered" => CostModelKind::Clustered,
                    "feature" => CostModelKind::Feature,
                    _ => {
                        return Err(format!(
                            "--cost-model: invalid value {v:?} (expected clustered or feature)"
                        ))
                    }
                });
            }
            "--no-embed-screen" => args.embed_screen = false,
            "--preload" => {
                args.preload = parse_value("--preload", &value("--preload")?, "an integer")?;
            }
            "--mode" => {
                let v = value("--mode")?;
                args.mode = parse_value("--mode", &v, "evented or threaded")?;
            }
            "--workers" => {
                let v = value("--workers")?;
                args.serve.workers = parse_value("--workers", &v, "a positive integer")?;
                if args.serve.workers == 0 {
                    return Err(format!("--workers: invalid value {v:?} (must be positive)"));
                }
            }
            "--max-pipeline" => {
                let v = value("--max-pipeline")?;
                args.serve.max_pipeline = parse_value("--max-pipeline", &v, "a positive integer")?;
                if args.serve.max_pipeline == 0 {
                    return Err(format!(
                        "--max-pipeline: invalid value {v:?} (must be positive)"
                    ));
                }
            }
            "--max-line" => {
                let v = value("--max-line")?;
                args.serve.max_line = parse_value("--max-line", &v, "a byte count")?;
                if args.serve.max_line < 16 {
                    return Err(format!(
                        "--max-line: invalid value {v:?} (must be at least 16 bytes)"
                    ));
                }
            }
            "--queue" => {
                let v = value("--queue")?;
                args.serve.queue_capacity = parse_value("--queue", &v, "a positive integer")?;
                if args.serve.queue_capacity == 0 {
                    return Err(format!("--queue: invalid value {v:?} (must be positive)"));
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.snapshot.is_some() && args.preload > 0 {
        return Err(
            "--snapshot and --preload are mutually exclusive (the snapshot \
                    already holds a corpus)"
                .to_owned(),
        );
    }
    if args.replica_of.is_some() {
        // A replica's store is owned by the primary's stream end to end:
        // no local WAL, no local seeding, no snapshots of its own.
        for (flag, set) in [
            ("--wal", args.wal.is_some()),
            ("--snapshot", args.snapshot.is_some()),
            ("--save-snapshot", args.save_snapshot.is_some()),
            ("--repl-listen", args.repl_listen.is_some()),
            ("--preload", args.preload > 0),
        ] {
            if set {
                return Err(format!(
                    "--replica-of and {flag} are mutually exclusive (a replica \
                     seeds itself from the primary)"
                ));
            }
        }
    }
    if args.repl_listen.is_some() && args.wal.is_none() {
        return Err("--repl-listen requires --wal (only a primary serves replicas)".to_owned());
    }
    for (flag, set) in [
        ("--wal-max-bytes", args.wal_max_bytes.is_some()),
        ("--wal-ack-grace", args.wal_ack_grace.is_some()),
    ] {
        if set && args.wal.is_none() {
            return Err(format!(
                "{flag} requires --wal (compaction bounds the write-ahead log)"
            ));
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lexequald: {e}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let mut match_config = MatchConfig::default();
    if let Some(e) = args.threshold {
        match_config = match_config.with_threshold(e);
    }
    if let Some(kind) = args.cost_model {
        match_config = match_config.with_cost_model(kind);
    }
    if !args.embed_screen {
        match_config = match_config.with_embed_screen(false);
    }

    if args.replica_of.is_some() {
        return run_replica_daemon(&args, match_config);
    }

    // Recovery candidates, preferred first: the explicit --snapshot,
    // then the compaction checkpoint (<wal>.checkpoint) when one
    // exists, then a fresh store. A candidate too old for a compacted
    // log (WAL gap) falls through to the next — the checkpoint is
    // written durably before any truncation precisely so this chain
    // always lands (DESIGN §5i).
    let checkpoint_path = args.wal.as_ref().map(|w| format!("{w}.checkpoint"));
    let mut candidates: Vec<String> = Vec::new();
    if let Some(s) = &args.snapshot {
        candidates.push(s.clone());
    }
    if let Some(c) = &checkpoint_path {
        if std::path::Path::new(c).exists() {
            if args.preload > 0 {
                eprintln!(
                    "lexequald: refusing --preload: wal checkpoint {c:?} exists and \
                     already holds a corpus (remove it to start fresh)"
                );
                return ExitCode::FAILURE;
            }
            candidates.push(c.clone());
        }
    }

    let mut candidate = 0usize;
    let (service, replicator, pending_builds, pending_embeds) = loop {
        let (service, base_lsn, pending_builds, pending_embeds) = match candidates.get(candidate) {
            Some(path) => match load_snapshot_service(path, &match_config, &args) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("lexequald: cannot load snapshot {path:?}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => fresh_service(&match_config, &args),
        };

        // With --wal this daemon is a primary: recover the tail past the
        // snapshot, then commit every future mutation through the log.
        let Some(path) = &args.wal else {
            break (service, None, pending_builds, pending_embeds);
        };
        let start = Instant::now();
        let metrics = Arc::new(WalMetrics::default());
        let (wal, tail) = match Wal::open(path, base_lsn, Arc::clone(&metrics)) {
            Ok(v) => v,
            Err(e @ WalError::Gap { .. }) if candidate + 1 < candidates.len() => {
                eprintln!(
                    "lexequald: snapshot {:?} predates the compacted wal {path:?} ({e}); \
                     falling back to {:?}",
                    candidates[candidate],
                    candidates[candidate + 1],
                );
                candidate += 1;
                continue;
            }
            Err(e) => {
                eprintln!("lexequald: cannot open wal {path:?}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let replayed = tail.len();
        let mut replay_failed = false;
        for record in tail {
            if let Err(e) = service.apply_op(&record.op) {
                eprintln!(
                    "lexequald: cannot replay wal {path:?} record lsn {}: {e:?}",
                    record.lsn
                );
                replay_failed = true;
                break;
            }
        }
        if replay_failed {
            return ExitCode::FAILURE;
        }
        eprintln!(
            "lexequald: wal {path:?} replayed {replayed} op(s), head lsn {} in {:.2?}",
            wal.head_lsn(),
            start.elapsed(),
        );
        break (
            service,
            Some(Replicator::new(wal, metrics)),
            pending_builds,
            pending_embeds,
        );
    };

    // Compaction policy: the checkpoint target is fixed next to the
    // wal, so recovery always knows where to look; the byte threshold
    // arms the background compactor below.
    if let Some(repl) = &replicator {
        repl.set_compaction_policy(CompactionPolicy {
            checkpoint: checkpoint_path.as_ref().map(PathBuf::from),
            max_bytes: args.wal_max_bytes,
            grace: args
                .wal_ack_grace
                .map_or(repl::DEFAULT_ACK_GRACE, Duration::from_secs),
        });
    }

    // An mmap load defers index rebuilds: the scan path serves
    // immediately, and the recorded access paths come up in the
    // background. This runs strictly AFTER WAL-tail replay — replayed
    // mutations invalidate built paths, so building first would waste
    // the work. With --save-snapshot the builds run synchronously
    // instead: the saved image records `built_specs()`, and an image
    // captured while the rebuild was still pending would record zero
    // access paths — permanently scan-only for any daemon loading it,
    // since there is no wire BUILD command to recover them.
    if !pending_builds.is_empty() {
        if args.save_snapshot.is_some() {
            let start = Instant::now();
            let n = pending_builds.len();
            for spec in pending_builds {
                service.build(spec);
            }
            eprintln!(
                "lexequald: {n} access path(s) rebuilt before snapshot save in {:.2?}",
                start.elapsed()
            );
        } else {
            let service = Arc::clone(&service);
            std::thread::Builder::new()
                .name("lexequald-bg-build".to_owned())
                .spawn(move || {
                    let start = Instant::now();
                    let n = pending_builds.len();
                    for spec in pending_builds {
                        service.build(spec);
                    }
                    eprintln!(
                        "lexequald: {n} access path(s) rebuilt in background in {start:?}",
                        start = start.elapsed()
                    );
                })
                .expect("spawn background index build");
        }
    }

    // A v1 snapshot image predates the embedding column: serve
    // immediately (the embedding screen bypasses per missing entry —
    // results are identical, just without the prefilter speedup) and
    // backfill in the background. Snapshot saves don't depend on this:
    // the encoder recomputes embeddings from the phoneme column.
    if pending_embeds {
        let service = Arc::clone(&service);
        std::thread::Builder::new()
            .name("lexequald-bg-embed".to_owned())
            .spawn(move || {
                let start = Instant::now();
                let n = service.build_embeddings();
                eprintln!(
                    "lexequald: {n} phonetic embedding(s) backfilled in background in {:.2?}",
                    start.elapsed()
                );
            })
            .expect("spawn background embedding backfill");
    }

    let save_format = args.snapshot_format.unwrap_or(SnapshotFormat::Mmap);
    if let Some(path) = &args.save_snapshot {
        let start = Instant::now();
        let saved = match &replicator {
            Some(repl) => repl
                .save_snapshot_atomic_format(&service, std::path::Path::new(path), save_format)
                .map(|_| ()),
            None => service.save_snapshot_with_lsn_format(path, 0, save_format),
        };
        if let Err(e) = saved {
            eprintln!("lexequald: cannot save snapshot {path:?}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "lexequald: snapshot saved to {path:?} ({} names, format={}) in {:.2?}",
            service.len(),
            save_format.name(),
            start.elapsed(),
        );
    }

    let shutdown = match ShutdownSignal::new() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lexequald: cannot create shutdown signal: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Background compactor: polls the live byte count and runs a
    // checkpoint-and-truncate cycle whenever the log outgrows the
    // threshold (DESIGN §5i). Explicit COMPACT works regardless.
    if let Some(repl) = &replicator {
        if args.wal_max_bytes.is_some() {
            repl.adopt_thread(repl::spawn_compactor(
                Arc::clone(repl),
                Arc::clone(&service),
                shutdown.clone(),
            ));
        }
    }

    // Optional dedicated replication listener (streams also work on the
    // main address; this isolates them for firewalling or QoS).
    let repl_thread = match (&replicator, &args.repl_listen) {
        (Some(repl), Some(addr)) => {
            let listener = match bind_reusable(addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("lexequald: cannot bind replication listener {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("lexequald: replication listener on {addr}");
            let service = Arc::clone(&service);
            let repl = Arc::clone(repl);
            let shutdown = shutdown.clone();
            Some(
                std::thread::Builder::new()
                    .name("lexequald-repl-accept".to_owned())
                    .spawn(move || {
                        if let Err(e) = repl::serve_repl_listener(listener, service, repl, shutdown)
                        {
                            eprintln!("lexequald: replication listener failed: {e}");
                        }
                    })
                    .expect("spawn replication listener"),
            )
        }
        _ => None,
    };

    let listener = match bind_reusable(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("lexequald: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "lexequald: serving on {} with {} shard(s), mode={} workers={} max-pipeline={}{}",
        listener.local_addr().map_or(args.addr, |a| a.to_string()),
        service.store().shards(),
        args.mode.name(),
        args.serve.workers,
        args.serve.max_pipeline,
        if replicator.is_some() {
            " role=primary"
        } else {
            ""
        },
    );
    let ctx = ReqCtx {
        repl: replicator.clone(),
        replica: None,
        save_path: args
            .save_snapshot
            .as_ref()
            .or(args.snapshot.as_ref())
            .map(PathBuf::from),
    };
    let result = lexequal_service::serve_ctx(args.mode, listener, service, ctx, args.serve, {
        shutdown.clone()
    });
    shutdown.trigger();
    if let Some(repl) = &replicator {
        repl.stop_and_join();
    }
    if let Some(handle) = repl_thread {
        let _ = handle.join();
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("lexequald: listener failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// One startup recovery candidate, loaded: the serving handle, the WAL
/// LSN it covers, any index rebuilds an mmap load deferred, and whether
/// the image predates the embedding column (v1 → backfill needed).
type LoadedService = (Arc<MatchService>, u64, Vec<BuildSpec>, bool);

/// Restore the store from a snapshot (or checkpoint) file, announcing
/// how it loaded. Shared by every recovery candidate in `main`.
fn load_snapshot_service(
    path: &str,
    match_config: &MatchConfig,
    args: &Args,
) -> Result<LoadedService, String> {
    let load =
        MatchService::load_snapshot_auto(match_config.clone(), args.shards, args.cache, path)
            .map_err(|e| e.to_string())?;
    match load.format {
        SnapshotFormat::Mmap => eprintln!(
            "lexequald: snapshot {path:?} loaded via mmap: {} names on {} \
             shard(s), {} bytes mapped, serve-ready in {}ms \
             ({} access path(s) deferred to background rebuild)",
            load.service.len(),
            load.service.store().shards(),
            load.mapped_bytes,
            load.load_ms,
            load.pending_builds.len(),
        ),
        SnapshotFormat::Json => eprintln!(
            "lexequald: snapshot {path:?} loaded via json parse: {} names on {} \
             shard(s), {} access path(s) rebuilt in {}ms",
            load.service.len(),
            load.service.store().shards(),
            load.service.store().built_specs().len(),
            load.load_ms,
        ),
    }
    Ok((
        Arc::new(load.service),
        load.lsn,
        load.pending_builds,
        load.pending_embeds,
    ))
}

/// No snapshot and no checkpoint: an empty store (optionally bulk-seeded
/// via `--preload`) starting at LSN 0.
fn fresh_service(match_config: &MatchConfig, args: &Args) -> LoadedService {
    let shards = args.shards.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    });
    let service = Arc::new(MatchService::new(ServiceConfig {
        match_config: match_config.clone(),
        shards,
        cache_capacity: args.cache,
    }));
    if args.preload > 0 {
        eprintln!("lexequald: preloading ~{} synthetic names...", args.preload);
        let dataset = lexequal_service::loadgen::build_dataset(match_config, args.preload);
        let n = dataset.len();
        service.extend_transformed(dataset);
        service.build_all(3, lexequal::QgramMode::Strict);
        eprintln!("lexequald: {n} names loaded, all access paths built");
    }
    (service, 0, Vec::new(), false)
}

/// The `--replica-of` daemon: seed from the primary's snapshot stream,
/// keep applying ops on a background thread, serve reads locally.
fn run_replica_daemon(args: &Args, match_config: MatchConfig) -> ExitCode {
    let primary = args.replica_of.clone().expect("replica_of checked");
    let state = Arc::new(ReplicaState::new(primary.clone()));
    let shutdown = match ShutdownSignal::new() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lexequald: cannot create shutdown signal: {e}");
            return ExitCode::FAILURE;
        }
    };
    let start = Instant::now();
    eprintln!("lexequald: replica of {primary}: waiting for initial sync...");
    let (service, stream, reader) = match repl::initial_sync(
        &primary,
        &match_config,
        args.shards,
        args.cache,
        &state,
        &shutdown,
    ) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("lexequald: initial sync with {primary} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let service = Arc::new(service);
    let load = service.load_info();
    eprintln!(
        "lexequald: replica synced from {primary}: {} names on {} shard(s) at lsn {} in {:.2?} \
         (transfer format={}, {} bytes, loaded in {}ms)",
        service.len(),
        service.store().shards(),
        state.applied(),
        start.elapsed(),
        load.format,
        load.mapped_bytes,
        load.load_ms,
    );

    let apply_thread = {
        let service = Arc::clone(&service);
        let state = Arc::clone(&state);
        let shutdown = shutdown.clone();
        std::thread::Builder::new()
            .name("lexequald-apply".to_owned())
            .spawn(move || {
                if let Err(e) =
                    repl::run_replica(&service, &state, Some((stream, reader)), &shutdown)
                {
                    // A divergent replica cannot limp along serving
                    // stale answers; die loudly so a supervisor reseeds.
                    eprintln!("lexequald: replication stream failed: {e}");
                    std::process::exit(2);
                }
            })
            .expect("spawn replica apply thread")
    };

    let listener = match bind_reusable(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("lexequald: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "lexequald: serving on {} with {} shard(s), mode={} workers={} max-pipeline={} \
         role=replica primary={}",
        listener
            .local_addr()
            .map_or_else(|_| args.addr.clone(), |a| a.to_string()),
        service.store().shards(),
        args.mode.name(),
        args.serve.workers,
        args.serve.max_pipeline,
        primary,
    );
    let ctx = ReqCtx {
        repl: None,
        replica: Some(Arc::clone(&state)),
        save_path: None,
    };
    let result = lexequal_service::serve_ctx(
        args.mode,
        listener,
        service,
        ctx,
        args.serve.clone(),
        shutdown.clone(),
    );
    shutdown.trigger();
    let _ = apply_thread.join();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("lexequald: listener failed: {e}");
            ExitCode::FAILURE
        }
    }
}
