//! `lexequald` — the LexEQUAL match daemon.
//!
//! ```text
//! lexequald [--addr HOST:PORT] [--shards N] [--cache N] [--threshold E] [--preload N]
//!           [--mode evented|threaded] [--workers N] [--max-pipeline N]
//!           [--max-line BYTES] [--queue N]
//! ```
//!
//! Binds a TCP listener and serves the line protocol documented in
//! `lexequal_service::proto` (ADD, BUILD, MATCH, BATCH, STATS, QUIT).
//! The default `--mode evented` runs a single epoll readiness loop with
//! a fixed pool of `--workers` verify threads and supports up to
//! `--max-pipeline` in-flight requests per connection; `--mode
//! threaded` is the legacy one-thread-per-connection path. `--preload
//! N` bulk-loads ≈N synthetic names (paper §5 dataset) and builds all
//! access paths before accepting connections, so a benchmark client can
//! start matching immediately.

use lexequal::MatchConfig;
use lexequal_service::{MatchService, ServeMode, ServeOptions, ServiceConfig, ShutdownSignal};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    addr: String,
    shards: usize,
    cache: usize,
    threshold: Option<f64>,
    preload: usize,
    mode: ServeMode,
    serve: ServeOptions,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7077".to_owned(),
        shards: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        cache: 4096,
        threshold: None,
        preload: 0,
        mode: ServeMode::Evented,
        serve: ServeOptions::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|_| "--shards: expected a positive integer".to_owned())?;
                if args.shards == 0 {
                    return Err("--shards must be positive".to_owned());
                }
            }
            "--cache" => {
                args.cache = value("--cache")?
                    .parse()
                    .map_err(|_| "--cache: expected an integer".to_owned())?;
            }
            "--threshold" => {
                let e: f64 = value("--threshold")?
                    .parse()
                    .map_err(|_| "--threshold: expected a number".to_owned())?;
                if !(0.0..=1.0).contains(&e) {
                    return Err("--threshold must be in [0,1]".to_owned());
                }
                args.threshold = Some(e);
            }
            "--preload" => {
                args.preload = value("--preload")?
                    .parse()
                    .map_err(|_| "--preload: expected an integer".to_owned())?;
            }
            "--mode" => args.mode = value("--mode")?.parse()?,
            "--workers" => {
                args.serve.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers: expected a positive integer".to_owned())?;
                if args.serve.workers == 0 {
                    return Err("--workers must be positive".to_owned());
                }
            }
            "--max-pipeline" => {
                args.serve.max_pipeline = value("--max-pipeline")?
                    .parse()
                    .map_err(|_| "--max-pipeline: expected a positive integer".to_owned())?;
                if args.serve.max_pipeline == 0 {
                    return Err("--max-pipeline must be positive".to_owned());
                }
            }
            "--max-line" => {
                args.serve.max_line = value("--max-line")?
                    .parse()
                    .map_err(|_| "--max-line: expected a byte count".to_owned())?;
                if args.serve.max_line < 16 {
                    return Err("--max-line must be at least 16 bytes".to_owned());
                }
            }
            "--queue" => {
                args.serve.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|_| "--queue: expected a positive integer".to_owned())?;
                if args.serve.queue_capacity == 0 {
                    return Err("--queue must be positive".to_owned());
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: lexequald [--addr HOST:PORT] [--shards N] [--cache N] \
                     [--threshold E] [--preload N] [--mode evented|threaded] [--workers N] \
                     [--max-pipeline N] [--max-line BYTES] [--queue N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lexequald: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut match_config = MatchConfig::default();
    if let Some(e) = args.threshold {
        match_config = match_config.with_threshold(e);
    }
    let service = Arc::new(MatchService::new(ServiceConfig {
        match_config: match_config.clone(),
        shards: args.shards,
        cache_capacity: args.cache,
    }));

    if args.preload > 0 {
        eprintln!("lexequald: preloading ~{} synthetic names...", args.preload);
        let dataset = lexequal_service::loadgen::build_dataset(&match_config, args.preload);
        let n = dataset.len();
        service.extend_transformed(dataset);
        service.build_all(3, lexequal::QgramMode::Strict);
        eprintln!("lexequald: {n} names loaded, all access paths built");
    }

    let listener = match TcpListener::bind(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("lexequald: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "lexequald: serving on {} with {} shard(s), mode={} workers={} max-pipeline={}",
        listener.local_addr().map_or(args.addr, |a| a.to_string()),
        args.shards,
        args.mode.name(),
        args.serve.workers,
        args.serve.max_pipeline,
    );
    let shutdown = match ShutdownSignal::new() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lexequald: cannot create shutdown signal: {e}");
            return ExitCode::FAILURE;
        }
    };
    match lexequal_service::serve_with(args.mode, listener, service, args.serve, shutdown) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("lexequald: listener failed: {e}");
            ExitCode::FAILURE
        }
    }
}
