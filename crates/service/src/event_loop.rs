//! The evented `lexequald` serving path: a single-threaded epoll
//! readiness loop driving nonblocking pipelined connections, with
//! verification decoupled onto a small fixed pool of worker threads.
//!
//! The whole machine runs on a constant number of threads regardless of
//! connection count — the event loop plus `workers` dispatch threads
//! (which in turn lean on the existing shard workers, each owning a warm
//! [`lexequal::BatchVerifier`] that disposes of its access path's
//! candidate stream in interleaved lane-batched steps):
//!
//! ```text
//!              epoll readiness loop (1 thread)
//!   accept ──▶ read ──▶ frame lines ──▶ parse ──▶ dispatch ┐
//!     ▲                                                    ▼
//!     │                                        per-worker bounded queues
//!     │                                                    │
//!     │        eventfd wake ◀── completion queue ◀── worker threads
//!     │                │                              (lookup via the
//!     └── write ◀── fill response slot                 shard workers)
//! ```
//!
//! * **Pipelining** — a client may have many request lines in flight on
//!   one connection; each parsed request reserves an in-order response
//!   slot, completions fill slots by sequence number, and the write side
//!   only ever flushes the contiguous completed prefix, so responses go
//!   back in request order no matter how workers interleave.
//! * **Backpressure** — the loop stops polling a connection's readable
//!   side when its in-flight window is full, its outbound buffer passes
//!   the high-water mark, or its next job found every worker queue full
//!   (the job parks on the connection until a completion drains).
//! * **Ordering** — jobs route to a worker by connection token, and each
//!   worker drains its queue FIFO, so requests from one connection
//!   execute in arrival order (a pipelined `ADD` is visible to the
//!   `MATCH` behind it). Consecutive `MATCH` jobs are fanned out to the
//!   shards together before any of them is merged, so one worker keeps
//!   every shard busy.
//!
//! No new dependencies: the epoll/eventfd surface is four `extern "C"`
//! shims over the libc that `std` already links.

use crate::conn::{Conn, WRITE_HIGH_WATER};
use crate::metrics::ConnMetrics;
use crate::proto::{format_outcome, parse_request, FrameError, Request};
use crate::server::{execute_request, ReqCtx, ServeOptions};
use crate::service::MatchService;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Read};
use std::net::TcpListener;
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Raw syscall shims. `std` links libc, so these symbols are always
/// present on the Linux targets this daemon supports; no crate needed.
mod sys {
    use std::ffi::{c_int, c_uint, c_void};

    /// One epoll event. x86-64 packs this struct (kernel ABI quirk);
    /// every other architecture uses natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy, Default)]
    pub struct EpollEvent {
        /// Readiness bits (`EPOLLIN` | `EPOLLOUT` | ...).
        pub events: u32,
        /// Caller-owned token echoed back on readiness.
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }
}

pub(crate) use sys::{EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};

/// A thin owned wrapper over an `eventfd(2)` file descriptor: a 64-bit
/// kernel counter that epoll can wait on. Writers bump it ([`signal`]),
/// the event loop reads it back to zero ([`drain`]).
///
/// [`signal`]: EventFd::signal
/// [`drain`]: EventFd::drain
#[derive(Debug)]
struct EventFd {
    fd: RawFd,
}

impl EventFd {
    fn new() -> io::Result<Self> {
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EventFd { fd })
    }

    /// Bump the counter, waking any epoll waiter. A full counter
    /// (`EAGAIN`) already guarantees a pending wake, so it's not an error.
    fn signal(&self) {
        let one = 1u64.to_ne_bytes();
        loop {
            let n = unsafe { sys::write(self.fd, one.as_ptr().cast(), one.len()) };
            if n >= 0 || io::Error::last_os_error().kind() != io::ErrorKind::Interrupted {
                return;
            }
        }
    }

    /// Read the counter back to zero so level-triggered epoll quiesces.
    fn drain(&self) {
        let mut buf = [0u8; 8];
        loop {
            let n = unsafe { sys::read(self.fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n >= 0 {
                return;
            }
            if io::Error::last_os_error().kind() != io::ErrorKind::Interrupted {
                return;
            }
        }
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

/// A cooperative stop signal shared between a serving loop and whoever
/// wants it to exit (tests, a supervisor, a signal handler).
///
/// Both serving paths honor it: the evented loop epolls the underlying
/// `eventfd` and exits on the very next readiness wake; the threaded
/// path's accept loop and handler threads poll the flag on short
/// timeouts. [`trigger`](Self::trigger) is idempotent and safe from any
/// thread.
#[derive(Clone, Debug)]
pub struct ShutdownSignal {
    inner: Arc<ShutdownInner>,
}

#[derive(Debug)]
struct ShutdownInner {
    flag: AtomicBool,
    efd: EventFd,
}

impl ShutdownSignal {
    /// A fresh, untriggered signal.
    pub fn new() -> io::Result<Self> {
        Ok(ShutdownSignal {
            inner: Arc::new(ShutdownInner {
                flag: AtomicBool::new(false),
                efd: EventFd::new()?,
            }),
        })
    }

    /// Ask every listener on this signal to stop.
    pub fn trigger(&self) {
        self.inner.flag.store(true, Ordering::Release);
        self.inner.efd.signal();
    }

    /// Whether [`trigger`](Self::trigger) has been called.
    pub fn is_triggered(&self) -> bool {
        self.inner.flag.load(Ordering::Acquire)
    }

    fn fd(&self) -> RawFd {
        self.inner.efd.fd
    }
}

/// An owned epoll instance.
struct Poller {
    epfd: RawFd,
}

impl Poller {
    fn new() -> io::Result<Self> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: std::ffi::c_int, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    fn delete(&self, fd: RawFd) {
        let _ = self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Block until readiness; returns how many `events` are filled.
    /// `EINTR` reports zero events rather than an error.
    fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let n = unsafe {
            sys::epoll_wait(
                self.epfd,
                events.as_mut_ptr(),
                events.len() as std::ffi::c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

/// One parsed request travelling from the event loop to a worker.
#[derive(Debug)]
pub(crate) struct Job {
    pub token: u64,
    pub seq: u64,
    pub request: Request,
}

/// One finished response travelling back to the event loop.
struct Completion {
    token: u64,
    seq: u64,
    lines: Vec<String>,
}

/// Worker → event-loop channel: a mutexed batch plus an eventfd wake.
struct CompletionQueue {
    items: Mutex<Vec<Completion>>,
    wake: EventFd,
}

impl CompletionQueue {
    fn new() -> io::Result<Self> {
        Ok(CompletionQueue {
            items: Mutex::new(Vec::new()),
            wake: EventFd::new()?,
        })
    }

    fn push(&self, mut batch: Vec<Completion>) {
        if batch.is_empty() {
            return;
        }
        self.items
            .lock()
            .expect("completion lock")
            .append(&mut batch);
        self.wake.signal();
    }

    fn drain(&self) -> Vec<Completion> {
        self.wake.drain();
        std::mem::take(&mut *self.items.lock().expect("completion lock"))
    }
}

/// One worker's bounded FIFO of jobs.
struct WorkerQueue {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
    capacity: usize,
}

/// How many jobs one worker drains per wakeup. Consecutive `MATCH` jobs
/// in a drained batch are fanned out to the shards together before any
/// merge, so even a single worker keeps every shard busy.
const WORKER_BATCH: usize = 16;

/// The fixed verify-dispatch pool. Jobs route to `queues[token % n]`,
/// which preserves per-connection execution order (each queue drains
/// FIFO); verification itself happens on the shard workers' warm
/// [`lexequal::BatchVerifier`]s, reached through [`MatchService`].
struct WorkerPool {
    queues: Vec<Arc<WorkerQueue>>,
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
    metrics: Arc<ConnMetrics>,
}

impl WorkerPool {
    fn new(
        workers: usize,
        queue_capacity: usize,
        service: Arc<MatchService>,
        ctx: ReqCtx,
        completions: Arc<CompletionQueue>,
        metrics: Arc<ConnMetrics>,
    ) -> Self {
        let workers = workers.max(1);
        let per_queue = (queue_capacity / workers).max(8);
        let stop = Arc::new(AtomicBool::new(false));
        let mut queues = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let queue = Arc::new(WorkerQueue {
                jobs: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                capacity: per_queue,
            });
            queues.push(Arc::clone(&queue));
            let service = Arc::clone(&service);
            let ctx = ctx.clone();
            let completions = Arc::clone(&completions);
            let metrics = Arc::clone(&metrics);
            let stop = Arc::clone(&stop);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("lexequald-verify-{i}"))
                    .spawn(move || {
                        worker_loop(&queue, &service, &ctx, &completions, &metrics, &stop)
                    })
                    .expect("spawn verify worker"),
            );
        }
        WorkerPool {
            queues,
            stop,
            handles,
            metrics,
        }
    }

    /// Non-blocking submit; a full queue hands the job back so the
    /// caller can park it on the connection (backpressure, not loss).
    fn try_submit(&self, job: Job) -> Result<(), Job> {
        let queue = &self.queues[job.token as usize % self.queues.len()];
        let mut jobs = queue.jobs.lock().expect("worker queue lock");
        if jobs.len() >= queue.capacity {
            return Err(job);
        }
        jobs.push_back(job);
        drop(jobs);
        self.metrics.queue_pushed();
        queue.available.notify_one();
        Ok(())
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        for queue in &self.queues {
            queue.available.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(
    queue: &WorkerQueue,
    service: &MatchService,
    ctx: &ReqCtx,
    completions: &CompletionQueue,
    metrics: &ConnMetrics,
    stop: &AtomicBool,
) {
    loop {
        let batch: Vec<Job> = {
            let mut jobs = queue.jobs.lock().expect("worker queue lock");
            while jobs.is_empty() {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                jobs = queue.available.wait(jobs).expect("worker queue wait");
            }
            let n = jobs.len().min(WORKER_BATCH);
            jobs.drain(..n).collect()
        };
        metrics.queue_popped(batch.len() as u64);
        let mut out = Vec::with_capacity(batch.len());
        let mut i = 0;
        // Tagged and untagged matches mix in one overlap run; each kind
        // keeps its own pending type.
        enum Begun {
            Tagged(crate::service::PendingLookup),
            Auto(crate::service::AutoPendingLookup),
        }
        let is_match = |r: &Request| matches!(r, Request::Match(_) | Request::MatchAuto(_));
        while i < batch.len() {
            if is_match(&batch[i].request) {
                // Overlap a run of consecutive MATCH jobs: enqueue every
                // fan-out before merging any of them. Runs never cross a
                // non-MATCH job, so a pipelined ADD/BUILD still happens
                // before the MATCH behind it.
                let run_end = batch[i..]
                    .iter()
                    .position(|j| !is_match(&j.request))
                    .map_or(batch.len(), |p| i + p);
                let pending: Vec<_> = batch[i..run_end]
                    .iter()
                    .map(|job| match &job.request {
                        Request::Match(req) => Begun::Tagged(service.lookup_begin(req)),
                        Request::MatchAuto(req) => Begun::Auto(service.lookup_auto_begin(req)),
                        _ => unreachable!("run contains only MATCH jobs"),
                    })
                    .collect();
                for (job, p) in batch[i..run_end].iter().zip(pending) {
                    let outcome = match p {
                        Begun::Tagged(p) => service.lookup_finish(p),
                        Begun::Auto(p) => service.lookup_auto_finish(p),
                    };
                    out.push(Completion {
                        token: job.token,
                        seq: job.seq,
                        lines: vec![format_outcome(&outcome)],
                    });
                }
                i = run_end;
            } else {
                let job = &batch[i];
                out.push(Completion {
                    token: job.token,
                    seq: job.seq,
                    lines: execute_request(service, ctx, &job.request, Some(metrics)),
                });
                i += 1;
            }
        }
        completions.push(out);
    }
}

/// Whether the loop should pull more bytes off this socket right now
/// (the backpressure rule, applied at the read side).
fn reads_wanted(conn: &Conn, max_pipeline: usize) -> bool {
    !conn.quitting
        && !conn.peer_gone
        && conn.handoff.is_none()
        && conn.blocked_job.is_none()
        && conn.inflight < max_pipeline
        && conn.out_backlog() < WRITE_HIGH_WATER
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const TOKEN_SHUTDOWN: u64 = 2;
const FIRST_CONN_TOKEN: u64 = 3;

/// Per-wake read budget per connection: enough to drain a burst, small
/// enough that one firehose connection cannot starve the rest
/// (level-triggered epoll re-fires for whatever remains).
const READ_BUDGET: usize = 64 * 1024;

/// Serve connections on an epoll readiness loop until `shutdown` fires.
///
/// Thread count is a constant: this loop plus `opts.workers` dispatch
/// threads (plus the shard workers the service already owns) — it does
/// not grow with connections. See the [module docs](self) for the
/// pipelining, backpressure, and ordering rules.
pub fn serve_evented(
    listener: TcpListener,
    service: Arc<MatchService>,
    opts: ServeOptions,
    shutdown: ShutdownSignal,
) -> io::Result<()> {
    serve_evented_ctx(listener, service, ReqCtx::default(), opts, shutdown)
}

/// [`serve_evented`] with a request context. On a primary, a
/// `REPL HELLO` hands the socket off the event loop onto a dedicated
/// replication sender thread once its pipelined responses have flushed.
pub fn serve_evented_ctx(
    listener: TcpListener,
    service: Arc<MatchService>,
    ctx: ReqCtx,
    opts: ServeOptions,
    shutdown: ShutdownSignal,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let metrics = Arc::new(ConnMetrics::default());
    let completions = Arc::new(CompletionQueue::new()?);
    let pool = WorkerPool::new(
        opts.workers,
        opts.queue_capacity,
        Arc::clone(&service),
        ctx.clone(),
        Arc::clone(&completions),
        Arc::clone(&metrics),
    );
    let poller = Poller::new()?;
    poller.add(listener.as_raw_fd(), TOKEN_LISTENER, EPOLLIN)?;
    poller.add(completions.wake.fd, TOKEN_WAKE, EPOLLIN)?;
    poller.add(shutdown.fd(), TOKEN_SHUTDOWN, EPOLLIN)?;
    EventLoop {
        poller,
        listener,
        service,
        ctx,
        pool,
        completions,
        metrics,
        conns: HashMap::new(),
        blocked: VecDeque::new(),
        next_token: FIRST_CONN_TOKEN,
        max_pipeline: opts.max_pipeline.max(1),
        max_line: opts.max_line.max(1),
    }
    .run(&shutdown)
}

struct EventLoop {
    poller: Poller,
    listener: TcpListener,
    service: Arc<MatchService>,
    ctx: ReqCtx,
    pool: WorkerPool,
    completions: Arc<CompletionQueue>,
    metrics: Arc<ConnMetrics>,
    conns: HashMap<u64, Conn>,
    /// Tokens whose next job found every worker queue full, oldest first.
    blocked: VecDeque<u64>,
    next_token: u64,
    max_pipeline: usize,
    max_line: usize,
}

impl EventLoop {
    fn run(mut self, shutdown: &ShutdownSignal) -> io::Result<()> {
        let mut events = vec![EpollEvent::default(); 256];
        loop {
            let n = self.poller.wait(&mut events, -1)?;
            for ev in &events[..n] {
                // Copy out of the (possibly packed) event before use.
                let (token, bits) = (ev.data, ev.events);
                match token {
                    TOKEN_SHUTDOWN => return Ok(()),
                    TOKEN_LISTENER => self.accept_ready()?,
                    TOKEN_WAKE => self.drain_completions(),
                    _ => self.conn_event(token, bits),
                }
            }
            if shutdown.is_triggered() {
                return Ok(());
            }
        }
    }

    fn accept_ready(&mut self) -> io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self.poller.add(stream.as_raw_fd(), token, EPOLLIN).is_err() {
                        continue;
                    }
                    self.conns.insert(token, Conn::new(stream, self.max_line));
                    self.metrics.conn_opened();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient per-connection accept failures (ECONNABORTED
                // and friends) must not take the whole daemon down.
                Err(_) => return Ok(()),
            }
        }
    }

    fn conn_event(&mut self, token: u64, bits: u32) {
        if bits & EPOLLERR != 0 {
            self.close_conn(token);
            return;
        }
        let max_pipeline = self.max_pipeline;
        let mut dead = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if bits & EPOLLIN != 0 {
                let mut buf = [0u8; 8192];
                let mut taken = 0usize;
                while taken < READ_BUDGET && reads_wanted(conn, max_pipeline) {
                    match conn.stream.read(&mut buf) {
                        Ok(0) => {
                            conn.peer_gone = true;
                            break;
                        }
                        Ok(n) => {
                            taken += n;
                            conn.framer.push(&buf[..n]);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            dead = true;
                            break;
                        }
                    }
                }
            } else if bits & EPOLLHUP != 0 && bits & EPOLLOUT == 0 {
                dead = true;
            }
        }
        if dead {
            self.close_conn(token);
            return;
        }
        self.advance(token);
    }

    /// Parse framed lines as far as the window allows, dispatch jobs,
    /// flush completed output, and re-register interest — the one
    /// function every readiness source funnels through.
    fn advance(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        while !conn.quitting
            && conn.handoff.is_none()
            && conn.blocked_job.is_none()
            && conn.inflight < self.max_pipeline
            && conn.out_backlog() < WRITE_HIGH_WATER
        {
            match conn.framer.next_line() {
                Ok(Some(line)) => match parse_request(&line) {
                    Ok(None) => {}
                    Err(msg) => conn.enqueue_done(vec![format!("ERR {msg}")]),
                    Ok(Some(Request::Quit)) => {
                        conn.enqueue_done(vec!["BYE".to_owned()]);
                        conn.quitting = true;
                    }
                    Ok(Some(Request::ReplHello { lsn, mmap })) if self.ctx.repl.is_some() => {
                        // Stop reading; once every earlier pipelined
                        // response has flushed, the socket leaves the
                        // event loop for a dedicated sender thread.
                        conn.handoff = Some((lsn, mmap));
                    }
                    Ok(Some(request)) => {
                        let seq = conn.alloc_seq();
                        conn.enqueue_waiting(seq);
                        let depth = conn.inflight as u64;
                        conn.pipeline_peak = conn.pipeline_peak.max(depth);
                        self.metrics.observe_pipeline(depth);
                        if let Err(job) = self.pool.try_submit(Job {
                            token,
                            seq,
                            request,
                        }) {
                            conn.blocked_job = Some(job);
                            self.blocked.push_back(token);
                        }
                    }
                },
                Ok(None) => break,
                Err(FrameError::Oversized(max)) => {
                    conn.enqueue_done(vec![format!("ERR line exceeds {max} bytes")]);
                    conn.quitting = true;
                }
                Err(FrameError::Utf8) => {
                    conn.enqueue_done(vec!["ERR invalid utf-8".to_owned()]);
                    conn.quitting = true;
                }
            }
        }
        if conn.pump_out().is_err() || conn.finished() {
            self.close_conn(token);
            return;
        }
        if conn.handoff.is_some() && conn.ready_for_handoff() {
            self.start_handoff(token);
            return;
        }
        self.update_interest(token);
    }

    /// Lift a handshaken replication connection off the event loop onto
    /// its own sender thread (the stream side is blocking-push, the
    /// opposite of this loop's readiness model).
    fn start_handoff(&mut self, token: u64) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        self.poller.delete(conn.stream.as_raw_fd());
        self.metrics.conn_closed();
        let Some(repl) = self.ctx.repl.clone() else {
            return;
        };
        let stream = conn.stream;
        if stream.set_nonblocking(false).is_err() {
            return;
        }
        let (lsn, mmap) = conn.handoff.unwrap_or((0, false));
        let service = Arc::clone(&self.service);
        let spawned = std::thread::Builder::new()
            .name("lexequald-repl".to_owned())
            .spawn({
                let repl = Arc::clone(&repl);
                move || {
                    // A dropped replica just reconnects; nothing to report.
                    let _ = crate::repl::serve_replica(stream, lsn, mmap, &service, &repl);
                }
            });
        if let Ok(handle) = spawned {
            repl.adopt_thread(handle);
        }
    }

    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut desired = 0u32;
        if !conn.quitting
            && !conn.peer_gone
            && conn.handoff.is_none()
            && conn.blocked_job.is_none()
            && conn.inflight < self.max_pipeline
            && conn.out_backlog() < WRITE_HIGH_WATER
        {
            desired |= EPOLLIN;
        }
        if conn.out_backlog() > 0 {
            desired |= EPOLLOUT;
        }
        if desired != conn.interest {
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), token, desired)
                .is_err()
            {
                self.close_conn(token);
                return;
            }
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.interest = desired;
            }
        }
    }

    fn drain_completions(&mut self) {
        let mut touched: HashSet<u64> = HashSet::new();
        for c in self.completions.drain() {
            if let Some(conn) = self.conns.get_mut(&c.token) {
                if conn.complete(c.seq, c.lines) {
                    touched.insert(c.token);
                }
            }
        }
        // Freed queue slots: retry parked jobs, oldest connection first.
        for _ in 0..self.blocked.len() {
            let Some(token) = self.blocked.pop_front() else {
                break;
            };
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            let Some(job) = conn.blocked_job.take() else {
                continue;
            };
            match self.pool.try_submit(job) {
                Ok(()) => {
                    touched.insert(token);
                }
                Err(job) => {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.blocked_job = Some(job);
                    }
                    self.blocked.push_back(token);
                }
            }
        }
        for token in touched {
            self.advance(token);
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.poller.delete(conn.stream.as_raw_fd());
            self.metrics.conn_closed();
        }
    }
}
