//! # lexequal-service: phonetic match serving
//!
//! The serving subsystem that turns the LexEQUAL library into a system:
//! a sharded, multi-threaded [`MatchService`] over the paper's operator
//! and access paths, plus the `lexequald` line-oriented TCP front-end
//! and a closed-loop load generator. Everything is built on `std`
//! concurrency only — threads, channels, mutexes and atomics; no async
//! runtime.
//!
//! ## Layers
//!
//! * [`shard`] — [`ShardedStore`](shard::ShardedStore): N
//!   [`NameStore`](lexequal::NameStore) shards, each owned by a worker
//!   thread; global ids stripe round-robin (`id % N` picks the shard,
//!   `id / N` the local slot), searches fan out over channels and merge
//!   exactly, and index builds run in parallel across shards.
//! * [`cache`] — [`TransformCache`](cache::TransformCache): a
//!   sharded-mutex LRU memoizing `(text, language) → PhonemeString`
//!   with hit/miss counters.
//! * [`metrics`] — lock-free request counters and a log2-bucket latency
//!   histogram per access path.
//! * [`service`] — [`MatchService`](service::MatchService): the
//!   request-level API; per-request threshold/method overrides and
//!   graceful degraded outcomes (`NoResource`, `NotBuilt`, `BadInput`)
//!   instead of errors.
//! * [`proto`] / [`server`] — the `lexequald` wire protocol (with
//!   incremental line framing) and the two serving paths: the default
//!   epoll-based evented loop ([`event_loop`], pipelined connections,
//!   fixed verify worker pool) and the legacy thread-per-connection
//!   loop, both stoppable via [`ShutdownSignal`].
//! * [`event_loop`] / [`conn`] — the evented path's readiness loop,
//!   per-connection state machines and backpressure rules.
//! * [`snapshot`] — [`StoreSnapshot`](snapshot::StoreSnapshot):
//!   versioned on-disk persistence for the sharded store (per-shard
//!   entry sections, build specs, corpus fingerprint, covered WAL LSN);
//!   `lexequald --snapshot` cold starts become a file read plus a
//!   parallel index rebuild instead of a full G2P pass.
//! * [`wal`] — the write-ahead op log: length-prefixed checksummed
//!   records with monotonic LSNs; every mutation is durable before the
//!   client sees `OK`, and restart replays the tail past the snapshot.
//!   Cursor-based tail reads and an atomic checkpoint-and-truncate
//!   rewrite ([`Wal::compact_to`](wal::Wal::compact_to)) keep the file
//!   bounded.
//! * [`repl`] — replication: the primary's [`Replicator`](repl::Replicator)
//!   (WAL commit lock + per-replica sender threads streaming snapshots
//!   and op records, replica ACK tracking, and the
//!   [`spawn_compactor`](repl::spawn_compactor) checkpoint/compaction
//!   loop with replica-aware horizons) and the replica side
//!   ([`initial_sync`](repl::initial_sync) / [`run_replica`](repl::run_replica))
//!   behind `lexequald --replica-of`, including live re-seed after
//!   being compacted past and fatal divergence detection.
//! * [`loadgen`] — the load generator behind the `loadgen` binary:
//!   in-process shard scaling (`results/service_bench.json`),
//!   socket-level serving-mode comparison (`results/evented_bench.json`),
//!   replication apply/lag measurement (`results/repl_bench.json`) and
//!   the bounded-WAL compaction soak (`results/compaction_bench.json`).
//!
//! ## Example
//!
//! ```
//! use lexequal_service::{MatchOutcome, MatchRequest, MatchService, ServiceConfig};
//! use lexequal::Language;
//!
//! let service = MatchService::new(ServiceConfig { shards: 2, ..Default::default() });
//! service.extend([
//!     ("Nehru".to_owned(), Language::English),
//!     ("नेहरु".to_owned(), Language::Hindi),
//! ]).unwrap();
//! let out = service.lookup(&MatchRequest {
//!     threshold: Some(0.45),
//!     ..MatchRequest::new("Nehru", Language::English)
//! });
//! let MatchOutcome::Matches { ids, .. } = out else { panic!() };
//! assert_eq!(ids, vec![0, 1]); // the Hindi spelling matches cross-script
//! ```

pub mod cache;
pub(crate) mod conn;
pub mod event_loop;
pub mod loadgen;
pub mod metrics;
pub mod mmapstore;
pub mod proto;
pub mod repl;
pub mod server;
pub mod service;
pub mod shard;
pub mod snapshot;
pub mod wal;

pub use cache::TransformCache;
pub use event_loop::{serve_evented, serve_evented_ctx, ShutdownSignal};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use metrics::{
    ConnMetrics, ConnStats, ReplRole, ReplStats, ScreenTotals, ServiceMetrics, WalMetrics, WalStats,
};
pub use mmapstore::{LoadedImage, Mmap};
pub use proto::{FrameError, LineFramer};
pub use repl::{
    initial_sync, run_replica, serve_repl_listener, serve_replica, spawn_compactor, CommitError,
    CompactReport, CompactionPolicy, ReplError, ReplicaState, Replicator,
};
pub use server::{
    bind_reusable, serve, serve_ctx, serve_threaded, serve_threaded_ctx, serve_with, ReqCtx,
    ServeMode, ServeOptions,
};
pub use service::{
    AddResolution, AutoMatchRequest, AutoPendingLookup, LoadInfo, MatchOutcome, MatchRequest,
    MatchService, PendingLookup, ServiceConfig, SnapshotFormat, SnapshotLoad, StatsSnapshot,
};
pub use shard::{BuildSpec, PendingSearch, ShardedStore};
pub use snapshot::{StoreSnapshot, STORE_SNAPSHOT_VERSION};
pub use wal::{CompactionStats, Op, Wal, WalCursor, WalError, WalRecord};
