//! [`TransformCache`]: a sharded-mutex LRU over G2P transforms.
//!
//! The paper's operator pays one text-to-phoneme transformation per query
//! (Figure 8 step 3) before any matching happens; under a serving
//! workload the same hot names arrive over and over, so the transform is
//! the classic memoization target. Keys are `(text, language)` — the same
//! spelling can transform differently under different converters — and
//! values are the finished [`PhonemeString`]s.
//!
//! The map is split into [`CACHE_SHARDS`] independently locked LRUs
//! (selected by key hash) so concurrent connection threads rarely
//! contend; each shard is an arena-backed intrusive doubly-linked list,
//! giving O(1) hit, insert and eviction with no per-entry allocation
//! beyond the key/value themselves. Hit and miss totals are exposed as
//! relaxed atomic counters (they feed the `STATS` wire command).

use lexequal_g2p::Language;
use lexequal_phoneme::PhonemeString;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independently locked LRU shards.
pub const CACHE_SHARDS: usize = 8;

const NIL: usize = usize::MAX;

struct Slot {
    key: (String, Language),
    value: PhonemeString,
    prev: usize,
    next: usize,
}

/// One locked LRU: arena of slots threaded into an MRU→LRU list.
struct LruShard {
    map: HashMap<(String, Language), usize>,
    slots: Vec<Slot>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl LruShard {
    fn new(capacity: usize) -> Self {
        LruShard {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: &(String, Language)) -> Option<PhonemeString> {
        let i = *self.map.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(self.slots[i].value.clone())
    }

    fn insert(&mut self, key: (String, Language), value: PhonemeString) {
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        let i = if self.map.len() >= self.capacity && self.tail != NIL {
            // Evict the LRU slot and reuse it in place.
            let victim = self.tail;
            self.unlink(victim);
            let old_key = std::mem::replace(&mut self.slots[victim].key, key.clone());
            self.slots[victim].value = value;
            self.map.remove(&old_key);
            victim
        } else {
            self.slots.push(Slot {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        };
        self.map.insert(key, i);
        self.push_front(i);
    }
}

/// Concurrent LRU memoizing `(text, language) → PhonemeString`.
pub struct TransformCache {
    shards: Vec<Mutex<LruShard>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TransformCache {
    /// A cache holding at most ≈`capacity` entries (rounded up to a
    /// multiple of [`CACHE_SHARDS`]).
    pub fn new(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(CACHE_SHARDS).max(1);
        TransformCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(LruShard::new(per_shard)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &(String, Language)) -> &Mutex<LruShard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[h.finish() as usize % CACHE_SHARDS]
    }

    /// Cached transform, counting a hit or a miss.
    pub fn get(&self, text: &str, language: Language) -> Option<PhonemeString> {
        // Borrowed lookup keys for (String, Language) pairs aren't
        // expressible with the std Borrow machinery; one short-lived
        // String per miss is the price of keeping std-only.
        let key = (text.to_owned(), language);
        let got = self.shard(&key).lock().expect("cache lock").get(&key);
        match got {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) a finished transform.
    pub fn insert(&self, text: &str, language: Language, value: PhonemeString) {
        let key = (text.to_owned(), language);
        self.shard(&key)
            .lock()
            .expect("cache lock")
            .insert(key, value);
    }

    /// Cached transform, or compute-and-fill via `f`. The lock is *not*
    /// held while `f` runs; two racing threads may both compute, with the
    /// later insert refreshing the earlier — acceptable for a memo table.
    pub fn get_or_try_insert_with<E>(
        &self,
        text: &str,
        language: Language,
        f: impl FnOnce() -> Result<PhonemeString, E>,
    ) -> Result<PhonemeString, E> {
        if let Some(v) = self.get(text, language) {
            return Ok(v);
        }
        let v = f()?;
        self.insert(text, language, v.clone());
        Ok(v)
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of currently cached entries (sums shard sizes).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache lock").map.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(s: &str) -> PhonemeString {
        s.parse().expect("valid IPA")
    }

    #[test]
    fn hit_miss_accounting() {
        let c = TransformCache::new(64);
        assert!(c.get("Nehru", Language::English).is_none());
        c.insert("Nehru", Language::English, ps("nɛru"));
        assert_eq!(c.get("Nehru", Language::English), Some(ps("nɛru")));
        // Same text under another language is a distinct key.
        assert!(c.get("Nehru", Language::French).is_none());
        assert_eq!(c.stats(), (1, 2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_is_lru_order() {
        // One entry per shard overall capacity: shards get capacity 1.
        let c = TransformCache::new(1);
        // Craft keys that land in the same shard by brute force.
        let mut same_shard = Vec::new();
        let probe = |t: &str| {
            let key = (t.to_owned(), Language::English);
            let mut h = DefaultHasher::new();
            key.hash(&mut h);
            h.finish() as usize % CACHE_SHARDS
        };
        let target = probe("a0");
        for i in 0.. {
            let t = format!("a{i}");
            if probe(&t) == target {
                same_shard.push(t);
                if same_shard.len() == 3 {
                    break;
                }
            }
        }
        let [k0, k1, k2] = &same_shard[..] else {
            unreachable!()
        };
        c.insert(k0, Language::English, ps("a"));
        c.insert(k1, Language::English, ps("e"));
        // k0 was evicted by k1 (capacity 1).
        assert!(c.get(k0, Language::English).is_none());
        assert_eq!(c.get(k1, Language::English), Some(ps("e")));
        c.insert(k2, Language::English, ps("i"));
        assert!(c.get(k1, Language::English).is_none());
        assert_eq!(c.get(k2, Language::English), Some(ps("i")));
    }

    #[test]
    fn recency_updates_on_hit() {
        let c = LruShard::new(2);
        let mut c = c;
        let key = |s: &str| (s.to_owned(), Language::English);
        c.insert(key("a"), ps("a"));
        c.insert(key("e"), ps("e"));
        // Touch "a" so "e" becomes the LRU victim.
        assert!(c.get(&key("a")).is_some());
        c.insert(key("i"), ps("i"));
        assert!(c.get(&key("a")).is_some());
        assert!(c.get(&key("e")).is_none());
        assert!(c.get(&key("i")).is_some());
    }

    #[test]
    fn get_or_try_insert_with_fills_once() {
        let c = TransformCache::new(16);
        let mut calls = 0;
        for _ in 0..3 {
            let v: Result<_, std::convert::Infallible> =
                c.get_or_try_insert_with("Nehru", Language::English, || {
                    calls += 1;
                    Ok(ps("nɛru"))
                });
            assert_eq!(v.unwrap(), ps("nɛru"));
        }
        assert_eq!(calls, 1);
        assert_eq!(c.stats(), (2, 1));
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let c = std::sync::Arc::new(TransformCache::new(128));
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..200 {
                        let text = format!("n{}", (i + t) % 32);
                        let _ = c.get_or_try_insert_with::<std::convert::Infallible>(
                            &text,
                            Language::English,
                            || Ok(ps("nɛru")),
                        );
                    }
                });
            }
        });
        let (hits, misses) = c.stats();
        assert_eq!(hits + misses, 800);
        assert!(c.len() <= 128);
    }
}
