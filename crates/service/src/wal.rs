//! Write-ahead op log for the serving layer.
//!
//! Every successful mutation (`ADD`, `BUILD`) is appended here — and
//! fsynced — *before* the client sees `OK`, so a crashed daemon can
//! recover by loading its last snapshot and replaying the log tail.
//! The same records double as the replication stream payload
//! (see [`crate::repl`]): a replica applies them in LSN order through
//! the deterministic [`MatchService::apply_op`] path the primary's own
//! recovery uses, so both sides converge byte-for-byte.
//!
//! # File format
//!
//! An ASCII magic line followed by binary records:
//!
//! ```text
//! #lexequal-wal v1\n
//! [u32 LE payload_len][u64 LE lsn][payload utf-8][u64 LE checksum]
//! ...
//! ```
//!
//! The checksum is FNV-1a 64 over `payload_len LE ++ lsn LE ++ payload`
//! (the same primitive the snapshot fingerprint uses). LSNs start at 1
//! and are strictly `previous + 1` within a file.
//!
//! # Recovery policy
//!
//! - a record (or its header) extending past EOF, or a checksum/UTF-8
//!   failure in the *final* record, is a torn tail from a crashed
//!   append: the log is truncated to the last good record and stays
//!   usable;
//! - the same failures *mid-file* mean bit rot, not a torn write, and
//!   come back as [`WalError::Corrupt`] — never a silent skip;
//! - an LSN that is not `previous + 1` (duplicates included) is a
//!   [`WalError::SequenceBreak`];
//! - an empty file is a fresh log (the magic is written on open);
//! - anchoring against a snapshot: the snapshot's LSN must fall inside
//!   `[first_lsn - 1, last_lsn]`, else [`WalError::Gap`] /
//!   [`WalError::SnapshotAhead`].
//!
//! # Compaction
//!
//! [`Wal::compact_to`] drops every record at or below a horizon by
//! atomically rewriting the file: surviving records are re-encoded
//! (the encoding is deterministic, so surviving bytes are identical)
//! into `<path>.compact.tmp`, fsynced, renamed over the log, and the
//! directory fsynced. A compacted log legitimately starts at an LSN
//! above 1; the anchoring rules above already handle that, provided a
//! checkpoint covering `first_lsn - 1` exists — which is why the
//! daemon writes its checkpoint durably *before* truncating (see
//! [`crate::repl::Replicator::compact`]). Each rewrite bumps the log's
//! generation so [`WalCursor`] readers know their byte offsets went
//! stale.
//!
//! [`MatchService::apply_op`]: crate::MatchService::apply_op

use crate::metrics::WalMetrics;
use crate::shard::BuildSpec;
use lexequal::{Language, QgramMode};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// First line of every WAL file.
pub const WAL_MAGIC: &[u8] = b"#lexequal-wal v1\n";

/// Per-record header: `u32` payload length + `u64` LSN.
const HEADER_LEN: usize = 12;
/// Trailing FNV-1a checksum.
const CHECKSUM_LEN: usize = 8;
/// Sanity bound on a single op payload — far above any real `ADD`.
const MAX_PAYLOAD: usize = 16 * 1024 * 1024;

/// One logged mutation, the unit of both recovery replay and
/// replication. Text-encoded inside the record payload so the stream
/// protocol can carry it on a single line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `ADD`: one name in one script.
    Add {
        /// Source language/script of `text`.
        language: Language,
        /// The name as written.
        text: String,
    },
    /// `BUILD` of one access path (a wire `BUILD ALL` logs three).
    Build(BuildSpec),
}

impl Op {
    /// Single-line text encoding (`A <lang> <text>` / `B QGRAM <q>
    /// <mode>` / `B PHONIDX` / `B BKTREE`). `Language` renders via
    /// `Display`, which `FromStr` round-trips exactly.
    pub fn encode(&self) -> String {
        match self {
            Op::Add { language, text } => format!("A {language} {text}"),
            Op::Build(BuildSpec::Qgram { q, mode }) => {
                let mode = match mode {
                    QgramMode::Strict => "STRICT",
                    QgramMode::PaperFaithful => "PAPER",
                };
                format!("B QGRAM {q} {mode}")
            }
            Op::Build(BuildSpec::PhoneticIndex) => "B PHONIDX".to_owned(),
            Op::Build(BuildSpec::BkTree) => "B BKTREE".to_owned(),
        }
    }

    /// Inverse of [`encode`](Self::encode).
    pub fn decode(s: &str) -> Result<Op, String> {
        let (tag, rest) = s.split_once(' ').unwrap_or((s, ""));
        match tag {
            "A" => {
                let (lang, text) = rest
                    .split_once(' ')
                    .ok_or_else(|| format!("op {s:?}: ADD needs a language and a name"))?;
                let language: Language = lang
                    .parse()
                    .map_err(|e| format!("op {s:?}: bad language: {e}"))?;
                if text.is_empty() {
                    return Err(format!("op {s:?}: empty name"));
                }
                Ok(Op::Add {
                    language,
                    text: text.to_owned(),
                })
            }
            "B" => {
                let mut toks = rest.split_whitespace();
                match toks.next() {
                    Some("QGRAM") => {
                        let q = toks
                            .next()
                            .and_then(|t| t.parse::<usize>().ok())
                            .filter(|&q| q > 0)
                            .ok_or_else(|| format!("op {s:?}: bad q"))?;
                        let mode = match toks.next() {
                            Some("STRICT") => QgramMode::Strict,
                            Some("PAPER") => QgramMode::PaperFaithful,
                            other => return Err(format!("op {s:?}: bad qgram mode {other:?}")),
                        };
                        Ok(Op::Build(BuildSpec::Qgram { q, mode }))
                    }
                    Some("PHONIDX") => Ok(Op::Build(BuildSpec::PhoneticIndex)),
                    Some("BKTREE") => Ok(Op::Build(BuildSpec::BkTree)),
                    other => Err(format!("op {s:?}: unknown build {other:?}")),
                }
            }
            _ => Err(format!("op {s:?}: unknown tag {tag:?}")),
        }
    }
}

/// One decoded log record: the op plus the LSN it committed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonic log sequence number (first record of a fresh log is 1).
    pub lsn: u64,
    /// The mutation.
    pub op: Op,
}

/// Everything that can go wrong opening, reading or appending a WAL.
#[derive(Debug)]
pub enum WalError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file exists but does not start with [`WAL_MAGIC`].
    BadMagic {
        /// The offending file.
        path: PathBuf,
    },
    /// Bit rot before the final record — unrecoverable without the
    /// snapshot, and never silently skipped.
    Corrupt {
        /// Byte offset of the bad record.
        offset: u64,
        /// What failed (checksum, length bound, payload decode, ...).
        what: String,
    },
    /// An LSN out of sequence (duplicates included).
    SequenceBreak {
        /// Byte offset of the offending record.
        offset: u64,
        /// The LSN the sequence demanded.
        expected: u64,
        /// The LSN found on disk.
        found: u64,
    },
    /// The snapshot is newer than the whole log — the WAL file belongs
    /// to an older lineage and must not be replayed.
    SnapshotAhead {
        /// LSN the snapshot covers.
        snapshot_lsn: u64,
        /// Last LSN present in the log.
        wal_head: u64,
    },
    /// The log starts after the snapshot ends — ops in between are
    /// lost, so replay would silently drop history.
    Gap {
        /// LSN the snapshot covers.
        snapshot_lsn: u64,
        /// First LSN present in the log.
        wal_first: u64,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io: {e}"),
            WalError::BadMagic { path } => {
                write!(f, "wal {path:?}: missing magic (not a lexequal wal file)")
            }
            WalError::Corrupt { offset, what } => {
                write!(f, "wal corrupt at byte {offset}: {what}")
            }
            WalError::SequenceBreak {
                offset,
                expected,
                found,
            } => write!(
                f,
                "wal sequence break at byte {offset}: expected lsn {expected}, found {found}"
            ),
            WalError::SnapshotAhead {
                snapshot_lsn,
                wal_head,
            } => write!(
                f,
                "snapshot covers lsn {snapshot_lsn} but the wal ends at lsn {wal_head}; \
                 the wal belongs to an older lineage — remove it or use its snapshot"
            ),
            WalError::Gap {
                snapshot_lsn,
                wal_first,
            } => write!(
                f,
                "snapshot covers lsn {snapshot_lsn} but the wal starts at lsn {wal_first}; \
                 ops in between are missing, refusing to replay with a hole"
            ),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// FNV-1a 64 over the concatenation of `parts` (same constants as the
/// snapshot fingerprint).
fn fnv1a(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Result of scanning a WAL byte image.
struct Scan {
    records: Vec<WalRecord>,
    /// Prefix length (including magic) covering all good records.
    valid_len: u64,
    /// Why the tail past `valid_len` was discarded, if it was.
    torn: Option<String>,
}

/// Scan records after the magic. `offset0` is the absolute offset of
/// `bytes[0]` in the file (for error reporting).
fn scan_records(bytes: &[u8], offset0: u64) -> Result<Scan, WalError> {
    let mut records = Vec::new();
    let mut at = 0usize;
    let mut torn = None;
    while at < bytes.len() {
        let offset = offset0 + at as u64;
        let rest = &bytes[at..];
        if rest.len() < HEADER_LEN {
            torn = Some("record header extends past end of file".to_owned());
            break;
        }
        let len_le: [u8; 4] = rest[0..4].try_into().expect("4-byte slice");
        let lsn_le: [u8; 8] = rest[4..12].try_into().expect("8-byte slice");
        let len = u32::from_le_bytes(len_le) as usize;
        let lsn = u64::from_le_bytes(lsn_le);
        if len > MAX_PAYLOAD {
            return Err(WalError::Corrupt {
                offset,
                what: format!("record length {len} exceeds the {MAX_PAYLOAD}-byte bound"),
            });
        }
        let rec_len = HEADER_LEN + len + CHECKSUM_LEN;
        if rest.len() < rec_len {
            torn = Some("record body extends past end of file".to_owned());
            break;
        }
        let payload = &rest[HEADER_LEN..HEADER_LEN + len];
        let stored = u64::from_le_bytes(
            rest[HEADER_LEN + len..rec_len]
                .try_into()
                .expect("8-byte slice"),
        );
        let at_tail = rest.len() == rec_len;
        if fnv1a(&[&len_le, &lsn_le, payload]) != stored {
            if at_tail {
                torn = Some(format!("final record (lsn {lsn}) failed its checksum"));
                break;
            }
            return Err(WalError::Corrupt {
                offset,
                what: format!("record lsn {lsn} failed its checksum"),
            });
        }
        let text = match std::str::from_utf8(payload) {
            Ok(t) => t,
            Err(_) if at_tail => {
                torn = Some(format!("final record (lsn {lsn}) payload is not UTF-8"));
                break;
            }
            Err(_) => {
                return Err(WalError::Corrupt {
                    offset,
                    what: format!("record lsn {lsn} payload is not UTF-8"),
                })
            }
        };
        let op = Op::decode(text).map_err(|what| WalError::Corrupt { offset, what })?;
        if let Some(last) = records.last() {
            let last: &WalRecord = last;
            if lsn != last.lsn + 1 {
                return Err(WalError::SequenceBreak {
                    offset,
                    expected: last.lsn + 1,
                    found: lsn,
                });
            }
        }
        records.push(WalRecord { lsn, op });
        at += rec_len;
    }
    Ok(Scan {
        records,
        valid_len: offset0 + at as u64,
        torn,
    })
}

/// Serialize one record exactly as [`Wal::append`] lays it on disk:
/// header, payload, trailing checksum. `Op::encode` is deterministic,
/// so re-encoding a decoded record is byte-identical — compaction
/// relies on this to preserve the surviving suffix bit-for-bit.
fn encode_record(lsn: u64, op: &Op) -> Vec<u8> {
    let payload = op.encode();
    let len_le = (payload.len() as u32).to_le_bytes();
    let lsn_le = lsn.to_le_bytes();
    let sum = fnv1a(&[&len_le, &lsn_le, payload.as_bytes()]);
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    buf.extend_from_slice(&len_le);
    buf.extend_from_slice(&lsn_le);
    buf.extend_from_slice(payload.as_bytes());
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// Scan a whole file image, magic included. A torn magic (shorter than
/// [`WAL_MAGIC`] but a prefix of it) counts as a torn tail at offset 0.
fn scan_file(bytes: &[u8], path: &Path) -> Result<Scan, WalError> {
    if bytes.starts_with(WAL_MAGIC) {
        scan_records(&bytes[WAL_MAGIC.len()..], WAL_MAGIC.len() as u64)
    } else if WAL_MAGIC.starts_with(bytes) {
        Ok(Scan {
            records: Vec::new(),
            valid_len: 0,
            torn: Some("torn file header".to_owned()),
        })
    } else {
        Err(WalError::BadMagic {
            path: path.to_owned(),
        })
    }
}

/// An open, append-positioned write-ahead log.
///
/// `append` is `&mut self`: callers that share a WAL across threads
/// (the daemon does, via [`crate::repl::Replicator`]) wrap it in a
/// mutex, which doubles as the commit lock keeping LSN order equal to
/// store-apply order.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// LSN the next append will get.
    next_lsn: u64,
    /// First LSN present in the file, if any record is.
    first_lsn: Option<u64>,
    /// Current length of the file in bytes (magic included).
    file_bytes: u64,
    /// Bumped by every [`compact_to`](Self::compact_to) rewrite, so
    /// [`WalCursor`] readers can tell their byte offsets went stale.
    generation: u64,
    metrics: Arc<WalMetrics>,
}

/// What one [`Wal::compact_to`] rewrite dropped.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompactionStats {
    /// Records removed from the file.
    pub dropped_records: u64,
    /// Bytes the file shrank by.
    pub dropped_bytes: u64,
}

/// The scratch file a compaction rewrite stages into before renaming
/// over `path`. A leftover (crash mid-rewrite) is inert and deleted on
/// the next [`Wal::open`].
fn compact_tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".compact.tmp");
    path.with_file_name(name)
}

impl Wal {
    /// Open (or create) the log at `path`, anchored to a snapshot
    /// covering `base_lsn` (0 = no snapshot). Returns the log positioned
    /// for append plus the replay tail: every record with
    /// `lsn > base_lsn`, in order. A torn final record is truncated
    /// away; mid-file damage and anchoring mismatches are errors.
    pub fn open(
        path: impl AsRef<Path>,
        base_lsn: u64,
        metrics: Arc<WalMetrics>,
    ) -> Result<(Wal, Vec<WalRecord>), WalError> {
        let path = path.as_ref().to_owned();
        // A crash between a compaction's tmp write and its rename leaves
        // an inert scratch file behind; the real log is untouched.
        std::fs::remove_file(compact_tmp_path(&path)).ok();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.is_empty() {
            file.write_all(WAL_MAGIC)?;
            file.sync_data()?;
            let wal = Wal {
                file,
                path,
                next_lsn: base_lsn + 1,
                first_lsn: None,
                file_bytes: WAL_MAGIC.len() as u64,
                generation: 0,
                metrics,
            };
            return Ok((wal, Vec::new()));
        }

        let scan = scan_file(&bytes, &path)?;
        if scan.torn.is_some() {
            // Crash mid-append: drop the torn tail (and rewrite the
            // magic if even that was torn).
            if scan.valid_len < WAL_MAGIC.len() as u64 {
                file.set_len(0)?;
                file.seek(SeekFrom::Start(0))?;
                file.write_all(WAL_MAGIC)?;
            } else {
                file.set_len(scan.valid_len)?;
            }
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;

        let first_lsn = scan.records.first().map(|r| r.lsn);
        let next_lsn = match (first_lsn, scan.records.last().map(|r| r.lsn)) {
            (None, _) | (_, None) => base_lsn + 1,
            (Some(first), Some(last)) => {
                if base_lsn > last {
                    return Err(WalError::SnapshotAhead {
                        snapshot_lsn: base_lsn,
                        wal_head: last,
                    });
                }
                if base_lsn + 1 < first {
                    return Err(WalError::Gap {
                        snapshot_lsn: base_lsn,
                        wal_first: first,
                    });
                }
                last + 1
            }
        };
        let replay = scan
            .records
            .into_iter()
            .filter(|r| r.lsn > base_lsn)
            .collect();
        let wal = Wal {
            file,
            path,
            next_lsn,
            first_lsn,
            // After the torn-tail truncation above the file is exactly
            // the valid prefix (never shorter than the magic).
            file_bytes: scan.valid_len.max(WAL_MAGIC.len() as u64),
            generation: 0,
            metrics,
        };
        Ok((wal, replay))
    }

    /// Append one op, fsync it, and return the LSN it committed at.
    /// The record is durable before this returns.
    pub fn append(&mut self, op: &Op) -> Result<u64, WalError> {
        let lsn = self.next_lsn;
        let buf = encode_record(lsn, op);
        self.file.write_all(&buf)?;
        self.file.sync_data()?;
        self.metrics.record_append(buf.len());
        self.next_lsn += 1;
        self.file_bytes += buf.len() as u64;
        if self.first_lsn.is_none() {
            self.first_lsn = Some(lsn);
        }
        Ok(lsn)
    }

    /// LSN of the last committed record (or the snapshot anchor if the
    /// log is empty).
    pub fn head_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// First LSN present in the file, if any.
    pub fn first_lsn(&self) -> Option<u64> {
        self.first_lsn
    }

    /// The file this log appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current on-disk size of the log in bytes (magic included).
    pub fn live_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// Rewrite counter: bumped by every [`compact_to`](Self::compact_to)
    /// that replaces the file, so byte offsets cached by readers
    /// ([`WalCursor`]) can be detected as stale.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Drop every record with `lsn <= horizon` by atomically rewriting
    /// the file: surviving records go to `<path>.compact.tmp`, the tmp
    /// is fsynced, renamed over the log, and the directory fsynced, so
    /// a crash at any instant leaves either the old complete log or the
    /// new complete log — never a partial one. The caller must hold the
    /// commit lock (no append may be in flight) and must have made a
    /// checkpoint covering `horizon` durable *first*, or the dropped
    /// prefix is simply lost.
    ///
    /// A horizon below `first_lsn` (or an empty log) is a no-op; a
    /// horizon above the head is clamped to it.
    pub fn compact_to(&mut self, horizon: u64) -> Result<CompactionStats, WalError> {
        let horizon = horizon.min(self.head_lsn());
        match self.first_lsn {
            None => return Ok(CompactionStats::default()),
            Some(first) if horizon < first => return Ok(CompactionStats::default()),
            Some(_) => {}
        }

        // Re-scan our own file. Under the commit lock nothing can be
        // mid-append, so a torn or damaged record here is real trouble —
        // refuse to rewrite rather than silently shrink history.
        let mut f = File::open(&self.path)?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)?;
        let scan = scan_file(&bytes, &self.path)?;
        if let Some(what) = scan.torn {
            return Err(WalError::Corrupt {
                offset: scan.valid_len,
                what: format!("torn record with no append in flight: {what}"),
            });
        }

        let total = scan.records.len() as u64;
        let keep: Vec<&WalRecord> = scan.records.iter().filter(|r| r.lsn > horizon).collect();
        let dropped_records = total - keep.len() as u64;
        if dropped_records == 0 {
            return Ok(CompactionStats::default());
        }

        let tmp = compact_tmp_path(&self.path);
        let mut out = File::create(&tmp)?;
        out.write_all(WAL_MAGIC)?;
        let mut new_bytes = WAL_MAGIC.len() as u64;
        for rec in &keep {
            let buf = encode_record(rec.lsn, &rec.op);
            out.write_all(&buf)?;
            new_bytes += buf.len() as u64;
        }
        out.sync_all()?;
        drop(out);
        std::fs::rename(&tmp, &self.path)?;
        // Make the rename itself durable before the old bytes can be
        // considered gone.
        if let Some(dir) = self.path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = File::open(dir) {
                d.sync_all().ok();
            }
        }

        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        let stats = CompactionStats {
            dropped_records,
            dropped_bytes: self.file_bytes.saturating_sub(new_bytes),
        };
        self.file = file;
        self.first_lsn = keep.first().map(|r| r.lsn);
        self.file_bytes = new_bytes;
        self.generation += 1;
        Ok(stats)
    }

    /// Whether every record in `(from, head]` is present in this file —
    /// i.e. an incremental catch-up from `from` loses nothing.
    pub fn can_serve_from(&self, from: u64) -> bool {
        if from >= self.head_lsn() {
            return from == self.head_lsn();
        }
        match self.first_lsn {
            Some(first) => from + 1 >= first,
            None => false,
        }
    }

    /// Re-read the file and return every record with `lsn > from`.
    /// Read-only: a torn tail is tolerated (not truncated) so this is
    /// safe to interleave with appends under the caller's lock.
    pub fn read_from(&self, from: u64) -> Result<Vec<WalRecord>, WalError> {
        let mut f = File::open(&self.path)?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            return Ok(Vec::new());
        }
        let scan = scan_file(&bytes, &self.path)?;
        Ok(scan.records.into_iter().filter(|r| r.lsn > from).collect())
    }
}

/// A tail reader's memoized position: the byte offset where the next
/// unread record starts, validated against the LSN expected there and
/// the file generation it was computed on. Lets replica senders fetch
/// new records with a seek + tail read instead of re-scanning the whole
/// file on every poll (which made catch-up quadratic in log size).
///
/// The cursor self-heals: a generation bump (compaction rewrote the
/// file) or an LSN mismatch at the remembered offset falls back to one
/// full scan, after which seeking resumes.
#[derive(Debug, Clone)]
pub struct WalCursor {
    /// LSN of the next record this reader wants.
    next_lsn: u64,
    /// Byte offset where that record will begin, valid for `generation`.
    offset: u64,
    /// File generation `offset` was computed against (`u64::MAX` until
    /// the first successful read).
    generation: u64,
}

impl WalCursor {
    /// A cursor positioned just past `lsn` (0 = start of history).
    pub fn after(lsn: u64) -> WalCursor {
        WalCursor {
            next_lsn: lsn + 1,
            offset: 0,
            generation: u64::MAX,
        }
    }

    /// LSN of the next record this cursor will return.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }
}

/// Read every record at or past `cursor` from the log file at `path`,
/// advancing the cursor past what was returned. `generation` is the
/// log's current rewrite generation (snapshot it under the commit lock;
/// the read itself needs no lock — see [`Wal::read_from`] on why a
/// concurrent torn tail is harmless).
///
/// When the cursor's generation matches, this seeks straight to the
/// remembered offset and scans only the new tail; otherwise (first
/// read, or the file was rewritten underneath us) it rescans from the
/// magic. Returns [`WalError::Gap`] if the file's first record is
/// already past `cursor.next_lsn` — the records this reader still owes
/// its consumer were compacted away, so the consumer must re-seed.
pub fn read_tail(
    path: &Path,
    generation: u64,
    cursor: &mut WalCursor,
) -> Result<Vec<WalRecord>, WalError> {
    if cursor.generation == generation && cursor.offset >= WAL_MAGIC.len() as u64 {
        let mut f = File::open(path)?;
        f.seek(SeekFrom::Start(cursor.offset))?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            return Ok(Vec::new());
        }
        // A scan error here can be an artifact of the file having been
        // rewritten under a stale generation snapshot (our offset lands
        // mid-record in the new file): fall through to a full scan,
        // which re-validates from the magic.
        if let Ok(scan) = scan_records(&bytes, cursor.offset) {
            match scan.records.first() {
                // Nothing but a torn in-flight append past our offset.
                None => return Ok(Vec::new()),
                Some(first) if first.lsn == cursor.next_lsn => {
                    cursor.offset = scan.valid_len;
                    cursor.next_lsn = scan.records.last().expect("nonempty scan").lsn + 1;
                    return Ok(scan.records);
                }
                Some(_) => {}
            }
        }
    }

    let mut f = File::open(path)?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)?;
    if bytes.is_empty() {
        return Ok(Vec::new());
    }
    let scan = scan_file(&bytes, path)?;
    if let Some(first) = scan.records.first() {
        if first.lsn > cursor.next_lsn {
            return Err(WalError::Gap {
                snapshot_lsn: cursor.next_lsn - 1,
                wal_first: first.lsn,
            });
        }
    }
    let records: Vec<WalRecord> = scan
        .records
        .into_iter()
        .filter(|r| r.lsn >= cursor.next_lsn)
        .collect();
    cursor.generation = generation;
    cursor.offset = scan.valid_len;
    if let Some(last) = records.last() {
        cursor.next_lsn = last.lsn + 1;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("lexequal_wal_unit_{}_{name}", std::process::id()))
    }

    #[test]
    fn ops_round_trip_through_the_text_encoding() {
        let ops = [
            Op::Add {
                language: Language::English,
                text: "Nehru".to_owned(),
            },
            Op::Add {
                language: Language::Hindi,
                text: "नेहरु".to_owned(),
            },
            Op::Add {
                language: Language::Tamil,
                text: "நேரு with spaces".to_owned(),
            },
            Op::Build(BuildSpec::Qgram {
                q: 3,
                mode: QgramMode::Strict,
            }),
            Op::Build(BuildSpec::Qgram {
                q: 2,
                mode: QgramMode::PaperFaithful,
            }),
            Op::Build(BuildSpec::PhoneticIndex),
            Op::Build(BuildSpec::BkTree),
        ];
        for op in ops {
            let line = op.encode();
            assert_eq!(Op::decode(&line).expect("decode"), op, "{line}");
        }
        assert!(Op::decode("A en").is_err());
        assert!(Op::decode("B QGRAM x STRICT").is_err());
        assert!(Op::decode("Z what").is_err());
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let path = temp("roundtrip");
        std::fs::remove_file(&path).ok();
        let metrics = Arc::new(WalMetrics::default());
        let (mut wal, replay) = Wal::open(&path, 0, metrics.clone()).expect("open fresh");
        assert!(replay.is_empty());
        assert_eq!(wal.head_lsn(), 0);
        let ops = [
            Op::Add {
                language: Language::English,
                text: "Bose".to_owned(),
            },
            Op::Build(BuildSpec::BkTree),
            Op::Add {
                language: Language::English,
                text: "Tagore".to_owned(),
            },
        ];
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(wal.append(op).expect("append"), i as u64 + 1);
        }
        assert_eq!(wal.head_lsn(), 3);
        assert!(wal.can_serve_from(0));
        assert!(wal.can_serve_from(2));
        assert!(!wal.can_serve_from(4));
        let stats = metrics.stats();
        assert_eq!(stats.appends, 3);
        assert_eq!(stats.fsyncs, 3);
        assert!(stats.bytes > 0);
        drop(wal);

        let (wal, replay) = Wal::open(&path, 0, Arc::new(WalMetrics::default())).expect("reopen");
        assert_eq!(wal.head_lsn(), 3);
        assert_eq!(replay.len(), 3);
        for (i, (rec, op)) in replay.iter().zip(&ops).enumerate() {
            assert_eq!(rec.lsn, i as u64 + 1);
            assert_eq!(&rec.op, op);
        }
        // Anchored reopen filters the replay to the tail past the snapshot.
        let (wal2, replay) =
            Wal::open(&path, 2, Arc::new(WalMetrics::default())).expect("anchored");
        assert_eq!(wal2.head_lsn(), 3);
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].lsn, 3);
        drop(wal);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_from_filters_and_tolerates_live_tail() {
        let path = temp("readfrom");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path, 0, Arc::new(WalMetrics::default())).expect("open");
        for text in ["Patel", "Mehta", "Iyer"] {
            wal.append(&Op::Add {
                language: Language::English,
                text: text.to_owned(),
            })
            .expect("append");
        }
        let tail = wal.read_from(1).expect("read");
        assert_eq!(tail.iter().map(|r| r.lsn).collect::<Vec<_>>(), vec![2, 3]);
        assert!(wal.read_from(3).expect("read").is_empty());
        std::fs::remove_file(&path).ok();
    }

    fn add(text: &str) -> Op {
        Op::Add {
            language: Language::English,
            text: text.to_owned(),
        }
    }

    #[test]
    fn compact_drops_prefix_and_reopen_anchors_on_the_base() {
        let path = temp("compact");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path, 0, Arc::new(WalMetrics::default())).expect("open");
        for i in 1..=5 {
            wal.append(&add(&format!("name{i}"))).expect("append");
        }
        let before = wal.live_bytes();
        let stats = wal.compact_to(3).expect("compact");
        assert_eq!(stats.dropped_records, 3);
        assert!(stats.dropped_bytes > 0);
        assert_eq!(wal.first_lsn(), Some(4));
        assert_eq!(wal.head_lsn(), 5);
        assert_eq!(wal.generation(), 1);
        assert!(wal.live_bytes() < before);
        assert_eq!(
            wal.live_bytes(),
            std::fs::metadata(&path).expect("meta").len()
        );

        // can_serve_from edges around the compacted base: 3 is the last
        // position an incremental catch-up can start from.
        assert!(!wal.can_serve_from(2));
        assert!(wal.can_serve_from(3));
        assert!(wal.can_serve_from(4));
        assert!(wal.can_serve_from(5));
        assert!(!wal.can_serve_from(6));

        // Appends keep flowing after the rewrite.
        assert_eq!(wal.append(&add("post")).expect("append"), 6);
        drop(wal);

        // A checkpoint at the base LSN anchors a reopen; older ones gap.
        let (wal, replay) = Wal::open(&path, 3, Arc::new(WalMetrics::default())).expect("reopen");
        assert_eq!(wal.first_lsn(), Some(4));
        assert_eq!(replay.iter().map(|r| r.lsn).collect::<Vec<_>>(), [4, 5, 6]);
        drop(wal);
        match Wal::open(&path, 2, Arc::new(WalMetrics::default())) {
            Err(WalError::Gap {
                snapshot_lsn: 2,
                wal_first: 4,
            }) => {}
            other => panic!("expected Gap, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_to_full_horizon_empties_the_log() {
        let path = temp("compact_all");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path, 0, Arc::new(WalMetrics::default())).expect("open");
        for i in 1..=3 {
            wal.append(&add(&format!("n{i}"))).expect("append");
        }
        // Horizons above the head clamp; a second compact is a no-op.
        let stats = wal.compact_to(99).expect("compact");
        assert_eq!(stats.dropped_records, 3);
        assert_eq!(wal.first_lsn(), None);
        assert_eq!(wal.head_lsn(), 3);
        assert_eq!(wal.live_bytes(), WAL_MAGIC.len() as u64);
        assert_eq!(wal.compact_to(3).expect("noop").dropped_records, 0);
        assert_eq!(wal.generation(), 1);
        // LSNs continue from the head even though the file is empty.
        assert_eq!(wal.append(&add("after")).expect("append"), 4);
        assert_eq!(wal.first_lsn(), Some(4));
        drop(wal);
        let (wal, replay) = Wal::open(&path, 3, Arc::new(WalMetrics::default())).expect("reopen");
        assert_eq!(replay.len(), 1);
        assert_eq!(wal.head_lsn(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cursor_seeks_incrementally_and_survives_compaction() {
        let path = temp("cursor");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path, 0, Arc::new(WalMetrics::default())).expect("open");
        for i in 1..=4 {
            wal.append(&add(&format!("c{i}"))).expect("append");
        }
        let mut cursor = WalCursor::after(0);
        let got = read_tail(&path, wal.generation(), &mut cursor).expect("first read");
        assert_eq!(got.iter().map(|r| r.lsn).collect::<Vec<_>>(), [1, 2, 3, 4]);
        assert_eq!(cursor.next_lsn(), 5);
        // Caught up: the seek path reads nothing.
        assert!(read_tail(&path, wal.generation(), &mut cursor)
            .expect("empty")
            .is_empty());
        wal.append(&add("c5")).expect("append");
        wal.append(&add("c6")).expect("append");
        let got = read_tail(&path, wal.generation(), &mut cursor).expect("tail read");
        assert_eq!(got.iter().map(|r| r.lsn).collect::<Vec<_>>(), [5, 6]);

        // Compaction invalidates the generation; a reader still inside
        // the retained suffix full-rescans once and carries on.
        wal.compact_to(4).expect("compact");
        let mut behind = WalCursor::after(4);
        let got = read_tail(&path, wal.generation(), &mut behind).expect("post-compact");
        assert_eq!(got.iter().map(|r| r.lsn).collect::<Vec<_>>(), [5, 6]);

        // A reader whose next record was compacted away gets a Gap.
        let mut stale = WalCursor::after(2);
        match read_tail(&path, wal.generation(), &mut stale) {
            Err(WalError::Gap {
                snapshot_lsn: 2,
                wal_first: 5,
            }) => {}
            other => panic!("expected Gap, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_compaction_scratch_is_deleted_on_open() {
        let path = temp("scratch");
        std::fs::remove_file(&path).ok();
        let tmp = compact_tmp_path(&path);
        std::fs::write(&tmp, b"leftover from a crashed rewrite").expect("write tmp");
        let (wal, _) = Wal::open(&path, 0, Arc::new(WalMetrics::default())).expect("open");
        assert!(!tmp.exists(), "stale {tmp:?} must be removed");
        drop(wal);
        std::fs::remove_file(&path).ok();
    }
}
